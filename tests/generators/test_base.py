"""Generator base classes and the locked RNG helpers."""

import random
import threading

from repro.generators import ConstantGenerator, default_rng, locked_random
from repro.generators.base import Generator


class _CountingGenerator(Generator[int]):
    def __init__(self):
        super().__init__()
        self.calls = 0

    def next_value(self) -> int:
        self.calls += 1
        return self._remember(self.calls)


class TestGeneratorBase:
    def test_last_value_generates_lazily(self):
        generator = _CountingGenerator()
        assert generator.last_value() == 1
        assert generator.calls == 1
        assert generator.last_value() == 1  # no extra generation

    def test_last_value_tracks_next(self):
        generator = _CountingGenerator()
        generator.next_value()
        generator.next_value()
        assert generator.last_value() == 2

    def test_constant_generator(self):
        generator = ConstantGenerator("x")
        assert generator.next_value() == "x"
        assert generator.last_value() == "x"


class TestLockedRandom:
    def test_seeded_reproducibility(self):
        a = locked_random(42)
        b = locked_random(42)
        assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]

    def test_unseeded_instances_differ(self):
        a = locked_random()
        b = locked_random()
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_derived_methods_work(self):
        rng = locked_random(7)
        assert 0 <= rng.randint(0, 10) <= 10
        assert rng.choice(["a", "b"]) in ("a", "b")
        assert 0.0 <= rng.uniform(0, 1) <= 1.0

    def test_default_rng_is_shared(self):
        assert default_rng() is default_rng()

    def test_concurrent_use_does_not_crash_or_stick(self):
        rng = locked_random(1)
        results = []
        lock = threading.Lock()

        def worker():
            local = [rng.random() for _ in range(2000)]
            with lock:
                results.extend(local)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 8000
        assert all(0.0 <= value < 1.0 for value in results)
        # The stream must not degenerate (e.g. repeated identical values).
        assert len(set(results)) > 7900

    def test_is_a_random_instance(self):
        assert isinstance(locked_random(), random.Random)
