"""FNV hash tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators import fnv1_64, fnv1a_64


class TestFnv1_64:
    def test_deterministic(self):
        assert fnv1_64(12345) == fnv1_64(12345)

    def test_non_negative(self):
        for value in (0, 1, 2**63, 2**64 - 1):
            assert fnv1_64(value) >= 0

    def test_distinct_inputs_differ(self):
        outputs = {fnv1_64(i) for i in range(10000)}
        assert len(outputs) == 10000  # no collisions in a small dense range

    def test_matches_known_ycsb_value(self):
        # FNV-1 64 of integer 0 consumes eight zero bytes.
        expected = 0xCBF29CE484222325
        for _ in range(8):
            expected = (expected * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        assert fnv1_64(0) == expected & 0x7FFFFFFFFFFFFFFF

    @given(value=st.integers(min_value=0, max_value=2**64 - 1))
    @settings(max_examples=200, deadline=None)
    def test_property_range(self, value):
        hashed = fnv1_64(value)
        assert 0 <= hashed < 2**63


class TestFnv1a_64:
    def test_empty(self):
        assert fnv1a_64(b"") == 0xCBF29CE484222325

    def test_known_vector(self):
        # Standard FNV-1a test vector: "a" -> 0xaf63dc4c8601ec8c
        assert fnv1a_64(b"a") == 0xAF63DC4C8601EC8C

    def test_spread(self):
        outputs = {fnv1a_64(f"key{i}".encode()) for i in range(10000)}
        assert len(outputs) == 10000
