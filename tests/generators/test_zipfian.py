"""Zipfian-family generator tests, including distribution-shape properties."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators import (
    CounterGenerator,
    ScrambledZipfianGenerator,
    SkewedLatestGenerator,
    ZipfianGenerator,
)
from repro.generators.zipfian import zeta_static


class TestZetaStatic:
    def test_matches_direct_sum(self):
        direct = sum(1.0 / (i**0.99) for i in range(1, 101))
        assert zeta_static(0, 100, 0.99) == pytest.approx(direct)

    def test_incremental_extension(self):
        base = zeta_static(0, 50, 0.99)
        extended = zeta_static(50, 100, 0.99, initial=base)
        assert extended == pytest.approx(zeta_static(0, 100, 0.99))


class TestZipfianGenerator:
    def test_rejects_empty_range(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(5, 4)

    def test_rejects_bad_theta(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0, 10, theta=1.0)
        with pytest.raises(ValueError):
            ZipfianGenerator(0, 10, theta=0.0)

    def test_values_within_bounds(self, rng):
        generator = ZipfianGenerator(10, 29, rng=rng)
        for _ in range(2000):
            assert 10 <= generator.next_value() <= 29

    def test_skew_first_item_most_popular(self, rng):
        generator = ZipfianGenerator(0, 99, rng=rng)
        counts = Counter(generator.next_value() for _ in range(20000))
        # Item 0 should be clearly the most popular and receive roughly
        # 1/zeta(100, .99) ~ 19% of requests.
        assert counts.most_common(1)[0][0] == 0
        assert counts[0] > counts[10] > counts[70]

    def test_hot_item_frequency_close_to_theory(self, rng):
        n = 100
        generator = ZipfianGenerator(0, n - 1, rng=rng)
        samples = 30000
        counts = Counter(generator.next_value() for _ in range(samples))
        expected = 1.0 / zeta_static(0, n, 0.99)
        assert counts[0] / samples == pytest.approx(expected, rel=0.15)

    def test_deterministic_with_seed(self):
        a = ZipfianGenerator(0, 999, rng=random.Random(7))
        b = ZipfianGenerator(0, 999, rng=random.Random(7))
        assert [a.next_value() for _ in range(50)] == [b.next_value() for _ in range(50)]

    def test_growing_item_count(self, rng):
        generator = ZipfianGenerator(0, 9, rng=rng)
        for _ in range(100):
            assert 0 <= generator.next_for_items(20) <= 19

    def test_last_value(self, rng):
        generator = ZipfianGenerator(0, 9, rng=rng)
        value = generator.next_value()
        assert generator.last_value() == value

    @given(
        lower=st.integers(min_value=0, max_value=1000),
        span=st.integers(min_value=1, max_value=1000),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_bounds(self, lower, span, seed):
        generator = ZipfianGenerator(lower, lower + span - 1, rng=random.Random(seed))
        for _ in range(20):
            assert lower <= generator.next_value() <= lower + span - 1


class TestScrambledZipfianGenerator:
    def test_values_within_bounds(self, rng):
        generator = ScrambledZipfianGenerator(100, 199, rng=rng)
        for _ in range(2000):
            assert 100 <= generator.next_value() <= 199

    def test_popularity_not_clustered_at_low_keys(self, rng):
        generator = ScrambledZipfianGenerator(0, 999, rng=rng)
        counts = Counter(generator.next_value() for _ in range(20000))
        hottest = counts.most_common(1)[0][0]
        # FNV scattering makes the hottest key essentially arbitrary; the
        # plain zipfian would put it at 0.
        assert hottest != 0 or counts[0] < 0.5 * sum(counts.values())

    def test_still_skewed(self, rng):
        generator = ScrambledZipfianGenerator(0, 999, rng=rng)
        counts = Counter(generator.next_value() for _ in range(20000))
        frequencies = sorted(counts.values(), reverse=True)
        # Top-10 keys should hold far more than their 1% uniform share.
        # (Over the huge scrambled item space the hot ranks carry ~12%.)
        assert sum(frequencies[:10]) > 0.08 * 20000

    def test_mean(self):
        generator = ScrambledZipfianGenerator(0, 99)
        assert generator.mean() == pytest.approx(49.5)

    def test_custom_theta_supported(self, rng):
        generator = ScrambledZipfianGenerator(0, 99, theta=0.5, rng=rng)
        for _ in range(200):
            assert 0 <= generator.next_value() <= 99


class TestSkewedLatestGenerator:
    def test_tracks_basis(self, rng):
        basis = CounterGenerator(0)
        for _ in range(100):
            basis.next_value()
        generator = SkewedLatestGenerator(basis, rng=rng)
        values = [generator.next_value() for _ in range(2000)]
        assert all(0 <= value <= 99 for value in values)
        counts = Counter(values)
        # Recency skew: the newest item (99) is the most popular.
        assert counts.most_common(1)[0][0] == 99

    def test_follows_inserts(self, rng):
        basis = CounterGenerator(0)
        basis.next_value()
        generator = SkewedLatestGenerator(basis, rng=rng)
        for _ in range(500):
            basis.next_value()
        values = [generator.next_value() for _ in range(500)]
        assert max(values) > 400  # new keys become reachable
