"""Tests for the uniform, hotspot, exponential, discrete, histogram,
sequential, constant and string generators."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators import (
    ConstantGenerator,
    DiscreteGenerator,
    ExponentialGenerator,
    HistogramGenerator,
    HotspotIntegerGenerator,
    KeyNameGenerator,
    RandomStringGenerator,
    SequentialGenerator,
    UniformChoiceGenerator,
    UniformLongGenerator,
)


class TestUniformLongGenerator:
    def test_bounds_inclusive(self, rng):
        generator = UniformLongGenerator(3, 5, rng=rng)
        seen = {generator.next_value() for _ in range(500)}
        assert seen == {3, 4, 5}

    def test_rejects_empty_range(self):
        with pytest.raises(ValueError):
            UniformLongGenerator(2, 1)

    def test_mean(self):
        assert UniformLongGenerator(0, 10).mean() == 5.0

    def test_single_value_range(self, rng):
        generator = UniformLongGenerator(7, 7, rng=rng)
        assert generator.next_value() == 7

    @given(
        lower=st.integers(-1000, 1000),
        span=st.integers(0, 1000),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_bounds(self, lower, span, seed):
        generator = UniformLongGenerator(lower, lower + span, rng=random.Random(seed))
        assert lower <= generator.next_value() <= lower + span


class TestUniformChoiceGenerator:
    def test_chooses_from_items(self, rng):
        generator = UniformChoiceGenerator(["a", "b"], rng=rng)
        assert {generator.next_value() for _ in range(100)} == {"a", "b"}

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            UniformChoiceGenerator([])


class TestConstantGenerator:
    def test_always_same(self):
        generator = ConstantGenerator(42)
        assert [generator.next_value() for _ in range(3)] == [42, 42, 42]
        assert generator.last_value() == 42


class TestHotspotIntegerGenerator:
    def test_bounds(self, rng):
        generator = HotspotIntegerGenerator(0, 99, 0.2, 0.8, rng=rng)
        assert all(0 <= generator.next_value() <= 99 for _ in range(1000))

    def test_hot_set_receives_hot_fraction(self, rng):
        generator = HotspotIntegerGenerator(0, 99, 0.2, 0.8, rng=rng)
        samples = [generator.next_value() for _ in range(20000)]
        hot = sum(1 for value in samples if value < 20)
        assert hot / len(samples) == pytest.approx(0.8, abs=0.03)

    def test_all_hot(self, rng):
        generator = HotspotIntegerGenerator(0, 9, 1.0, 0.5, rng=rng)
        assert all(0 <= generator.next_value() <= 9 for _ in range(100))

    def test_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            HotspotIntegerGenerator(0, 9, 1.5, 0.5)
        with pytest.raises(ValueError):
            HotspotIntegerGenerator(0, 9, 0.5, -0.1)

    def test_mean_weights_hot_and_cold(self):
        generator = HotspotIntegerGenerator(0, 99, 0.2, 0.8)
        # hot mean 10, cold mean 60 -> 0.8*10 + 0.2*60 = 20
        assert generator.mean() == pytest.approx(20.0)


class TestExponentialGenerator:
    def test_non_negative(self, rng):
        generator = ExponentialGenerator.from_mean(10, rng=rng)
        assert all(generator.next_value() >= 0 for _ in range(1000))

    def test_mean_close(self, rng):
        generator = ExponentialGenerator.from_mean(50, rng=rng)
        samples = [generator.next_value() for _ in range(20000)]
        assert sum(samples) / len(samples) == pytest.approx(50, rel=0.1)

    def test_from_percentile(self, rng):
        generator = ExponentialGenerator.from_percentile(95, 100, rng=rng)
        samples = [generator.next_value() for _ in range(20000)]
        below = sum(1 for value in samples if value < 100)
        assert below / len(samples) == pytest.approx(0.95, abs=0.01)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            ExponentialGenerator(0)
        with pytest.raises(ValueError):
            ExponentialGenerator.from_mean(-1)
        with pytest.raises(ValueError):
            ExponentialGenerator.from_percentile(100, 10)


class TestDiscreteGenerator:
    def test_respects_weights(self, rng):
        generator = DiscreteGenerator(rng=rng)
        generator.add_value(0.9, "READ")
        generator.add_value(0.1, "UPDATE")
        counts = Counter(generator.next_value() for _ in range(20000))
        assert counts["READ"] / 20000 == pytest.approx(0.9, abs=0.02)

    def test_weights_normalised(self):
        generator = DiscreteGenerator()
        generator.add_value(3, "a")
        generator.add_value(1, "b")
        assert generator.weights() == {"a": 0.75, "b": 0.25}

    def test_rejects_zero_weight(self):
        generator = DiscreteGenerator()
        with pytest.raises(ValueError):
            generator.add_value(0, "x")

    def test_empty_raises(self):
        with pytest.raises(RuntimeError):
            DiscreteGenerator().next_value()

    def test_single_value(self, rng):
        generator = DiscreteGenerator(rng=rng)
        generator.add_value(1.0, "only")
        assert all(generator.next_value() == "only" for _ in range(20))


class TestHistogramGenerator:
    def test_respects_bucket_weights(self, rng):
        generator = HistogramGenerator([0, 1, 3], rng=rng)
        counts = Counter(generator.next_value() for _ in range(20000))
        assert counts[0] == 0
        assert counts[2] / counts[1] == pytest.approx(3.0, rel=0.15)

    def test_block_size(self, rng):
        generator = HistogramGenerator([1, 1], block_size=10, rng=rng)
        assert set(generator.next_value() for _ in range(200)) == {0, 10}

    def test_mean(self):
        generator = HistogramGenerator([1, 1], block_size=10)
        assert generator.mean() == 5.0

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            HistogramGenerator([])
        with pytest.raises(ValueError):
            HistogramGenerator([-1, 2])
        with pytest.raises(ValueError):
            HistogramGenerator([0, 0])

    def test_from_file(self, tmp_path, rng):
        path = tmp_path / "hist.txt"
        path.write_text("BlockSize, 5\n0, 2\n2, 1\n")
        generator = HistogramGenerator.from_file(path, rng=rng)
        values = {generator.next_value() for _ in range(500)}
        assert values == {0, 10}

    def test_from_file_rejects_garbage(self, tmp_path):
        path = tmp_path / "hist.txt"
        path.write_text("not a histogram\n")
        with pytest.raises(ValueError):
            HistogramGenerator.from_file(path)


class TestSequentialGenerator:
    def test_cycles(self):
        generator = SequentialGenerator(0, 2)
        assert [generator.next_value() for _ in range(7)] == [0, 1, 2, 0, 1, 2, 0]

    def test_offset_range(self):
        generator = SequentialGenerator(10, 12)
        assert generator.next_value() == 10

    def test_mean(self):
        assert SequentialGenerator(0, 10).mean() == 5.0

    def test_thread_unique_within_cycle(self):
        import threading

        generator = SequentialGenerator(0, 9999)
        results = []
        lock = threading.Lock()

        def worker():
            local = [generator.next_value() for _ in range(1000)]
            with lock:
                results.extend(local)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(results) == list(range(4000))


class TestStringGenerators:
    def test_random_string_length(self, rng):
        generator = RandomStringGenerator(ConstantGenerator(12), rng=rng)
        value = generator.next_value()
        assert len(value) == 12
        assert value.isalnum()

    def test_random_string_varying_length(self, rng):
        generator = RandomStringGenerator(UniformLongGenerator(1, 5, rng=rng), rng=rng)
        lengths = {len(generator.next_value()) for _ in range(200)}
        assert lengths <= {1, 2, 3, 4, 5}
        assert len(lengths) > 1

    def test_key_name_ordered(self):
        names = KeyNameGenerator(hashed=False, zero_padding=6)
        assert names.build_key(42) == "user000042"

    def test_key_name_hashed_is_stable(self):
        names = KeyNameGenerator(hashed=True)
        assert names.build_key(42) == names.build_key(42)
        assert names.build_key(42) != names.build_key(43)

    def test_key_name_rejects_negative(self):
        with pytest.raises(ValueError):
            KeyNameGenerator().build_key(-1)

    def test_key_name_custom_prefix(self):
        names = KeyNameGenerator(prefix="acct", hashed=False)
        assert names.build_key(7) == "acct7"

    def test_ordered_keys_sort_numerically_with_padding(self):
        names = KeyNameGenerator(hashed=False, zero_padding=8)
        keys = [names.build_key(i) for i in (1, 10, 2, 100)]
        assert sorted(keys) == [names.build_key(i) for i in (1, 2, 10, 100)]
