"""Drifting request distributions: the hot set must rotate on schedule."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators.drift import (
    DRIFT_STRIDE,
    DriftingHotspotGenerator,
    DriftingZipfianGenerator,
)
from repro.generators.zipfian import ZipfianGenerator, zeta_static


def fixed_clock(value):
    holder = [value]
    return holder, (lambda: holder[0])


class TestDriftingZipfian:
    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            DriftingZipfianGenerator(10, 5)
        with pytest.raises(ValueError):
            DriftingZipfianGenerator(0, 9, drift_period_s=-1.0)

    def test_in_range(self):
        holder, clock = fixed_clock(0.0)
        gen = DriftingZipfianGenerator(
            100, 199, drift_period_s=10.0, rng=random.Random(1), clock=clock
        )
        for step in range(500):
            holder[0] = step * 0.5
            assert 100 <= gen.next_value() <= 199

    def test_seed_and_clock_determinism(self):
        def stream(seed):
            holder, clock = fixed_clock(0.0)
            gen = DriftingZipfianGenerator(
                0, 999, drift_period_s=5.0, rng=random.Random(seed), clock=clock
            )
            values = []
            for step in range(300):
                holder[0] = step * 0.1
                values.append(gen.next_value())
            return values

        assert stream(7) == stream(7)
        assert stream(7) != stream(8)

    def test_hot_set_rotates_between_epochs(self):
        gen = DriftingZipfianGenerator(0, 499, drift_period_s=60.0,
                                       rng=random.Random(0))
        for epoch in range(20):
            current = gen.hot_keys(epoch, count=5)
            following = gen.hot_keys(epoch + 1, count=5)
            # The hottest key moves every epoch (the odd stride guarantees
            # it for any span > 1)...
            assert current[0] != following[0]
            # ...while the epoch's own mapping stays injective.
            assert len(set(current)) == 5

    def test_epoch_boundary_switches_keys(self):
        holder, clock = fixed_clock(0.0)
        gen = DriftingZipfianGenerator(
            0, 999, drift_period_s=10.0, rng=random.Random(3), clock=clock
        )
        assert gen.epoch_at(9.99) == 0
        assert gen.epoch_at(10.0) == 1
        # Same rank, different epochs, different keys.
        assert gen.key_for_rank(0, 0) != gen.key_for_rank(0, 1)
        shift = (gen.key_for_rank(0, 1) - gen.key_for_rank(0, 0)) % gen.span
        assert shift == DRIFT_STRIDE % gen.span

    def test_zero_period_never_rotates(self):
        holder, clock = fixed_clock(0.0)
        gen = DriftingZipfianGenerator(
            0, 99, drift_period_s=0.0, rng=random.Random(5), clock=clock
        )
        assert gen.epoch_at(1e9) == 0

    def test_mean_is_uniform_over_span(self):
        gen = DriftingZipfianGenerator(100, 199, rng=random.Random(0))
        assert gen.mean() == pytest.approx(149.5)


class TestDriftingHotspot:
    def test_in_range_and_deterministic(self):
        def stream(seed):
            holder, clock = fixed_clock(0.0)
            gen = DriftingHotspotGenerator(
                50, 149, drift_period_s=3.0, rng=random.Random(seed), clock=clock
            )
            values = []
            for step in range(300):
                holder[0] = step * 0.05
                value = gen.next_value()
                assert 50 <= value <= 149
                values.append(value)
            return values

        assert stream(2) == stream(2)
        assert stream(2) != stream(3)

    def test_hot_region_rotates(self):
        gen = DriftingHotspotGenerator(0, 199, drift_period_s=30.0,
                                       rng=random.Random(0))
        assert gen.hot_keys(0, count=3) != gen.hot_keys(1, count=3)

    def test_mean_is_uniform_over_span(self):
        gen = DriftingHotspotGenerator(0, 99, rng=random.Random(0))
        assert gen.mean() == pytest.approx(49.5)


class TestZipfianMeanUnderGrowth:
    """Satellite property: the analytic mean stays exact while the item
    space grows draw by draw (the ``latest`` distribution's shape)."""

    def brute_force_mean(self, items, theta):
        zetan = zeta_static(0, items, theta)
        return sum((i - 1) / i**theta for i in range(1, items + 1)) / zetan

    @pytest.mark.parametrize("theta", [0.5, 0.99])
    def test_incremental_matches_brute_force(self, theta):
        gen = ZipfianGenerator(0, 9, theta=theta, rng=random.Random(1))
        for items in (10, 11, 25, 100, 101):
            gen.next_for_items(items)
            assert gen.mean() == pytest.approx(
                self.brute_force_mean(items, theta), rel=1e-12
            )

    @settings(max_examples=20, deadline=None)
    @given(
        start=st.integers(min_value=3, max_value=50),
        growth=st.integers(min_value=0, max_value=200),
        theta=st.floats(min_value=0.1, max_value=0.99),
    )
    def test_mean_in_range_while_growing(self, start, growth, theta):
        gen = ZipfianGenerator(0, start - 1, theta=theta, rng=random.Random(0))
        gen.next_for_items(start + growth)
        mean = gen.mean()
        assert 0.0 <= mean <= start + growth - 1
        # Skew keeps the mean below the uniform midpoint.
        assert mean < (start + growth - 1) / 2.0 + 1e-9
