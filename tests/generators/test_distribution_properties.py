"""Property sweeps over the request distributions.

Complements the targeted generator tests with broad seeded sweeps: every
configuration in the grid must stay in range, reproduce exactly from its
seed, and (for the Zipfian) stay in range while the item space grows.
"""

import random

import pytest

from repro.generators.histogram import HistogramGenerator
from repro.generators.hotspot import HotspotIntegerGenerator
from repro.generators.zipfian import (
    ScrambledZipfianGenerator,
    ZipfianGenerator,
    zeta_static,
)

RANGES = [(0, 0), (0, 1), (0, 99), (5, 104), (1000, 1009)]
SEEDS = [0, 7, 12345]
DRAWS = 300


def sequence(factory, seed, draws=DRAWS):
    generator = factory(random.Random(seed))
    return [generator.next_value() for _ in range(draws)]


class TestZipfianProperties:
    @pytest.mark.parametrize("lower,upper", RANGES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_in_range(self, lower, upper, seed):
        for value in sequence(lambda r: ZipfianGenerator(lower, upper, rng=r), seed):
            assert lower <= value <= upper

    @pytest.mark.parametrize("theta", [0.2, 0.5, 0.99])
    def test_in_range_across_thetas(self, theta):
        for value in sequence(lambda r: ZipfianGenerator(0, 49, theta=theta, rng=r), 3):
            assert 0 <= value <= 49

    @pytest.mark.parametrize("seed", SEEDS)
    def test_seed_reproducible(self, seed):
        factory = lambda r: ZipfianGenerator(0, 999, rng=r)  # noqa: E731
        assert sequence(factory, seed) == sequence(factory, seed)

    def test_distinct_seeds_distinct_sequences(self):
        factory = lambda r: ZipfianGenerator(0, 999, rng=r)  # noqa: E731
        assert sequence(factory, 1) != sequence(factory, 2)

    def test_item_count_growth_stays_in_range(self):
        """The ``latest`` distribution grows the item space mid-run; every
        draw must stay inside the space it was asked about."""
        generator = ZipfianGenerator(0, 9, rng=random.Random(5))
        items = 10
        for step in range(400):
            if step % 3 == 2:
                items += 1  # an insert happened
            value = generator.next_for_items(items)
            assert 0 <= value < items, f"step {step}: {value} out of [0, {items})"
        assert generator.item_count == items

    def test_growth_matches_fresh_generator_zeta(self):
        """Incremental zeta extension equals computing zeta from scratch."""
        generator = ZipfianGenerator(0, 9, rng=random.Random(5))
        for items in (11, 40, 41, 100):
            generator.next_for_items(items)
        assert generator._zetan == pytest.approx(zeta_static(0, 100, generator.theta))


class TestScrambledZipfianProperties:
    @pytest.mark.parametrize("lower,upper", RANGES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_in_range(self, lower, upper, seed):
        factory = lambda r: ScrambledZipfianGenerator(lower, upper, rng=r)  # noqa: E731
        for value in sequence(factory, seed):
            assert lower <= value <= upper

    @pytest.mark.parametrize("seed", SEEDS)
    def test_seed_reproducible(self, seed):
        factory = lambda r: ScrambledZipfianGenerator(0, 999, rng=r)  # noqa: E731
        assert sequence(factory, seed) == sequence(factory, seed)


class TestHotspotProperties:
    @pytest.mark.parametrize("lower,upper", RANGES)
    @pytest.mark.parametrize("hot_set", [0.0, 0.2, 1.0])
    @pytest.mark.parametrize("hot_opn", [0.0, 0.8, 1.0])
    def test_in_range(self, lower, upper, hot_set, hot_opn):
        factory = lambda r: HotspotIntegerGenerator(  # noqa: E731
            lower, upper, hot_set_fraction=hot_set, hot_opn_fraction=hot_opn, rng=r
        )
        for value in sequence(factory, 9):
            assert lower <= value <= upper

    @pytest.mark.parametrize("seed", SEEDS)
    def test_seed_reproducible(self, seed):
        factory = lambda r: HotspotIntegerGenerator(0, 999, rng=r)  # noqa: E731
        assert sequence(factory, seed) == sequence(factory, seed)


class TestHistogramProperties:
    BUCKETS = [
        [1.0],
        [0.0, 1.0],
        [1.0, 2.0, 3.0, 4.0],
        [5.0, 0.0, 0.0, 5.0],
    ]

    @pytest.mark.parametrize("buckets", BUCKETS)
    @pytest.mark.parametrize("block_size", [1, 10])
    def test_in_range_and_only_weighted_buckets(self, buckets, block_size):
        factory = lambda r: HistogramGenerator(  # noqa: E731
            buckets, block_size=block_size, rng=r
        )
        allowed = {
            i * block_size for i, weight in enumerate(buckets) if weight > 0
        }
        for value in sequence(factory, 2):
            assert value in allowed

    @pytest.mark.parametrize("seed", SEEDS)
    def test_seed_reproducible(self, seed):
        factory = lambda r: HistogramGenerator([1, 2, 3, 4, 5], rng=r)  # noqa: E731
        assert sequence(factory, seed) == sequence(factory, seed)
