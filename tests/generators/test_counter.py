"""Counter generator tests."""

import threading

from repro.generators import AcknowledgedCounterGenerator, CounterGenerator


class TestCounterGenerator:
    def test_starts_at_start(self):
        counter = CounterGenerator(5)
        assert counter.next_value() == 5

    def test_sequential(self):
        counter = CounterGenerator(0)
        assert [counter.next_value() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_last_value_before_any_next(self):
        counter = CounterGenerator(10)
        assert counter.last_value() == 9

    def test_last_value_tracks_issued(self):
        counter = CounterGenerator(0)
        counter.next_value()
        counter.next_value()
        assert counter.last_value() == 1

    def test_thread_safety_no_duplicates(self):
        counter = CounterGenerator(0)
        seen = []
        lock = threading.Lock()

        def worker():
            local = [counter.next_value() for _ in range(500)]
            with lock:
                seen.extend(local)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(seen) == 4000
        assert len(set(seen)) == 4000
        assert sorted(seen) == list(range(4000))

    def test_mean_not_defined(self):
        import pytest

        with pytest.raises(NotImplementedError):
            CounterGenerator(0).mean()


class TestAcknowledgedCounterGenerator:
    def test_limit_starts_below_start(self):
        counter = AcknowledgedCounterGenerator(100)
        assert counter.last_value() == 99

    def test_limit_advances_only_contiguously(self):
        counter = AcknowledgedCounterGenerator(0)
        first = counter.next_value()
        second = counter.next_value()
        third = counter.next_value()
        counter.acknowledge(third)
        assert counter.last_value() == -1  # 0 and 1 still pending
        counter.acknowledge(first)
        assert counter.last_value() == 0
        counter.acknowledge(second)
        assert counter.last_value() == 2  # 2 was pending, frontier jumps

    def test_out_of_order_acknowledgement(self):
        counter = AcknowledgedCounterGenerator(0)
        values = [counter.next_value() for _ in range(10)]
        for value in reversed(values):
            counter.acknowledge(value)
        assert counter.last_value() == 9

    def test_concurrent_acknowledge(self):
        counter = AcknowledgedCounterGenerator(0)
        values = [counter.next_value() for _ in range(2000)]

        def worker(chunk):
            for value in chunk:
                counter.acknowledge(value)

        chunks = [values[i::4] for i in range(4)]
        threads = [threading.Thread(target=worker, args=(chunk,)) for chunk in chunks]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.last_value() == 1999
