"""Crashpoint injector semantics: scheduling, counting, scoping."""

import pytest

from repro.recovery import (
    CRASHPOINTS,
    CrashError,
    CrashInjector,
    crashpoint,
    get_crash_injector,
    set_crash_injector,
    use_crash_injector,
)


class TestSchedule:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown crashpoint"):
            CrashInjector({"txn.not_a_point": 1})

    def test_zero_hit_rejected(self):
        with pytest.raises(ValueError, match="1-based"):
            CrashInjector({"txn.after_prewrite": 0})

    def test_single_int_and_iterable_both_accepted(self):
        CrashInjector({"txn.after_prewrite": 2})
        CrashInjector({"txn.after_prewrite": [2, 5]})

    def test_every_catalogue_point_schedulable(self):
        CrashInjector({point: 1 for point in CRASHPOINTS})


class TestFiring:
    def test_fires_on_exactly_the_scheduled_hit(self):
        injector = CrashInjector({"txn.after_prewrite": 3})
        injector.hit("txn.after_prewrite")
        injector.hit("txn.after_prewrite")
        with pytest.raises(CrashError) as excinfo:
            injector.hit("txn.after_prewrite")
        assert excinfo.value.point == "txn.after_prewrite"
        assert excinfo.value.hit == 3
        # Each scheduled hit fires once; counting continues afterwards.
        injector.hit("txn.after_prewrite")
        assert injector.hit_counts() == {"txn.after_prewrite": 4}
        assert injector.fired == [("txn.after_prewrite", 3)]

    def test_multiple_hits_on_one_point_each_fire_once(self):
        injector = CrashInjector({"worker.mid_run": [1, 3]})
        with pytest.raises(CrashError):
            injector.hit("worker.mid_run")
        injector.hit("worker.mid_run")
        with pytest.raises(CrashError):
            injector.hit("worker.mid_run")
        injector.hit("worker.mid_run")
        assert injector.fired == [("worker.mid_run", 1), ("worker.mid_run", 3)]

    def test_unscheduled_point_never_fires(self):
        injector = CrashInjector({"txn.after_prewrite": 1})
        for _ in range(10):
            injector.hit("lsm.mid_checkpoint")
        assert injector.fired == []

    def test_crasherror_passes_through_except_exception(self):
        """The whole design: no fault/retry handler may swallow a crash."""
        injector = CrashInjector({"wal.mid_append": 1})
        with pytest.raises(CrashError):
            try:
                injector.hit("wal.mid_append")
            except Exception:  # noqa: BLE001 - the point of the test
                pytest.fail("CrashError must not be an Exception subclass")


class TestAmbientInjector:
    def test_crashpoint_is_noop_without_injector(self):
        assert get_crash_injector() is None
        crashpoint("txn.after_prewrite")  # must not raise

    def test_use_crash_injector_scopes_and_restores(self):
        injector = CrashInjector({"txn.after_prewrite": 1})
        with use_crash_injector(injector):
            assert get_crash_injector() is injector
            with pytest.raises(CrashError):
                crashpoint("txn.after_prewrite")
        assert get_crash_injector() is None

    def test_nested_injectors_restore_outer(self):
        outer = CrashInjector({"txn.after_prewrite": 99})
        inner = CrashInjector({"wal.mid_append": 99})
        with use_crash_injector(outer):
            with use_crash_injector(inner):
                assert get_crash_injector() is inner
            assert get_crash_injector() is outer

    def test_set_crash_injector_returns_previous(self):
        injector = CrashInjector({})
        assert set_crash_injector(injector) is None
        assert set_crash_injector(None) is injector
