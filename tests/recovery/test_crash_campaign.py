"""Crash campaign: crash → scavenge → re-validate, deterministically.

The acceptance bar for the recovery subsystem: for every seeded crash
schedule, post-recovery CEW validation passes on the transactional
bindings (total cash preserved, gamma == 0, zero residual locks), and the
same seed replays to a byte-identical report.
"""

import json

import pytest

from repro.recovery.campaign import (
    CRASH_SCHEDULES,
    CrashRunResult,
    run_crash,
    run_crash_campaign,
    seeded_schedule,
    write_crash_violation_trace,
)


def _run(binding="txn", seed=0, schedule="multi", **kwargs) -> CrashRunResult:
    kwargs.setdefault("trace", False)
    return run_crash(binding=binding, seed=seed, schedule=schedule, **kwargs)


class TestRecoveryVerdict:
    @pytest.mark.parametrize("schedule", sorted(CRASH_SCHEDULES))
    def test_txn_recovers_from_every_schedule(self, schedule):
        result = _run(binding="txn", seed=1, schedule=schedule)
        assert result.fired, "the schedule never crashed anyone"
        assert result.crashes >= 1
        assert result.post_passed
        assert result.post_gamma == 0.0
        assert result.residual_locks == 0
        assert not result.violation

    def test_percolator_recovers(self):
        result = _run(binding="pct", seed=1, schedule="primary-commit")
        assert result.fired
        assert not result.violation

    def test_seeded_schedule_runs(self):
        result = _run(binding="txn", seed=5, schedule="seeded")
        assert result.schedule == "seeded"
        assert not result.violation

    def test_raw_binding_can_leak_money(self):
        """The baseline: no transactions, so a mid-transfer death leaks.

        Not every crash lands between a transfer's debit and credit, so
        scan a few seeds; at least one must show the leak the
        transactional bindings are immune to.
        """
        results = [
            _run(binding="raw", seed=seed, schedule="worker-kill")
            for seed in range(3)
        ]
        assert any(r.crashes for r in results)
        assert any(r.violation for r in results)


class TestDeterminism:
    def test_same_seed_same_bytes(self):
        first = _run(binding="txn", seed=11, schedule="multi")
        second = _run(binding="txn", seed=11, schedule="multi")
        assert first.fired == second.fired
        assert first.report_jsonl == second.report_jsonl
        assert first.counters == second.counters

    def test_seeded_schedule_is_pure(self):
        assert seeded_schedule(42) == seeded_schedule(42)
        schedule = seeded_schedule(7)
        assert schedule, "a seeded schedule must name at least one point"
        for hits in schedule.values():
            assert all(hit >= 1 for hit in hits)


class TestScavengerEvidence:
    def test_scavenger_counters_reach_the_report(self):
        result = _run(binding="txn", seed=1, schedule="multi")
        assert result.counters.get("CRASHPOINTS-FIRED") == len(result.fired)
        assert "SCAVENGER-PASSES" in result.counters


class TestCampaign:
    def test_campaign_sweeps_and_writes_artifacts(self, tmp_path):
        campaign = run_crash_campaign(
            seeds=range(2),
            bindings=("raw", "txn"),
            schedules=("worker-kill",),
            out_dir=tmp_path,
            trace=False,
        )
        assert len(campaign.runs) == 4
        # Transactional recovery held; any violations are raw-binding ones.
        assert campaign.transactional_violations == []
        for run in campaign.violations:
            assert run.binding == "raw"
        assert len(campaign.artifacts) == len(campaign.violations)
        summary = campaign.summary()
        assert "txn:" in summary and "raw:" in summary

    def test_violation_trace_is_replayable_json(self, tmp_path):
        result = _run(binding="raw", seed=0, schedule="worker-kill")
        path = write_crash_violation_trace(result, tmp_path)
        payload = json.loads(path.read_text())
        assert payload["kind"] == "ycsbt-crash-violation"
        assert payload["seed"] == 0
        assert "ycsbt crash" in payload["replay"]["command"]
        assert payload["crash_schedule"] == result.crash_schedule


class TestCli:
    def test_crash_command_exit_zero_on_clean_txn_sweep(self, capsys):
        from repro.core.cli import main

        code = main(
            [
                "crash",
                "--seeds",
                "1",
                "--db",
                "txn",
                "--schedule",
                "prewrite",
                "--no-trace",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "txn:" in out
        assert "0 post-recovery violations" in out

    def test_crash_command_rejects_bad_seed_count(self):
        from repro.core.cli import main

        with pytest.raises(SystemExit):
            main(["crash", "--seeds", "0"])
