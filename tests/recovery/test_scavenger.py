"""Scavenger recovery: roll-forward, roll-back, orphan TSRs, liveness.

Each scenario crashes a committing transaction at a protocol-stage
crashpoint (leases are zero, so the dead owner is instantly presumed
dead), then runs the scavenger as a *separate* coordinator over the same
store — the janitor shape — and checks the store converged on a decided
state: committed transactions fully applied, undecided ones fully undone.
"""

import pytest

from repro.kvstore import InMemoryKVStore
from repro.recovery import CrashError, CrashInjector, TxnScavenger, use_crash_injector
from repro.txn import ClientTransactionManager
from repro.txn.manager import TSR_PREFIX
from repro.txn.percolator import PercolatorLikeManager

MANAGERS = {
    "manager": ClientTransactionManager,
    "percolator": PercolatorLikeManager,
}


@pytest.fixture(params=sorted(MANAGERS))
def make_manager(request):
    """Two coordinators over one shared store: a victim and a janitor.

    Percolator coordinators share the central timestamp oracle (as in a
    real deployment) — with separate oracles the janitor's snapshot would
    sit below every commit timestamp the victim ever issued.
    """
    store = InMemoryKVStore()
    factory = MANAGERS[request.param]
    shared: dict = {}
    if factory is PercolatorLikeManager:
        from repro.txn.clock import TimestampOracle

        shared["oracle"] = TimestampOracle()

    def make(**overrides):
        kwargs = {"lock_lease_ms": 0.0, **shared, **overrides}
        return factory(store, **kwargs)

    make.store = store
    return make


def crash_commit(manager, point: str, writes: dict[str, dict[str, str]]) -> None:
    """Commit ``writes`` in one transaction, dying at ``point``."""
    tx = manager.begin()
    for key, value in writes.items():
        tx.write(key, value)
    with use_crash_injector(CrashInjector({point: 1})):
        with pytest.raises(CrashError):
            tx.commit()


class TestRollBack:
    def test_crash_after_prewrite_rolls_back(self, make_manager):
        victim = make_manager()
        victim.run(lambda tx: tx.write("a", {"v": "old"}))
        crash_commit(victim, "txn.after_prewrite", {"a": {"v": "new"}, "b": {"v": "new"}})

        janitor = make_manager()
        stats = TxnScavenger(janitor).scavenge_once()
        assert stats.locks_seen == 2
        assert stats.expired_locks == 2
        assert stats.rolled_back >= 1
        assert stats.rolled_forward == 0

        with janitor.transaction() as tx:
            assert tx.read("a") == {"v": "old"}  # undecided: undone
            assert tx.read("b") is None


class TestRollForward:
    def test_crash_after_primary_commit_rolls_forward(self, make_manager):
        victim = make_manager()
        victim.run(lambda tx: tx.write("a", {"v": "old"}))
        crash_commit(
            victim, "txn.after_primary_commit", {"a": {"v": "new"}, "b": {"v": "new"}}
        )

        janitor = make_manager()
        stats = TxnScavenger(janitor).scavenge_once()
        assert stats.locks_seen >= 1
        assert stats.rolled_forward >= 1
        assert stats.rolled_back == 0

        with janitor.transaction() as tx:
            assert tx.read("a") == {"v": "new"}  # past the commit point: kept
            assert tx.read("b") == {"v": "new"}

    def test_crash_mid_secondary_commit_finishes_the_apply(self, make_manager):
        victim = make_manager()
        crash_commit(
            victim,
            "txn.mid_secondary_commit",
            {"a": {"v": "new"}, "b": {"v": "new"}, "c": {"v": "new"}},
        )

        janitor = make_manager()
        TxnScavenger(janitor).scavenge_once()
        with janitor.transaction() as tx:
            assert tx.read("a") == {"v": "new"}
            assert tx.read("b") == {"v": "new"}
            assert tx.read("c") == {"v": "new"}

    def test_store_is_lock_free_after_scavenging(self, make_manager):
        victim = make_manager()
        crash_commit(
            victim, "txn.after_primary_commit", {"a": {"v": "1"}, "b": {"v": "1"}}
        )
        janitor = make_manager()
        scavenger = TxnScavenger(janitor)
        scavenger.scavenge_once()
        verify = scavenger.scavenge_once(remove_orphan_tsrs=False)
        assert verify.locks_seen == 0


class TestTsrCleanup:
    def test_tsr_removed_once_no_lock_references_it(self):
        store = InMemoryKVStore()
        victim = ClientTransactionManager(store, lock_lease_ms=0.0)
        crash_commit(
            victim, "txn.after_primary_commit", {"a": {"v": "1"}, "b": {"v": "1"}}
        )
        assert any(key.startswith(TSR_PREFIX) for key in store.keys())

        janitor = ClientTransactionManager(store, lock_lease_ms=0.0)
        stats = TxnScavenger(janitor).scavenge_once()
        assert stats.orphan_tsrs_removed == 1
        assert not any(key.startswith(TSR_PREFIX) for key in store.keys())

    def test_background_pass_keeps_tsrs(self):
        """Orphan removal is unsafe while committers may be live."""
        store = InMemoryKVStore()
        victim = ClientTransactionManager(store, lock_lease_ms=0.0)
        crash_commit(
            victim, "txn.after_primary_commit", {"a": {"v": "1"}, "b": {"v": "1"}}
        )
        janitor = ClientTransactionManager(store, lock_lease_ms=0.0)
        stats = TxnScavenger(janitor).scavenge_once(remove_orphan_tsrs=False)
        assert stats.orphan_tsrs_removed == 0
        assert any(key.startswith(TSR_PREFIX) for key in store.keys())


class TestLiveOwnersLeftAlone:
    def test_unexpired_lock_is_pending_live(self, make_manager):
        victim = make_manager(lock_lease_ms=60_000.0)
        crash_commit(victim, "txn.after_prewrite", {"a": {"v": "1"}})

        janitor = make_manager(lock_lease_ms=60_000.0)
        stats = TxnScavenger(janitor).scavenge_once()
        assert stats.locks_seen == 1
        assert stats.expired_locks == 0
        assert stats.pending_live == 1
        assert stats.rolled_back == 0
        assert stats.rolled_forward == 0


class TestReporting:
    def test_counters_accumulate_across_passes(self):
        store = InMemoryKVStore()
        victim = ClientTransactionManager(store, lock_lease_ms=0.0)
        crash_commit(victim, "txn.after_prewrite", {"a": {"v": "1"}})
        janitor = ClientTransactionManager(store, lock_lease_ms=0.0)
        scavenger = TxnScavenger(janitor)
        scavenger.scavenge_once()
        scavenger.scavenge_once()
        counters = scavenger.counters()
        assert counters["SCAVENGER-PASSES"] == 2
        assert counters["SCAVENGER-ROLLED-BACK"] == 1

    def test_background_thread_starts_and_stops(self):
        janitor = ClientTransactionManager(InMemoryKVStore(), lock_lease_ms=0.0)
        scavenger = TxnScavenger(janitor)
        scavenger.start(interval_s=0.01)
        with pytest.raises(RuntimeError):
            scavenger.start(interval_s=0.01)
        scavenger.stop()
        scavenger.stop()  # idempotent
