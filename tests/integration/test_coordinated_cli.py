"""Coordinated multi-process benchmark through the real CLI.

Three processes: one `ycsbt serve` (the store), one coordination server
(in-process), and two `ycsbt bench --coordinator ...` clients that split
the load phase and run together — the distributed-client execution the
paper's §VII wants from YCSB++.
"""

import socket
import subprocess
import sys
import time

import pytest

from repro.coordination import CoordinationServer
from repro.http import HttpKVStore


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


@pytest.fixture
def kv_server():
    port = _free_port()
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    client = HttpKVStore(("127.0.0.1", port), timeout_s=2)
    deadline = time.monotonic() + 15
    while time.monotonic() < deadline:
        try:
            client.size()
            break
        except Exception:
            if process.poll() is not None:
                raise RuntimeError("kv server died")
            time.sleep(0.1)
    else:
        process.terminate()
        raise RuntimeError("kv server never became ready")
    yield port
    client.close()
    process.terminate()
    process.wait(timeout=10)


class TestCoordinatedCli:
    def test_two_clients_split_load_and_run(self, kv_server):
        with CoordinationServer(expected_clients=2) as coordinator:
            host, port = coordinator.address
            commands = []
            for name in ("alpha", "beta"):
                commands.append(
                    subprocess.Popen(
                        [
                            sys.executable, "-m", "repro", "bench",
                            "-db", "raw_http",
                            "-p", "workload=closed_economy",
                            "-p", "recordcount=60",
                            "-p", "operationcount=120",
                            "-p", "totalcash=60000",
                            "-p", "fieldcount=1",
                            "-p", f"http.port={kv_server}",
                            "-p", "insertorder=ordered",
                            "-p", "seed=8",
                            "-threads", "2",
                            "--coordinator", f"{host}:{port}",
                        ],
                        stdout=subprocess.PIPE,
                        stderr=subprocess.PIPE,
                        text=True,
                    )
                )
            outputs = [process.communicate(timeout=180) for process in commands]
            for process, (stdout, stderr) in zip(commands, outputs):
                assert "[OVERALL], Throughput(ops/sec)," in stdout, stderr

            # The coordinator aggregated two load and two run reports.
            summary = coordinator.state.summary()
            phases = sorted(report["phase"] for report in summary["clients"])
            assert phases == ["load", "load", "run", "run"]
            run_operations = sum(
                report["operations"]
                for report in summary["clients"]
                if report["phase"] == "run"
            )
            assert run_operations == 240
            load_operations = sum(
                report["operations"]
                for report in summary["clients"]
                if report["phase"] == "load"
            )
            assert load_operations == 60  # the slices cover the table once

        # Both clients saw the keyspace-slice banner.
        banners = [stderr for _, stderr in outputs]
        assert any("client 1/2" in text for text in banners)
        assert any("client 2/2" in text for text in banners)
