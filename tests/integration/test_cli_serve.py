"""The ``ycsbt serve`` + ``ycsbt bench -db raw_http`` flow, end to end,
in separate processes — exactly how a user runs the paper's §V-C setup."""

import socket
import subprocess
import sys
import time

import pytest

from repro.http import HttpKVStore


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


@pytest.fixture
def server_process(tmp_path):
    port = _free_port()
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--store", "lsm",
         "--dir", str(tmp_path / "data"), "--port", str(port)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    # Wait for the listener.
    deadline = time.monotonic() + 15
    client = HttpKVStore(("127.0.0.1", port), timeout_s=2)
    while time.monotonic() < deadline:
        try:
            client.size()
            break
        except Exception:
            if process.poll() is not None:
                raise RuntimeError(
                    f"server died: {process.stderr.read() if process.stderr else ''}"
                )
            time.sleep(0.1)
    else:
        process.terminate()
        raise RuntimeError("server never became ready")
    yield port
    client.close()
    process.terminate()
    process.wait(timeout=10)


class TestServeFlow:
    def test_cross_process_load_then_run(self, server_process):
        port = server_process
        base = [
            sys.executable, "-m", "repro",
        ]
        common = [
            "-db", "raw_http",
            "-p", "workload=closed_economy",
            "-p", "recordcount=50",
            "-p", "operationcount=200",
            "-p", "totalcash=50000",
            "-p", "fieldcount=1",
            "-p", f"http.port={port}",
            "-p", "seed=3",
            "-threads", "4",
        ]
        load = subprocess.run(
            base + ["load", *common], capture_output=True, text=True, timeout=120
        )
        assert load.returncode == 0, load.stderr
        assert "[TOTAL CASH], 50000" in load.stdout

        # The data survives into a *separate* client process — that is the
        # point of the external server (and of the LSM store behind it).
        run = subprocess.run(
            base + ["run", *common], capture_output=True, text=True, timeout=120
        )
        assert "[ACTUAL OPERATIONS], 200" in run.stdout
        assert "[OVERALL], Throughput(ops/sec)," in run.stdout
        assert "[TX-READ], Operations," in run.stdout
