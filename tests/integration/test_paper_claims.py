"""The paper's headline claims, asserted as robust shape invariants.

These do not compare against the paper's absolute EC2/MacBook numbers;
they assert the *relationships* the paper reports:

* Tier 6 / Fig. 4: one thread -> zero anomalies; heavy concurrency on a
  raw store -> anomalies appear; the transactional binding -> never.
* Fig. 3 / Tier 5: transactions cost throughput (a meaningful reduction,
  not a collapse) and the per-operation TX series exists.
* Fig. 2 mechanisms: the rate ceiling caps cloud throughput; the
  contention model makes oversubscribed clients slower.
"""

import pytest

from repro.bindings.kv import KVStoreDB
from repro.bindings.txn import TxnDB
from repro.core import Client, ClosedEconomyWorkload, Properties
from repro.harness import cew_properties
from repro.harness.runner import run_phase_pair
from repro.kvstore import ConstantLatency, InMemoryKVStore, LatencyInjectingStore
from repro.measurements import Measurements
from repro.txn import ClientTransactionManager


def run_cew_on(db_factory, load_factory=None, **overrides):
    properties = cew_properties(**overrides)
    workload = ClosedEconomyWorkload()
    measurements = Measurements()
    workload.init(properties, measurements)
    load_client = Client(workload, load_factory or db_factory, properties, Measurements())
    load_client.load()
    run_client = Client(workload, db_factory, properties, measurements)
    return run_client.run()


class TestTier6Consistency:
    def test_single_thread_never_anomalous(self):
        backing = InMemoryKVStore()
        result = run_cew_on(
            lambda: KVStoreDB(backing),
            recordcount=100,
            operationcount=1500,
            threadcount=1,
        )
        assert result.anomaly_score == 0.0
        assert result.validation.passed

    def test_concurrent_raw_store_produces_anomalies(self):
        """With enough contended read-modify-writes, lost updates appear.

        Retried across seeds because drift is a random walk that can
        cancel to zero on a lucky run.
        """
        observed = []
        for seed in (11, 22, 33):
            backing = InMemoryKVStore()
            store = LatencyInjectingStore(backing, ConstantLatency(0.0005))
            result = run_cew_on(
                lambda: KVStoreDB(store),
                load_factory=lambda: KVStoreDB(backing),
                recordcount=50,
                operationcount=3000,
                readproportion=0.2,
                readmodifywriteproportion=0.8,
                threadcount=8,
                seed=seed,
            )
            observed.append(result.anomaly_score)
            if result.anomaly_score > 0:
                break
        assert max(observed) > 0, f"no anomalies in any run: {observed}"

    def test_transactional_store_never_anomalous(self):
        backing = InMemoryKVStore()
        manager = ClientTransactionManager(backing)
        result = run_cew_on(
            lambda: TxnDB(cew_properties(), manager=manager),
            recordcount=50,
            operationcount=2000,
            readproportion=0.2,
            readmodifywriteproportion=0.8,
            threadcount=8,
        )
        assert result.anomaly_score == 0.0
        assert result.validation.passed
        # Under this contention some transactions must have aborted —
        # that is *how* the anomalies were avoided.
        assert result.failed_operations > 0


class TestFig3TransactionOverhead:
    def test_transactions_reduce_throughput_meaningfully(self):
        latency = ConstantLatency(0.001)
        properties = cew_properties(
            recordcount=100, operationcount=600, threadcount=4
        )

        raw_backing = InMemoryKVStore()
        raw_store = LatencyInjectingStore(raw_backing, latency)
        workload = ClosedEconomyWorkload()
        measurements = Measurements()
        workload.init(properties, measurements)
        Client(workload, lambda: KVStoreDB(raw_backing), properties, Measurements()).load()
        raw = Client(workload, lambda: KVStoreDB(raw_store), properties, measurements).run()

        txn_backing = InMemoryKVStore()
        txn_store = LatencyInjectingStore(txn_backing, latency)
        fast = ClientTransactionManager(txn_backing)
        slow = ClientTransactionManager(txn_store)
        workload2 = ClosedEconomyWorkload()
        measurements2 = Measurements()
        workload2.init(properties, measurements2)
        Client(
            workload2, lambda: TxnDB(properties, manager=fast), properties, Measurements()
        ).load()
        txn = Client(
            workload2, lambda: TxnDB(properties, manager=slow), properties, measurements2
        ).run()

        ratio = txn.throughput / raw.throughput
        # Paper: 30-40% reduction.  Generous band for timer noise.
        assert 0.30 < ratio < 0.95, f"txn/raw ratio {ratio:.2f} out of range"

    def test_tier5_series_present_in_transactional_run(self):
        backing = InMemoryKVStore()
        manager = ClientTransactionManager(backing)
        result = run_cew_on(
            lambda: TxnDB(cew_properties(), manager=manager),
            recordcount=50,
            operationcount=500,
            threadcount=2,
        )
        summaries = result.measurements.summaries()
        for series in ("READ", "TX-READ", "START", "COMMIT"):
            assert summaries.get(series) is not None, f"missing {series}"
            assert summaries[series].count > 0


class TestFig2Mechanisms:
    def test_rate_ceiling_caps_throughput(self):
        import time

        from repro.kvstore import CloudStoreProfile, SimulatedCloudStore

        profile = CloudStoreProfile(
            name="capped",
            read_median_s=0.0,
            write_median_s=0.0,
            sigma=0.0,
            requests_per_second=500.0,
            burst=10.0,
        )
        store = SimulatedCloudStore(profile)
        started = time.perf_counter()
        for i in range(400):
            store.put(f"k{i}", {})
        elapsed = time.perf_counter() - started
        achieved = 400 / elapsed
        assert achieved < 650  # ~the ceiling, not thousands

    def test_contention_model_slows_oversubscribed_clients(self):
        import time

        from repro.harness import ContentionModel

        model = ContentionModel(base_cost_s=50e-6, per_thread_cost_s=50e-6)
        for _ in range(20):
            model.register_thread()
        started = time.perf_counter()
        for _ in range(100):
            model.pay()
        elapsed = time.perf_counter() - started
        # 100 ops * (50us + 20*50us) > 100ms of serialised cost.
        assert elapsed > 0.08
