"""End-to-end stacks: full benchmark runs over every substrate."""

import pytest

from repro.bindings import LsmDB, MemoryDB, TxnDB, registry
from repro.bindings.stores import RawHttpDB
from repro.core import Client, ClosedEconomyWorkload, CoreWorkload, Properties
from repro.core.cli import main
from repro.http import KVStoreHTTPServer
from repro.kvstore import InMemoryKVStore
from repro.kvstore.lsm import LSMKVStore
from repro.kvstore.sharded import ShardedKVStore
from repro.measurements import Measurements
from repro.txn import ClientTransactionManager


def run_benchmark(workload, properties, db_factory):
    measurements = Measurements()
    workload.init(properties, measurements)
    client = Client(workload, db_factory, properties, measurements)
    load = client.load()
    run = client.run()
    return load, run


class TestCoreWorkloadsAtoF:
    """The shipped YCSB workload files run green over the bindings."""

    @pytest.mark.parametrize("name", ["workloada", "workloadb", "workloadc",
                                      "workloadd", "workloade", "workloadf"])
    def test_workload_file_runs_on_memory(self, name, capsys):
        code = main(
            ["bench", "-db", "memory", "-P", f"workloads/{name}",
             "-p", "recordcount=50", "-p", "operationcount=100",
             "-p", "maxscanlength=10", "-p", "seed=6",
             "-p", f"memory.namespace={name}"]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "[OVERALL], Throughput(ops/sec)," in output

    def test_workloada_runs_on_lsm(self, tmp_path, capsys):
        code = main(
            ["bench", "-db", "lsm", "-P", "workloads/workloada",
             "-p", "recordcount=40", "-p", "operationcount=80",
             "-p", f"lsm.dir={tmp_path}", "-p", "seed=6"]
        )
        assert code == 0

    def test_workloada_runs_transactionally(self, capsys):
        code = main(
            ["bench", "-db", "txn", "-P", "workloads/workloada",
             "-p", "recordcount=40", "-p", "operationcount=80", "-p", "seed=6"]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "[TX-READ]" in output or "[TX-UPDATE]" in output

    def test_status_flag_streams_interval_lines_to_stderr(self, capsys):
        code = main(
            ["bench", "-db", "memory", "-P", "workloads/workloada", "-s",
             "-p", "recordcount=40", "-p", "operationcount=200", "-p", "seed=6",
             "-p", "status.interval=0.02"]
        )
        captured = capsys.readouterr()
        assert code == 0
        # Interval lines go to stderr; the report stays clean on stdout.
        assert "current ops/sec" in captured.err
        assert "[run]" in captured.err
        assert "current ops/sec" not in captured.out
        assert "[OVERALL], Throughput(ops/sec)," in captured.out

    def test_jsonl_export_emits_typed_records(self, capsys):
        import json

        code = main(
            ["bench", "-db", "memory", "-P", "workloads/workloada",
             "--export", "jsonl",
             "-p", "recordcount=40", "-p", "operationcount=80", "-p", "seed=6"]
        )
        output = capsys.readouterr().out
        assert code == 0
        records = [json.loads(line) for line in output.strip().splitlines()]
        kinds = {record["record"] for record in records}
        assert {"overall", "operation"} <= kinds
        overall = next(r for r in records if r["record"] == "overall")
        assert overall["operations"] == 80


class TestFullHttpStack:
    def test_cew_over_http_and_lsm(self, tmp_path):
        """The paper's §V-C stack: LSM store, HTTP server, RawHttpDB."""
        store = LSMKVStore(tmp_path)
        with KVStoreHTTPServer(store) as server:
            host, port = server.address
            properties = Properties(
                {
                    "recordcount": "30",
                    "operationcount": "150",
                    "totalcash": "30000",
                    "readproportion": "0.9",
                    "readmodifywriteproportion": "0.1",
                    "fieldcount": "1",
                    "threadcount": "4",
                    "http.host": host,
                    "http.port": str(port),
                    "seed": "8",
                }
            )
            workload = ClosedEconomyWorkload()
            load, run = run_benchmark(
                workload, properties, lambda: RawHttpDB(properties)
            )
            assert load.operations == 30
            assert run.operations == 150
            assert run.validation is not None
            # Raw access: the validation stage ran and produced a score
            # (zero or not depending on the actual interleavings).
            assert run.anomaly_score is not None
        store.close()


class TestTransactionsOverShardedStore:
    def test_cew_transactional_on_shards(self):
        shards = {f"s{i}": InMemoryKVStore() for i in range(3)}
        manager = ClientTransactionManager(ShardedKVStore(shards))
        properties = Properties(
            {
                "recordcount": "40",
                "operationcount": "200",
                "totalcash": "40000",
                "readproportion": "0.7",
                "readmodifywriteproportion": "0.3",
                "fieldcount": "1",
                "threadcount": "4",
                "seed": "10",
            }
        )
        workload = ClosedEconomyWorkload()
        _, run = run_benchmark(
            workload, properties, lambda: TxnDB(properties, manager=manager)
        )
        assert run.validation.passed
        assert run.anomaly_score == 0.0
        # Data really is spread across the shards.
        assert all(shard.size() > 0 for shard in shards.values())


class TestMixedBindingsShareData:
    def test_load_with_memory_run_with_delayed_wrapper(self):
        from repro.bindings import DelayedDB

        properties = Properties(
            {
                "recordcount": "20",
                "operationcount": "50",
                "totalcash": "20000",
                "fieldcount": "1",
                "memory.namespace": "mixed",
                "seed": "3",
            }
        )
        workload = ClosedEconomyWorkload()
        measurements = Measurements()
        workload.init(properties, measurements)
        Client(workload, lambda: MemoryDB(properties), properties, measurements).load()
        run = Client(
            workload,
            lambda: DelayedDB(MemoryDB(properties), read_latency=0.0),
            properties,
            measurements,
        ).run()
        assert run.operations == 50
        assert run.validation.passed
