"""Fidelity to the paper's listings, pinned by checked-in fixtures.

``fixtures/listing2.properties`` is the exact property file of Listing 2;
``fixtures/listing3_sections.txt`` is the section list a Listing-3-style
report must carry.  Keeping both on disk (rather than inline) makes the
compatibility surface reviewable and reusable: change a fixture and every
consumer sees the diff.  ``fixtures/listing3_fault_sections.txt`` pins the
report lines added by the fault/retry stack — present only when faults
actually fired, so the default report format is unchanged.
"""

from pathlib import Path

import pytest

from repro.bindings import MemoryDB
from repro.core import Client, Properties
from repro.measurements import TextExporter
from repro.core.cli import _build_workload
from repro.core.properties import parse_properties
from repro.measurements import Measurements

FIXTURES = Path(__file__).parent / "fixtures"


def load_fixture_properties(name):
    return Properties(parse_properties((FIXTURES / name).read_text()))


def load_fixture_sections(name):
    lines = (FIXTURES / name).read_text().splitlines()
    return [line for line in lines if line and not line.startswith("#")]


def execute(properties):
    workload = _build_workload(properties)
    measurements = Measurements()
    workload.init(properties, measurements)
    client = Client(workload, lambda: MemoryDB(properties), properties, measurements)
    client.load()
    result = client.run()
    return result, TextExporter().export(result.report())


@pytest.fixture
def listing2_run():
    properties = load_fixture_properties("listing2.properties")
    properties.set("threadcount", 2)
    properties.set("seed", 17)
    return execute(properties)


class TestListing2Compatibility:
    def test_java_workload_name_resolves(self):
        properties = load_fixture_properties("listing2.properties")
        from repro.core import ClosedEconomyWorkload

        assert isinstance(_build_workload(properties), ClosedEconomyWorkload)

    def test_fixture_file_matches_listing_2(self):
        """The checked-in fixture still carries Listing 2's exact knobs."""
        properties = load_fixture_properties("listing2.properties")
        assert properties.get_int("recordcount", 0) == 400
        assert properties.get_int("operationcount", 0) == 2000
        assert properties.get_int("totalcash", 0) == 400000
        assert properties.get_float("readproportion", 0) == 0.9
        assert properties.get_float("readmodifywriteproportion", 0) == 0.1
        assert properties.get_str("requestdistribution", "") == "zipfian"

    def test_mix_matches_proportions(self, listing2_run):
        result, _ = listing2_run
        summaries = result.measurements.summaries()
        rmw = summaries["TX-READMODIFYWRITE"].count
        reads = summaries["TX-READ"].count
        # 90:10 read / read-modify-write over 2000 operations.
        assert 100 <= rmw <= 320
        assert reads >= 1500

    def test_operation_total_conserved(self, listing2_run):
        result, _ = listing2_run
        assert result.operations == 2000


class TestListing3Sections:
    def test_all_sections_present(self, listing2_run):
        _, report = listing2_run
        for section in load_fixture_sections("listing3_sections.txt"):
            assert section in report, f"missing {section}"

    def test_no_fault_sections_without_faults(self, listing2_run):
        """The new counter lines must NOT leak into a clean run's report."""
        _, report = listing2_run
        for section in load_fixture_sections("listing3_fault_sections.txt"):
            assert section not in report, f"unexpected {section}"

    def test_metric_lines_per_section(self, listing2_run):
        _, report = listing2_run
        for metric in ("AverageLatency(us)", "MinLatency(us)", "MaxLatency(us)"):
            assert f"[READ], {metric}," in report

    def test_start_commit_are_near_noops_raw(self, listing2_run):
        """Listing 3 measures START/COMMIT at ~0.08 us on the raw store."""
        result, _ = listing2_run
        start = result.measurements.summary_for("START")
        assert start.count == 2400  # 400 loads + 2000 ops
        # A no-op boundary is microseconds; stay orders of magnitude under
        # a real transactional start (~ms) while tolerating scheduler
        # preemption inflating a few samples on a loaded host.
        assert start.average_us < 500

    def test_rmw_much_cheaper_than_tx_rmw(self, listing2_run):
        """Listing 3: READ-MODIFY-WRITE ~6 us vs TX-READMODIFYWRITE ~6 ms.

        The in-memory stand-in compresses the gap, but the structural
        relation (client-side modify < whole wrapped unit) must hold.
        """
        result, _ = listing2_run
        summaries = result.measurements.summaries()
        assert (
            summaries["READ-MODIFY-WRITE"].average_us
            <= summaries["TX-READMODIFYWRITE"].average_us
        )


class TestFaultReportSections:
    def test_faulted_run_adds_the_pinned_counter_lines(self):
        """Listing 2 over a faulty store: the report gains exactly the
        fixture-pinned retry/fault lines."""
        properties = load_fixture_properties("listing2.properties")
        properties.set("threadcount", 2)
        properties.set("seed", 17)
        properties.set("operationcount", 400)
        properties.set("memory.namespace", "listing-faults")
        properties.set("fault.rate", "0.05")
        properties.set("fault.seed", "11")
        properties.set("retry.max_attempts", "10")
        properties.set("retry.base_delay_ms", "0")
        properties.set("retry.max_delay_ms", "0")
        result, report = execute(properties)
        for section in load_fixture_sections("listing3_fault_sections.txt"):
            assert section in report, f"missing {section}"
        counters = result.report().counters
        assert counters["RETRIES"] > 0
        assert counters["FAULTS-TRANSIENT"] > 0
