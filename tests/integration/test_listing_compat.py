"""Fidelity to the paper's listings: the exact property file of Listing 2
drives a run whose report carries the exact section names of Listing 3."""

import pytest

from repro.bindings import MemoryDB
from repro.core import Client, Properties
from repro.measurements import TextExporter
from repro.core.cli import _build_workload
from repro.core.properties import parse_properties
from repro.measurements import Measurements

LISTING_2 = """\
recordcount=400
operationcount=2000
workload=com.yahoo.ycsb.workloads.ClosedEconomyWorkload
totalcash=400000
readproportion=0.9
readmodifywriteproportion=0.1
requestdistribution=zipfian
fieldcount=1
fieldlength=100
writeallfields=true
readallfields=true
histogram.buckets=0
"""


@pytest.fixture
def listing2_run():
    properties = Properties(parse_properties(LISTING_2))
    properties.set("threadcount", 2)
    properties.set("seed", 17)
    workload = _build_workload(properties)
    measurements = Measurements()
    workload.init(properties, measurements)
    client = Client(workload, lambda: MemoryDB(properties), properties, measurements)
    client.load()
    result = client.run()
    return result, TextExporter().export(result.report())


class TestListing2Compatibility:
    def test_java_workload_name_resolves(self):
        properties = Properties(parse_properties(LISTING_2))
        from repro.core import ClosedEconomyWorkload

        assert isinstance(_build_workload(properties), ClosedEconomyWorkload)

    def test_mix_matches_proportions(self, listing2_run):
        result, _ = listing2_run
        summaries = result.measurements.summaries()
        rmw = summaries["TX-READMODIFYWRITE"].count
        reads = summaries["TX-READ"].count
        # 90:10 read / read-modify-write over 2000 operations.
        assert rmw + (reads - summaries["READ-MODIFY-WRITE"].count * 0) >= 0
        assert 100 <= rmw <= 320
        assert reads >= 1500

    def test_operation_total_conserved(self, listing2_run):
        result, _ = listing2_run
        summaries = result.measurements.summaries()
        tx_ops = sum(
            summary.count
            for name, summary in summaries.items()
            if name in ("TX-READ", "TX-READMODIFYWRITE", "TX-ABORTED")
        )
        # Workload-level TX units: one READ per read op, one RMW per rmw op.
        rmw = summaries["TX-READMODIFYWRITE"].count
        tx_read_units = summaries["TX-READ"].count - 2 * rmw  # RMW reads 2 records
        assert tx_read_units + rmw + summaries.get("TX-ABORTED",
                                                   summaries["TX-READ"]).count >= 0
        assert result.operations == 2000


class TestListing3Sections:
    def test_all_sections_present(self, listing2_run):
        _, report = listing2_run
        for section in (
            "[TOTAL CASH]",
            "[COUNTED CASH]",
            "[ACTUAL OPERATIONS]",
            "[ANOMALY SCORE]",
            "[OVERALL], RunTime(ms)",
            "[OVERALL], Throughput(ops/sec)",
            "[START], Operations",
            "[COMMIT], Operations",
            "[READ], Operations",
            "[TX-READ], Operations",
            "[READ-MODIFY-WRITE], Operations",
            "[TX-READMODIFYWRITE], Operations",
        ):
            assert section in report, f"missing {section}"

    def test_metric_lines_per_section(self, listing2_run):
        _, report = listing2_run
        for metric in ("AverageLatency(us)", "MinLatency(us)", "MaxLatency(us)"):
            assert f"[READ], {metric}," in report

    def test_start_commit_are_near_noops_raw(self, listing2_run):
        """Listing 3 measures START/COMMIT at ~0.08 us on the raw store."""
        result, _ = listing2_run
        start = result.measurements.summary_for("START")
        assert start.count == 2400  # 400 loads + 2000 ops
        # A no-op boundary is microseconds; stay orders of magnitude under
        # a real transactional start (~ms) while tolerating scheduler
        # preemption inflating a few samples on a loaded host.
        assert start.average_us < 500

    def test_rmw_much_cheaper_than_tx_rmw(self, listing2_run):
        """Listing 3: READ-MODIFY-WRITE ~6 us vs TX-READMODIFYWRITE ~6 ms.

        The in-memory stand-in compresses the gap, but the structural
        relation (client-side modify < whole wrapped unit) must hold.
        """
        result, _ = listing2_run
        summaries = result.measurements.summaries()
        assert (
            summaries["READ-MODIFY-WRITE"].average_us
            <= summaries["TX-READMODIFYWRITE"].average_us
        )
