"""The Closed Economy Workload under injected faults.

The whole point of the fault/retry stack: a CEW run over a store that
throws transient errors and tears conditional writes must still end with
``sum(balances) + escrow == totalcash`` and an anomaly score of zero when
the transactional binding runs serializable — the retries absorb the
noise, the verify-then-decide commit keeps the reported outcomes honest,
and the report says how hard the machinery had to work.
"""

import random

import pytest

from repro.bindings import TxnDB
from repro.core import Client, ClosedEconomyWorkload, Properties
from repro.core.retry import RetryPolicy
from repro.kvstore import FaultInjectingStore, FaultProfile, InMemoryKVStore
from repro.measurements import Measurements, TextExporter
from repro.txn import ClientTransactionManager


def noop_sleep(seconds):
    pass


def build_stack(seed, isolation="serializable"):
    """A CEW-ready transactional stack with a toggleable fault layer."""
    faulty = FaultInjectingStore(InMemoryKVStore(), seed=seed, sleep=noop_sleep)
    policy = RetryPolicy(
        max_attempts=10,
        base_delay_s=0.0,
        max_delay_s=0.0,
        rng=random.Random(seed + 1),
        sleep=noop_sleep,
    )
    manager = ClientTransactionManager(
        faulty, isolation=isolation, retry_policy=policy, sleep=noop_sleep,
        lock_wait_retries=500,
    )
    return faulty, policy, manager


def run_cew(manager, properties):
    workload = ClosedEconomyWorkload()
    measurements = Measurements()
    workload.init(properties, measurements)
    client = Client(
        workload, lambda: TxnDB(properties, manager=manager), properties, measurements
    )
    return client, client.load()


def cew_properties(**overrides):
    values = {
        "recordcount": "30",
        "operationcount": "250",
        "totalcash": "30000",
        "readproportion": "0.35",
        "updateproportion": "0.2",
        "insertproportion": "0.05",
        "deleteproportion": "0.05",
        "readmodifywriteproportion": "0.35",
        "fieldcount": "1",
        "threadcount": "4",
        "seed": "13",
    }
    values.update({key: str(value) for key, value in overrides.items()})
    return Properties(values)


class TestCewInvariantUnderFaults:
    @pytest.mark.parametrize("rate", [0.01, 0.05])
    def test_invariant_holds_and_retries_fire(self, rate):
        faulty, policy, manager = build_stack(seed=int(rate * 1000))
        client, load = run_cew(manager, cew_properties())
        assert load.operations == 30
        assert load.validation.passed  # clean load: faults still off
        faulty.profile = FaultProfile(
            error_rate=rate, torn_write_rate=rate / 2, latency_spike_rate=rate
        )
        run = client.run()
        assert run.operations == 250
        assert run.validation is not None
        assert run.validation.passed, run.validation.fields
        assert run.anomaly_score == 0.0
        # The faults really fired and the retry layer really worked.
        assert faulty.stats.transient_errors > 0
        assert policy.stats.retries > 0

    @pytest.mark.slow
    def test_heavier_faults_more_threads(self):
        faulty, policy, manager = build_stack(seed=99)
        client, _ = run_cew(
            manager, cew_properties(threadcount=8, operationcount=600)
        )
        faulty.profile = FaultProfile(error_rate=0.15, torn_write_rate=0.05)
        run = client.run()
        assert run.validation.passed, run.validation.fields
        assert run.anomaly_score == 0.0
        assert faulty.stats.torn_writes > 0
        assert manager.stats.ambiguous_commits >= 0  # decided, never guessed

    def test_heavier_faults_more_threads_virtual_time(self):
        """The slow stress case re-homed onto the simulator for the fast lane.

        Same fault pressure and concurrency as the wall-clock variant
        above, but on virtual time — and *with* store latency and real
        backoff delays, which the noop-sleep wall variant has to forgo.
        Operations genuinely overlap in virtual time (the interleavings
        the fault stack must survive), yet the test runs in well under a
        second of wall time.
        """
        from repro.kvstore.latency import ConstantLatency, LatencyInjectingStore
        from repro.sim.clock import use_clock
        from repro.sim.scheduler import SimClock

        with use_clock(SimClock()):
            faulty = FaultInjectingStore(
                LatencyInjectingStore(InMemoryKVStore(), ConstantLatency(0.002)),
                seed=99,
            )
            policy = RetryPolicy(
                max_attempts=10,
                base_delay_s=0.001,
                max_delay_s=0.02,
                rng=random.Random(100),
            )
            manager = ClientTransactionManager(
                faulty,
                isolation="serializable",
                retry_policy=policy,
                lock_wait_retries=500,
            )
            client, _ = run_cew(
                manager, cew_properties(threadcount=8, operationcount=600)
            )
            faulty.profile = FaultProfile(error_rate=0.15, torn_write_rate=0.05)
            run = client.run()
        assert run.validation.passed, run.validation.fields
        assert run.anomaly_score == 0.0
        assert faulty.stats.torn_writes > 0
        assert policy.stats.retries > 0


class TestDeterminism:
    @staticmethod
    def one_run(seed):
        faulty, policy, manager = build_stack(seed=seed)
        client, _ = run_cew(manager, cew_properties(threadcount=1))
        faulty.profile = FaultProfile(error_rate=0.05, torn_write_rate=0.02)
        run = client.run()
        return (
            run.validation.passed,
            [field for field in run.validation.fields],
            faulty.stats.snapshot(),
            policy.stats.snapshot(),
            manager.stats.committed,
            manager.stats.aborted,
        )

    def test_single_threaded_runs_repeat_exactly(self):
        assert self.one_run(7) == self.one_run(7)

    def test_different_seed_different_fault_history(self):
        assert self.one_run(7)[2] != self.one_run(8)[2]


class TestReportSurfacesCounters:
    def test_property_driven_stack_reports_retry_and_fault_lines(self):
        """The registry-built TxnDB (all wiring via properties) surfaces
        nonzero fault and retry counters as Listing-3-style report lines."""
        properties = cew_properties(
            threadcount=2,
            operationcount=200,
            **{
                "txn.isolation": "serializable",
                "txn.namespace": "faulty-report",
                "fault.rate": "0.05",
                "fault.torn_write_rate": "0.02",
                "fault.seed": "4",
                "retry.max_attempts": "10",
                "retry.base_delay_ms": "0",
                "retry.max_delay_ms": "0",
            },
        )
        # Grab the shared manager so the load phase can run fault-free.
        db = TxnDB(properties)
        faulty = db.manager.store()
        assert isinstance(faulty, FaultInjectingStore)
        profile = faulty.profile
        faulty.profile = FaultProfile()

        workload = ClosedEconomyWorkload()
        measurements = Measurements()
        workload.init(properties, measurements)
        client = Client(workload, lambda: TxnDB(properties), properties, measurements)
        load = client.load()
        assert load.validation.passed
        faulty.profile = profile
        run = client.run()
        assert run.validation.passed, run.validation.fields

        report = TextExporter().export(run.report())
        assert "[FAULTS-TRANSIENT], Count," in report
        assert "[TXN-RETRIES], Count," in report
        counters = run.report().counters
        assert counters["FAULTS-TRANSIENT"] > 0
        assert counters["TXN-RETRIES"] > 0
        # Zero-valued counters stay out of the report entirely.
        assert "[RETRY-EXHAUSTED]" not in report or counters.get("TXN-RETRY-EXHAUSTED", 0) > 0

    def test_fault_free_run_report_has_no_counter_lines(self):
        properties = cew_properties(threadcount=1, operationcount=100)
        faulty, policy, manager = build_stack(seed=3)
        client, _ = run_cew(manager, properties)
        run = client.run()
        assert run.validation.passed
        report = TextExporter().export(run.report())
        assert "FAULTS-" not in report
        assert "RETRIES" not in report
