"""Simulated cloud store tests."""

import random

import pytest

from repro.kvstore import (
    GCS_PROFILE,
    WAS_PROFILE,
    CloudStoreProfile,
    RateLimitExceeded,
    SimulatedCloudStore,
)


def fast_profile(**overrides):
    """A profile with no latency so tests run instantly."""
    base = dict(
        name="test",
        read_median_s=0.0,
        write_median_s=0.0,
        sigma=0.0,
        requests_per_second=1e9,
        burst=1e9,
    )
    base.update(overrides)
    return CloudStoreProfile(**base)


class TestProfiles:
    def test_builtin_profiles_sane(self):
        for profile in (WAS_PROFILE, GCS_PROFILE):
            assert profile.read_median_s > 0
            assert profile.write_median_s >= profile.read_median_s
            assert profile.requests_per_second > 0

    def test_scaled(self):
        scaled = WAS_PROFILE.scaled(10)
        assert scaled.read_median_s == pytest.approx(WAS_PROFILE.read_median_s / 10)
        assert scaled.requests_per_second == pytest.approx(
            WAS_PROFILE.requests_per_second * 10
        )

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            WAS_PROFILE.scaled(0)


class TestDataPath:
    def test_crud_roundtrip(self):
        store = SimulatedCloudStore(fast_profile())
        assert store.put("k", {"f": "v"}) == 1
        assert store.get("k") == {"f": "v"}
        assert store.put_if_version("k", {"f": "2"}, 1) == 2
        assert store.put_if_version("k", {"f": "3"}, 1) is None
        assert store.delete_if_version("k", 2) is True

    def test_conditional_insert_is_etag_style(self):
        store = SimulatedCloudStore(fast_profile())
        assert store.put_if_version("k", {"f": "a"}, None) == 1
        assert store.put_if_version("k", {"f": "b"}, None) is None

    def test_scan(self):
        store = SimulatedCloudStore(fast_profile())
        for key in ("b", "a", "c"):
            store.put(key, {})
        assert [key for key, _ in store.scan("a", 2)] == ["a", "b"]

    def test_latency_paid_per_request(self):
        slept = []
        store = SimulatedCloudStore(
            fast_profile(read_median_s=0.010, write_median_s=0.020, sigma=0.0),
            rng=random.Random(1),
            sleep=slept.append,
        )
        store.put("k", {})
        store.get("k")
        assert len(slept) == 2
        assert slept[0] == pytest.approx(0.020, rel=0.01)
        assert slept[1] == pytest.approx(0.010, rel=0.01)

    def test_backing_store_bypasses_request_path(self):
        slept = []
        store = SimulatedCloudStore(
            fast_profile(read_median_s=0.010), sleep=slept.append
        )
        store.backing_store.put("k", {"f": "v"})
        assert store.backing_store.get("k") == {"f": "v"}
        assert slept == []


class TestThrottling:
    def test_reject_mode_raises(self):
        store = SimulatedCloudStore(
            fast_profile(requests_per_second=10, burst=2, reject_on_throttle=True)
        )
        store.put("a", {})
        store.put("b", {})
        with pytest.raises(RateLimitExceeded):
            store.put("c", {})
        assert store.throttled_requests == 1

    def test_blocking_mode_queues(self):
        waits = []
        store = SimulatedCloudStore(
            fast_profile(requests_per_second=1000, burst=1),
            sleep=waits.append,
        )
        store.put("a", {})
        store.put("b", {})  # must wait for a token
        assert store.throttled_requests == 1
        assert any(wait > 0 for wait in waits)
