"""Replicated store tests (async replication, bounded staleness)."""

import random

import pytest

from repro.kvstore import ReadPreference, ReplicatedKVStore


def make_store(lag=1.0, preference=ReadPreference.REPLICA):
    clock = [0.0]
    store = ReplicatedKVStore(
        replica_count=2,
        lag_seconds=lag,
        read_preference=preference,
        rng=random.Random(7),
        clock=lambda: clock[0],
    )
    return store, clock


class TestReplication:
    def test_replica_read_stale_before_lag(self):
        store, _ = make_store(lag=1.0)
        store.put("k", {"v": "new"})
        assert store.get("k") is None  # replicas have not applied yet

    def test_replica_read_fresh_after_lag(self):
        store, clock = make_store(lag=1.0)
        store.put("k", {"v": "new"})
        clock[0] += 1.5
        assert store.get("k") == {"v": "new"}

    def test_primary_reads_always_fresh(self):
        store, _ = make_store(lag=100.0, preference=ReadPreference.PRIMARY)
        store.put("k", {"v": "new"})
        assert store.get("k") == {"v": "new"}

    def test_monotonic_apply_order(self):
        store, clock = make_store(lag=1.0)
        store.put("k", {"v": "1"})
        clock[0] += 0.5
        store.put("k", {"v": "2"})
        clock[0] += 0.6  # only the first write is due
        assert store.get("k") == {"v": "1"}
        clock[0] += 0.5  # both due
        assert store.get("k") == {"v": "2"}

    def test_delete_replicates(self):
        store, clock = make_store(lag=1.0)
        store.put("k", {"v": "x"})
        clock[0] += 2
        assert store.get("k") == {"v": "x"}
        store.delete("k")
        assert store.get("k") == {"v": "x"}  # stale: delete not yet applied
        clock[0] += 2
        assert store.get("k") is None

    def test_flush_replication(self):
        store, _ = make_store(lag=100.0)
        store.put("k", {"v": "x"})
        assert store.replication_backlog() == 2  # one event per replica
        store.flush_replication()
        assert store.replication_backlog() == 0
        assert store.get("k") == {"v": "x"}

    def test_conditional_put_checked_on_primary(self):
        store, _ = make_store(lag=100.0)
        assert store.put_if_version("k", {"v": "a"}, None) == 1
        # Replicas are stale, but the condition is evaluated at the primary.
        assert store.put_if_version("k", {"v": "b"}, 1) == 2
        assert store.put_if_version("k", {"v": "c"}, 1) is None

    def test_size_and_keys_use_primary(self):
        store, _ = make_store(lag=100.0)
        store.put("a", {})
        store.put("b", {})
        assert store.size() == 2
        assert list(store.keys()) == ["a", "b"]

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            ReplicatedKVStore(replica_count=0)
        with pytest.raises(ValueError):
            ReplicatedKVStore(lag_seconds=-1)

    def test_clear_resets_everything(self):
        store, _ = make_store()
        store.put("k", {})
        store.clear()
        assert store.size() == 0
        assert store.replication_backlog() == 0


class TestSatelliteRegressions:
    def test_keys_iterator_survives_concurrent_mutation(self):
        """``keys()`` must hand back a snapshot, not a live view.

        The original implementation returned whatever iterator the primary
        produced straight through ``self._lock``; iterating it after the
        lock was released raced with writers.  The snapshot contract:
        mutations made *during* iteration are invisible to it and must not
        break it.
        """
        store, _ = make_store(lag=0.0, preference=ReadPreference.PRIMARY)
        for key in ("a", "b", "c", "d"):
            store.put(key, {})
        iterator = store.keys()
        seen = [next(iterator)]
        store.delete("c")          # mutate mid-iteration
        store.put("e", {})
        seen.extend(iterator)      # must not raise, must be the snapshot
        assert seen == ["a", "b", "c", "d"]
        assert list(store.keys()) == ["a", "b", "d", "e"]

    def test_delete_events_are_stamped_with_monotonic_versions(self):
        """Tombstones carry a real version, not 0.

        A delete stamped ``version=0`` sorts *before* the put it removed,
        so a delayed delete was unorderable against any later put to the
        same key.  Deletes must carry ``removed_version + 1``.
        """
        store, _ = make_store(lag=1.0)
        v1 = store.put("k", {"v": "a"})
        store.delete("k")
        events = list(store._queues[0])
        assert [e.version for e in events] == [v1, v1 + 1]
        assert all(e.version > 0 for e in events)

    def test_conditional_delete_events_are_stamped_too(self):
        store, _ = make_store(lag=1.0)
        version = store.put("k", {"v": "a"})
        assert store.delete_if_version("k", version) is True
        tombstone = store._queues[0][-1]
        assert tombstone.version == version + 1

    def test_delete_put_interleaving_is_totally_ordered(self):
        """put, delete, re-put: event stamps must strictly increase.

        Per-key versions restart at 1 after delete+reinsert, so the
        store-wide ``seq`` stamp is what orders the stream; it must be
        strictly monotonic across the interleaving, and applying the
        events in stamp order must land on the final primary state.
        """
        store, clock = make_store(lag=1.0)
        store.put("k", {"v": "old"})
        store.delete("k")
        store.put("k", {"v": "new"})  # per-key version restarts at 1 here
        events = list(store._queues[0])
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)
        # Replaying in seq order converges on the primary's state.
        clock[0] += 2.0
        assert store.get("k") == {"v": "new"}
        store.flush_replication()
        assert store.get("k") == {"v": "new"}
