"""Replicated store tests (async replication, bounded staleness)."""

import random

import pytest

from repro.kvstore import ReadPreference, ReplicatedKVStore


def make_store(lag=1.0, preference=ReadPreference.REPLICA):
    clock = [0.0]
    store = ReplicatedKVStore(
        replica_count=2,
        lag_seconds=lag,
        read_preference=preference,
        rng=random.Random(7),
        clock=lambda: clock[0],
    )
    return store, clock


class TestReplication:
    def test_replica_read_stale_before_lag(self):
        store, _ = make_store(lag=1.0)
        store.put("k", {"v": "new"})
        assert store.get("k") is None  # replicas have not applied yet

    def test_replica_read_fresh_after_lag(self):
        store, clock = make_store(lag=1.0)
        store.put("k", {"v": "new"})
        clock[0] += 1.5
        assert store.get("k") == {"v": "new"}

    def test_primary_reads_always_fresh(self):
        store, _ = make_store(lag=100.0, preference=ReadPreference.PRIMARY)
        store.put("k", {"v": "new"})
        assert store.get("k") == {"v": "new"}

    def test_monotonic_apply_order(self):
        store, clock = make_store(lag=1.0)
        store.put("k", {"v": "1"})
        clock[0] += 0.5
        store.put("k", {"v": "2"})
        clock[0] += 0.6  # only the first write is due
        assert store.get("k") == {"v": "1"}
        clock[0] += 0.5  # both due
        assert store.get("k") == {"v": "2"}

    def test_delete_replicates(self):
        store, clock = make_store(lag=1.0)
        store.put("k", {"v": "x"})
        clock[0] += 2
        assert store.get("k") == {"v": "x"}
        store.delete("k")
        assert store.get("k") == {"v": "x"}  # stale: delete not yet applied
        clock[0] += 2
        assert store.get("k") is None

    def test_flush_replication(self):
        store, _ = make_store(lag=100.0)
        store.put("k", {"v": "x"})
        assert store.replication_backlog() == 2  # one event per replica
        store.flush_replication()
        assert store.replication_backlog() == 0
        assert store.get("k") == {"v": "x"}

    def test_conditional_put_checked_on_primary(self):
        store, _ = make_store(lag=100.0)
        assert store.put_if_version("k", {"v": "a"}, None) == 1
        # Replicas are stale, but the condition is evaluated at the primary.
        assert store.put_if_version("k", {"v": "b"}, 1) == 2
        assert store.put_if_version("k", {"v": "c"}, 1) is None

    def test_size_and_keys_use_primary(self):
        store, _ = make_store(lag=100.0)
        store.put("a", {})
        store.put("b", {})
        assert store.size() == 2
        assert list(store.keys()) == ["a", "b"]

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            ReplicatedKVStore(replica_count=0)
        with pytest.raises(ValueError):
            ReplicatedKVStore(lag_seconds=-1)

    def test_clear_resets_everything(self):
        store, _ = make_store()
        store.put("k", {})
        store.clear()
        assert store.size() == 0
        assert store.replication_backlog() == 0
