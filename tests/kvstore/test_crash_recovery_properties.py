"""Property tests: the store engine under crashes loses no acknowledged write.

Three invariants, each over arbitrary operation sequences:

* a WAL whose final record is torn (the ``wal.mid_append`` crash window)
  replays exactly the records before it — the torn tail is dropped, the
  prefix survives byte-for-byte;
* corruption anywhere *before* the final record is a
  :class:`WalCorruptionError`, never a silent truncation;
* an LSM store crashed at ``lsm.mid_checkpoint`` (segment published, WAL
  not yet truncated) reopens with every acknowledged write intact — the
  double-presence of flushed records is resolved idempotently by
  sequence number.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.kvstore.lsm import LSMKVStore
from repro.kvstore.lsm.wal import WalCorruptionError, WalRecord, WriteAheadLog
from repro.recovery import CrashError, CrashInjector, use_crash_injector

_keys = st.text(
    alphabet=st.characters(codec="ascii", exclude_characters="\n\r"),
    min_size=1,
    max_size=8,
)
_fields = st.dictionaries(
    st.text(min_size=1, max_size=6), st.text(max_size=12), min_size=1, max_size=3
)

#: (key, fields-or-None) — None is a delete.
_ops = st.lists(
    st.tuples(_keys, st.one_of(st.none(), _fields)), min_size=1, max_size=20
)

_SLOW_OK = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def _records(ops) -> list[WalRecord]:
    return [
        WalRecord(seq, "delete" if value is None else "put", key, value)
        for seq, (key, value) in enumerate(ops, start=1)
    ]


class TestTornTailReplay:
    @given(ops=_ops, torn_fraction=st.floats(min_value=0.01, max_value=0.99))
    @_SLOW_OK
    def test_torn_tail_drops_exactly_the_final_record(
        self, tmp_path_factory, ops, torn_fraction
    ):
        path = tmp_path_factory.mktemp("wal") / "wal.log"
        wal = WriteAheadLog(path)
        records = _records(ops)
        for record in records[:-1]:
            wal.append(record)
        wal.close()
        # Tear the final record the way a mid-write crash would: some
        # prefix of its serialised line, no trailing newline.
        line = records[-1].to_json() + "\n"
        cut = max(1, int(len(line) * torn_fraction))
        with open(path, "a") as handle:
            handle.write(line[:cut])

        replayed = list(WriteAheadLog(path).replay())
        if cut >= len(line) - 1:  # the JSON survived; only the newline tore
            assert replayed == records
        else:
            assert replayed == records[:-1]

    @given(ops=_ops)
    @_SLOW_OK
    def test_mid_append_crashpoint_leaves_replayable_torn_tail(
        self, tmp_path_factory, ops
    ):
        """The injected crash writes a real torn tail, not a clean stop."""
        path = tmp_path_factory.mktemp("wal") / "wal.log"
        wal = WriteAheadLog(path)
        records = _records(ops)
        with use_crash_injector(CrashInjector({"wal.mid_append": len(records)})):
            for record in records[:-1]:
                wal.append(record)  # hits 1..n-1; the scheduled hit is last
            with pytest.raises(CrashError):
                wal.append(records[-1])
        wal.close()

        replayed = list(WriteAheadLog(path).replay())
        assert replayed == records[:-1]
        # The torn half-record is really on disk: intact lines, no final \n.
        text = path.read_text()
        assert text.count("\n") == len(records) - 1
        assert not text.endswith("\n")


class TestMidFileCorruption:
    @given(ops=_ops, position=st.integers(min_value=0, max_value=18))
    @_SLOW_OK
    def test_corruption_before_the_tail_raises(self, tmp_path_factory, ops, position):
        path = tmp_path_factory.mktemp("wal") / "wal.log"
        wal = WriteAheadLog(path)
        for record in _records(ops):
            wal.append(record)
        wal.close()
        lines = path.read_text().splitlines()
        index = min(position, len(lines) - 1)
        lines[index] = '{"seq": broken'
        path.write_text("\n".join(lines) + "\n")

        replay = WriteAheadLog(path).replay()
        if index == len(lines) - 1:  # tail corruption: tolerated torn write
            assert len(list(replay)) == len(lines) - 1
        else:
            with pytest.raises(WalCorruptionError):
                list(replay)


class TestCheckpointCrash:
    @given(ops=_ops)
    @_SLOW_OK
    def test_mid_checkpoint_crash_loses_no_acknowledged_write(
        self, tmp_path_factory, ops
    ):
        directory = tmp_path_factory.mktemp("lsm")
        store = LSMKVStore(directory, memtable_bytes=1 << 20)
        expected: dict[str, dict] = {}
        # Seed one record so the memtable is never empty — an all-deletes
        # sequence over absent keys records nothing and the flush (and
        # its crash window) would be skipped entirely.
        store.put("!seed", {"s": "1"})
        expected["!seed"] = {"s": "1"}
        for key, value in ops:
            if value is None:
                store.delete(key)
                expected.pop(key, None)
            else:
                store.put(key, value)
                expected[key] = dict(value)
        # Crash between publishing the flush segment and truncating the
        # WAL: both now hold the same records.
        with use_crash_injector(CrashInjector({"lsm.mid_checkpoint": 1})):
            with pytest.raises(CrashError):
                store.flush()
        # No close(): a crashed process does not get to run shutdown.

        reopened = LSMKVStore(directory, memtable_bytes=1 << 20)
        for key in {key for key, _ in ops} | {"!seed"}:
            versioned = reopened.get_with_meta(key)
            if key in expected:
                assert versioned is not None, f"acknowledged write to {key!r} lost"
                assert versioned.value == expected[key]
            else:
                assert versioned is None, f"deleted key {key!r} resurrected"
        reopened.close()
