"""Log-structured store tests: WAL, memtable, SSTables, the engine."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvstore.lsm import (
    BloomFilter,
    LSMKVStore,
    Memtable,
    MemtableEntry,
    SSTable,
    SSTableCorruptionError,
    WalCorruptionError,
    WalRecord,
    WriteAheadLog,
)


class TestWal:
    def test_append_replay_roundtrip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append(WalRecord(1, "put", "a", {"f": "1"}))
        wal.append(WalRecord(2, "delete", "a"))
        wal.close()
        records = list(WriteAheadLog(tmp_path / "wal.log").replay())
        assert records == [
            WalRecord(1, "put", "a", {"f": "1"}),
            WalRecord(2, "delete", "a", None),
        ]

    def test_truncate(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append(WalRecord(1, "put", "a", {}))
        wal.truncate()
        wal.append(WalRecord(2, "put", "b", {}))
        assert [record.key for record in wal.replay()] == ["b"]

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append(WalRecord(1, "put", "a", {"f": "1"}))
        wal.close()
        with open(path, "a") as handle:
            handle.write('{"seq": 2, "op": "put", "key"')  # crash mid-write
        records = list(WriteAheadLog(path).replay())
        assert [record.sequence for record in records] == [1]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_text('garbage\n{"seq": 1, "op": "put", "key": "a", "value": {}}\n')
        with pytest.raises(WalCorruptionError):
            list(WriteAheadLog(path).replay())

    def test_missing_file_replays_empty(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.close()
        (tmp_path / "wal.log").unlink()
        assert list(wal.replay()) == []


class TestMemtable:
    def test_upsert_lookup(self):
        table = Memtable()
        table.upsert("k", 1, {"f": "v"})
        entry = table.lookup("k")
        assert entry.value == {"f": "v"}
        assert not entry.is_tombstone

    def test_tombstone(self):
        table = Memtable()
        table.upsert("k", 1, {"f": "v"})
        table.upsert("k", 2, None)
        assert table.lookup("k").is_tombstone
        assert len(table) == 1

    def test_entries_ordered(self):
        table = Memtable()
        for key in ("c", "a", "b"):
            table.upsert(key, 1, {})
        assert [entry.key for entry in table.entries()] == ["a", "b", "c"]

    def test_range_from(self):
        table = Memtable()
        for key in ("a", "b", "c"):
            table.upsert(key, 1, {})
        assert [entry.key for entry in table.range_from("b")] == ["b", "c"]

    def test_size_accounting(self):
        table = Memtable()
        assert table.approximate_bytes == 0
        table.upsert("key", 1, {"field": "value"})
        first = table.approximate_bytes
        assert first > 0
        table.upsert("key", 2, {"field": "longer-value-here"})
        assert table.approximate_bytes > first
        table.clear()
        assert table.approximate_bytes == 0


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(1000)
        keys = [f"key{i}" for i in range(1000)]
        for key in keys:
            bloom.add(key)
        assert all(bloom.may_contain(key) for key in keys)

    def test_false_positive_rate_reasonable(self):
        bloom = BloomFilter(1000, bits_per_item=10)
        for i in range(1000):
            bloom.add(f"key{i}")
        false_positives = sum(
            1 for i in range(10000) if bloom.may_contain(f"other{i}")
        )
        assert false_positives / 10000 < 0.05  # theory: ~1%

    def test_empty_filter_rejects(self):
        bloom = BloomFilter(10)
        assert not bloom.may_contain("anything")


class TestSSTable:
    def _entries(self):
        return [
            MemtableEntry("a", 1, {"f": "1"}),
            MemtableEntry("b", 2, None),
            MemtableEntry("c", 3, {"f": "3"}),
        ]

    def test_write_and_lookup(self, tmp_path):
        table = SSTable.write(tmp_path / "s.sst", self._entries())
        assert len(table) == 3
        assert table.lookup("a").value == {"f": "1"}
        assert table.lookup("b").is_tombstone
        assert table.lookup("zz") is None

    def test_reopen(self, tmp_path):
        SSTable.write(tmp_path / "s.sst", self._entries())
        table = SSTable(tmp_path / "s.sst")
        assert table.lookup("c").value == {"f": "3"}
        assert table.min_sequence == 1
        assert table.max_sequence == 3

    def test_range_from(self, tmp_path):
        table = SSTable.write(tmp_path / "s.sst", self._entries())
        assert [entry.key for entry in table.range_from("b")] == ["b", "c"]

    def test_rejects_unsorted_entries(self, tmp_path):
        entries = [MemtableEntry("b", 1, {}), MemtableEntry("a", 2, {})]
        with pytest.raises(ValueError):
            SSTable.write(tmp_path / "s.sst", entries)

    def test_rejects_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.sst"
        path.write_text("not json\n")
        with pytest.raises(SSTableCorruptionError):
            SSTable(path)

    def test_rejects_count_mismatch(self, tmp_path):
        path = tmp_path / "bad.sst"
        header = json.dumps({"format": 1, "count": 5, "min_seq": 1, "max_seq": 1})
        record = json.dumps({"key": "a", "seq": 1, "value": {}})
        path.write_text(header + "\n" + record + "\n")
        with pytest.raises(SSTableCorruptionError):
            SSTable(path)

    def test_delete_file(self, tmp_path):
        table = SSTable.write(tmp_path / "s.sst", self._entries())
        table.delete_file()
        assert not (tmp_path / "s.sst").exists()


class TestLSMStore:
    def test_basic_roundtrip(self, tmp_path):
        with LSMKVStore(tmp_path) as store:
            store.put("k", {"f": "v"})
            assert store.get("k") == {"f": "v"}
            store.delete("k")
            assert store.get("k") is None

    def test_versions_monotonic_per_key(self, tmp_path):
        with LSMKVStore(tmp_path) as store:
            v1 = store.put("k", {"f": "1"})
            v2 = store.put("k", {"f": "2"})
            assert v2 > v1
            assert store.get_with_meta("k").version == v2

    def test_flush_and_read_from_segment(self, tmp_path):
        with LSMKVStore(tmp_path) as store:
            store.put("k", {"f": "v"})
            store.flush()
            assert store.segment_count == 1
            assert store.get("k") == {"f": "v"}

    def test_automatic_flush_on_threshold(self, tmp_path):
        with LSMKVStore(tmp_path, memtable_bytes=256) as store:
            for i in range(50):
                store.put(f"key{i:03d}", {"f": "x" * 20})
            assert store.segment_count >= 1
            assert store.size() == 50

    def test_newest_version_wins_across_segments(self, tmp_path):
        with LSMKVStore(tmp_path) as store:
            store.put("k", {"f": "old"})
            store.flush()
            store.put("k", {"f": "new"})
            store.flush()
            assert store.get("k") == {"f": "new"}

    def test_tombstone_shadows_older_segments(self, tmp_path):
        with LSMKVStore(tmp_path) as store:
            store.put("k", {"f": "v"})
            store.flush()
            store.delete("k")
            store.flush()
            assert store.get("k") is None
            assert store.size() == 0

    def test_scan_merges_memtable_and_segments(self, tmp_path):
        with LSMKVStore(tmp_path) as store:
            store.put("a", {"v": "seg"})
            store.put("c", {"v": "seg"})
            store.flush()
            store.put("b", {"v": "mem"})
            store.put("c", {"v": "mem"})  # newer version in memtable
            result = store.scan("a", 10)
            assert result == [
                ("a", {"v": "seg"}),
                ("b", {"v": "mem"}),
                ("c", {"v": "mem"}),
            ]

    def test_recovery_from_wal(self, tmp_path):
        store = LSMKVStore(tmp_path)
        store.put("k", {"f": "v"})
        store.put("gone", {"f": "x"})
        store.delete("gone")
        # Simulate crash: abandon without close()/flush().
        store._wal.close()
        recovered = LSMKVStore(tmp_path)
        assert recovered.get("k") == {"f": "v"}
        assert recovered.get("gone") is None
        recovered.close()

    def test_recovery_from_segments_and_wal(self, tmp_path):
        store = LSMKVStore(tmp_path)
        store.put("a", {"f": "1"})
        store.flush()
        store.put("b", {"f": "2"})  # only in WAL
        store._wal.close()
        recovered = LSMKVStore(tmp_path)
        assert recovered.get("a") == {"f": "1"}
        assert recovered.get("b") == {"f": "2"}
        # Sequence numbers continue past recovered history.
        v = recovered.put("c", {"f": "3"})
        assert v > recovered.get_with_meta("a").version
        recovered.close()

    def test_compaction_drops_garbage(self, tmp_path):
        with LSMKVStore(tmp_path) as store:
            for i in range(20):
                store.put("hot", {"n": str(i)})
                store.flush()
            store.put("dead", {})
            store.flush()
            store.delete("dead")
            store.flush()
            discarded = store.compact()
            assert discarded > 0
            assert store.segment_count == 1
            assert store.get("hot") == {"n": "19"}
            assert store.get("dead") is None

    def test_conditional_operations(self, tmp_path):
        with LSMKVStore(tmp_path) as store:
            assert store.put_if_version("k", {"f": "a"}, None) is not None
            assert store.put_if_version("k", {"f": "b"}, None) is None
            version = store.get_with_meta("k").version
            assert store.put_if_version("k", {"f": "c"}, version) is not None
            assert store.delete_if_version("k", version) is None  # stale
            fresh = store.get_with_meta("k").version
            assert store.delete_if_version("k", fresh) is True

    def test_keys_and_size(self, tmp_path):
        with LSMKVStore(tmp_path) as store:
            for key in ("b", "a", "c"):
                store.put(key, {})
            store.delete("b")
            assert list(store.keys()) == ["a", "c"]
            assert store.size() == 2

    def test_reopen_after_close_round_trips(self, tmp_path):
        with LSMKVStore(tmp_path) as store:
            store.put("k", {"f": "v"})
        with LSMKVStore(tmp_path) as store:
            assert store.get("k") == {"f": "v"}

    @given(
        operations=st.lists(
            st.one_of(
                st.tuples(
                    st.just("put"),
                    st.sampled_from("abcdef"),
                    st.text(min_size=1, max_size=4),
                ),
                st.tuples(st.just("delete"), st.sampled_from("abcdef"), st.just("")),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_model_based_with_flushes(self, tmp_path_factory, operations):
        """With a tiny memtable (frequent flushes) the store still matches
        a plain dict."""
        directory = tmp_path_factory.mktemp("lsm")
        model: dict[str, dict[str, str]] = {}
        with LSMKVStore(directory, memtable_bytes=64) as store:
            for op, key, value in operations:
                if op == "put":
                    store.put(key, {"v": value})
                    model[key] = {"v": value}
                else:
                    assert store.delete(key) == (key in model)
                    model.pop(key, None)
            assert store.size() == len(model)
            for key, expected in model.items():
                assert store.get(key) == expected
            assert [k for k, _ in store.scan("", 10)] == sorted(model)
