"""One contract, every store.

Runs the same :class:`~repro.kvstore.base.KeyValueStore` behavioural
contract against every store implementation in the repository (plus the
HTTP client, with and without write-behind batching), so a new backend
cannot silently diverge on the semantics the transaction layer depends
on — especially the conditional writes.

The matrix is self-policing: :func:`test_every_store_class_is_in_the_matrix`
walks the concrete ``KeyValueStore`` subclasses in the ``repro`` package
and fails if one is neither parametrised below nor explicitly exempted,
so adding a store without contract coverage is a test failure, not a
code-review hope.
"""

import inspect
import random

import pytest

from repro.cluster.replicated import (
    ReplicatedShardCluster,
    ReplicatedShardHttpCluster,
    ReplicatedShardRoutedStore,
    _HttpLeaderStore,
    _ShardLeaderStore,
)
from repro.cluster.router import ShardRoutedStore
from repro.core.retry import RetryPolicy, RetryingStore
from repro.http import HttpKVStore, KVStoreHTTPServer
from repro.http.batching import BatchingKVStore
from repro.kvstore import (
    FaultInjectingStore,
    InMemoryKVStore,
    LatencyInjectingStore,
    NoLatency,
    ReadPreference,
    ReplicatedKVStore,
    ShardedKVStore,
    SimulatedCloudStore,
)
from repro.kvstore.base import KeyValueStore
from repro.kvstore.cloud import CloudStoreProfile
from repro.kvstore.lsm import LSMKVStore
from repro.recovery.store import CrashpointStore
from repro.replication import (
    ConsistencyLevel,
    InProcessReplicaSet,
    LeaderStoreAdapter,
    ReplicaRoutedStore,
    ReplicationNode,
)

_FAST_CLOUD = CloudStoreProfile(
    name="fast",
    read_median_s=0.0,
    write_median_s=0.0,
    sigma=0.0,
    requests_per_second=1e9,
    burst=1e9,
)

#: kind -> store class it exercises, for the coverage sweep below.
MATRIX = {
    "memory": InMemoryKVStore,
    "lsm": LSMKVStore,
    "cloud": SimulatedCloudStore,
    "sharded": ShardedKVStore,
    "shard-routed": ShardRoutedStore,
    "replicated-primary": ReplicatedKVStore,
    "faults-off": FaultInjectingStore,
    "latency-zero": LatencyInjectingStore,
    "retrying": RetryingStore,
    "http": HttpKVStore,
    "http-batching": BatchingKVStore,
    "crashpoint-quiet": CrashpointStore,
    "leader-adapter": LeaderStoreAdapter,
    "replica-routed": ReplicaRoutedStore,
    "replicated-shard-routed": ReplicatedShardRoutedStore,
    "replicated-shard-leader": _ShardLeaderStore,
    "replicated-shard-http-leader": _HttpLeaderStore,
}


@pytest.fixture(params=sorted(MATRIX))
def store(request, tmp_path):
    """A fresh store of each kind, torn down afterwards."""
    kind = request.param
    if kind == "memory":
        yield InMemoryKVStore()
    elif kind == "lsm":
        engine = LSMKVStore(tmp_path)
        yield engine
        engine.close()
    elif kind == "cloud":
        yield SimulatedCloudStore(_FAST_CLOUD)
    elif kind == "sharded":
        yield ShardedKVStore({f"s{i}": InMemoryKVStore() for i in range(3)})
    elif kind == "shard-routed":
        # The cluster router: same ring, but shards are opaque stores
        # (in production, HTTP clients against the shard servers).
        yield ShardRoutedStore({f"s{i}": InMemoryKVStore() for i in range(3)})
    elif kind == "replicated-primary":
        yield ReplicatedKVStore(
            replica_count=1,
            lag_seconds=0.0,
            read_preference=ReadPreference.PRIMARY,
            rng=random.Random(1),
        )
    elif kind == "faults-off":
        # Default profile: every fault rate is zero.  The wrapper must be
        # perfectly transparent when quiet.
        yield FaultInjectingStore(InMemoryKVStore())
    elif kind == "latency-zero":
        yield LatencyInjectingStore(InMemoryKVStore(), NoLatency())
    elif kind == "retrying":
        yield RetryingStore(
            InMemoryKVStore(), RetryPolicy(max_attempts=2, sleep=lambda _s: None)
        )
    elif kind == "http":
        backing = InMemoryKVStore()
        server = KVStoreHTTPServer(backing).start()
        client = HttpKVStore(server.address)
        yield client
        client.close()
        server.stop()
    elif kind == "crashpoint-quiet":
        # No injector installed: the crashpoint wrapper must be perfectly
        # transparent, like faults-off for the fault wrapper.
        yield CrashpointStore(InMemoryKVStore())
    elif kind == "leader-adapter":
        # The replication leader's write path: every mutation is logged
        # for shipping, so the suite proves logging changes no semantics.
        node = ReplicationNode("leader", clock=lambda: 0.0)
        node.promote(1)
        yield LeaderStoreAdapter(node)
    elif kind == "replica-routed":
        # The client-side consistency router at its strictest level:
        # every operation lands on the leader through the replica view.
        replica_set = InProcessReplicaSet(follower_count=1, clock=lambda: 0.0)
        yield replica_set.routed(ConsistencyLevel.STRONG)
    elif kind == "replicated-shard-routed":
        # The replicated shard router at its strictest level: every key
        # hashes to a shard, every operation lands on that shard's leader
        # through the group view — replica sets change no semantics.
        cluster = ReplicatedShardCluster(
            shard_count=2, follower_count=1, clock=lambda: 0.0
        )
        yield cluster.routed(ConsistencyLevel.STRONG)
    elif kind == "replicated-shard-leader":
        # The self-healing per-shard leader proxy the 2PC layer writes
        # through: re-resolves the group's lease on every call, so 2PC
        # state (locks, intents, TSRs) always lands on the current leader.
        cluster = ReplicatedShardCluster(
            shard_count=1, follower_count=1, clock=lambda: 0.0
        )
        yield _ShardLeaderStore(cluster.groups["shard0"])
    elif kind == "replicated-shard-http-leader":
        # The same proxy over the wire: resolves the shard's current
        # leader *server* per call and speaks the HTTP store protocol.
        http_cluster = ReplicatedShardHttpCluster(
            shard_count=1, follower_count=1
        ).start()
        yield _HttpLeaderStore(http_cluster, "shard0")
        http_cluster.stop()
    elif kind == "http-batching":
        # The batch-coalescing wrapper over the real wire protocol: the
        # whole suite doubles as the proof that write-behind batching
        # preserves read-your-writes and conditional-write semantics.
        backing = InMemoryKVStore()
        server = KVStoreHTTPServer(backing).start()
        client = BatchingKVStore(HttpKVStore(server.address), batch_size=3)
        yield client
        client.close()
        server.stop()


class TestStoreContract:
    def test_get_missing_is_none(self, store):
        assert store.get("missing") is None
        assert store.get_with_meta("missing") is None

    def test_put_get_roundtrip(self, store):
        store.put("k", {"f": "v", "g": "w"})
        assert store.get("k") == {"f": "v", "g": "w"}

    def test_versions_increase_per_key(self, store):
        v1 = store.put("k", {"f": "1"})
        v2 = store.put("k", {"f": "2"})
        assert v2 > v1
        assert store.get_with_meta("k").version == v2

    def test_insert_if_absent(self, store):
        assert store.put_if_version("k", {"f": "a"}, None) is not None
        assert store.put_if_version("k", {"f": "b"}, None) is None
        assert store.get("k") == {"f": "a"}

    def test_conditional_update_exactly_once(self, store):
        store.put("k", {"n": "0"})
        version = store.get_with_meta("k").version
        assert store.put_if_version("k", {"n": "1"}, version) is not None
        assert store.put_if_version("k", {"n": "2"}, version) is None
        assert store.get("k") == {"n": "1"}

    def test_conditional_update_missing_key_fails(self, store):
        assert store.put_if_version("missing", {"f": "v"}, 1) is None

    def test_delete_semantics(self, store):
        store.put("k", {})
        assert store.delete("k") is True
        assert store.delete("k") is False
        assert store.get("k") is None

    def test_conditional_delete(self, store):
        store.put("k", {})
        version = store.get_with_meta("k").version
        assert store.delete_if_version("k", version + 7) is None
        assert store.delete_if_version("k", version) is True
        assert store.delete_if_version("k", version) is False

    def test_scan_is_ordered_and_bounded(self, store):
        for key in ("d", "b", "a", "c"):
            store.put(key, {"k": key})
        result = store.scan("b", 2)
        assert [key for key, _ in result] == ["b", "c"]
        assert result[0][1] == {"k": "b"}

    def test_scan_empty_and_nonpositive(self, store):
        assert store.scan("zzz", 5) == []
        store.put("a", {})
        assert store.scan("", 0) == []

    def test_size_and_keys(self, store):
        for key in ("b", "a"):
            store.put(key, {})
        store.delete("a")
        assert store.size() == 1
        assert list(store.keys()) == ["b"]

    def test_cas_loop_always_progresses(self, store):
        store.put("counter", {"n": "0"})
        for _ in range(5):
            while True:
                current = store.get_with_meta("counter")
                next_value = {"n": str(int(current.value["n"]) + 1)}
                if store.put_if_version("counter", next_value, current.version):
                    break
        assert store.get("counter") == {"n": "5"}

    def test_put_batch_lands_and_reads_back(self, store):
        """Stores exposing bulk writes must keep read-your-writes.

        The batching wrapper buffers ``put_batch`` but flushes before any
        other operation, so every store with a batch path must show all
        batched records to an immediate read or scan.
        """
        if not hasattr(store, "put_batch"):
            pytest.skip("store has no bulk-write path")
        records = [(f"user{i}", {"n": str(i)}) for i in range(7)]
        versions = store.put_batch(records)
        assert len(versions) == len(records)
        assert store.get("user3") == {"n": "3"}
        assert [key for key, _ in store.scan("user0", 7)] == [k for k, _ in records]

    def test_transactions_run_on_top(self, store):
        """The contract is sufficient for the transaction layer."""
        from repro.txn import ClientTransactionManager

        manager = ClientTransactionManager(store)
        with manager.transaction() as tx:
            tx.write("acct:a", {"bal": "10"})
            tx.write("acct:b", {"bal": "20"})
        with manager.transaction() as tx:
            a = int(tx.read("acct:a")["bal"])
            b = int(tx.read("acct:b")["bal"])
            tx.write("acct:a", {"bal": str(a - 5)})
            tx.write("acct:b", {"bal": str(b + 5)})
        with manager.transaction() as tx:
            assert tx.read("acct:a") == {"bal": "5"}
            assert tx.read("acct:b") == {"bal": "25"}


def _concrete_store_classes() -> set[type]:
    """Every concrete KeyValueStore subclass shipped in ``repro``.

    Test doubles (``tests.*`` modules) are out of scope — only classes a
    user can actually deploy must be in the matrix.
    """
    found: set[type] = set()
    stack = list(KeyValueStore.__subclasses__())
    while stack:
        cls = stack.pop()
        stack.extend(cls.__subclasses__())
        if cls.__module__.startswith("repro.") and not inspect.isabstract(cls):
            found.add(cls)
    return found


def test_every_store_class_is_in_the_matrix():
    """Adding a store without contract coverage fails loudly."""
    covered = set(MATRIX.values())
    missing = {cls.__name__ for cls in _concrete_store_classes() - covered}
    assert not missing, (
        f"stores without contract coverage: {sorted(missing)}; add them to "
        "the MATRIX in tests/kvstore/test_store_contract.py"
    )
