"""One contract, every store.

Runs the same :class:`~repro.kvstore.base.KeyValueStore` behavioural
contract against every store implementation in the repository (plus the
HTTP client), so a new backend cannot silently diverge on the semantics
the transaction layer depends on — especially the conditional writes.
"""

import random

import pytest

from repro.http import HttpKVStore, KVStoreHTTPServer
from repro.kvstore import (
    InMemoryKVStore,
    ReadPreference,
    ReplicatedKVStore,
    ShardedKVStore,
    SimulatedCloudStore,
)
from repro.kvstore.cloud import CloudStoreProfile
from repro.kvstore.lsm import LSMKVStore

_FAST_CLOUD = CloudStoreProfile(
    name="fast",
    read_median_s=0.0,
    write_median_s=0.0,
    sigma=0.0,
    requests_per_second=1e9,
    burst=1e9,
)


@pytest.fixture(
    params=["memory", "lsm", "cloud", "sharded", "replicated-primary", "http"]
)
def store(request, tmp_path):
    """A fresh store of each kind, torn down afterwards."""
    kind = request.param
    if kind == "memory":
        yield InMemoryKVStore()
    elif kind == "lsm":
        engine = LSMKVStore(tmp_path)
        yield engine
        engine.close()
    elif kind == "cloud":
        yield SimulatedCloudStore(_FAST_CLOUD)
    elif kind == "sharded":
        yield ShardedKVStore({f"s{i}": InMemoryKVStore() for i in range(3)})
    elif kind == "replicated-primary":
        yield ReplicatedKVStore(
            replica_count=1,
            lag_seconds=0.0,
            read_preference=ReadPreference.PRIMARY,
            rng=random.Random(1),
        )
    elif kind == "http":
        backing = InMemoryKVStore()
        server = KVStoreHTTPServer(backing).start()
        client = HttpKVStore(server.address)
        yield client
        client.close()
        server.stop()


class TestStoreContract:
    def test_get_missing_is_none(self, store):
        assert store.get("missing") is None
        assert store.get_with_meta("missing") is None

    def test_put_get_roundtrip(self, store):
        store.put("k", {"f": "v", "g": "w"})
        assert store.get("k") == {"f": "v", "g": "w"}

    def test_versions_increase_per_key(self, store):
        v1 = store.put("k", {"f": "1"})
        v2 = store.put("k", {"f": "2"})
        assert v2 > v1
        assert store.get_with_meta("k").version == v2

    def test_insert_if_absent(self, store):
        assert store.put_if_version("k", {"f": "a"}, None) is not None
        assert store.put_if_version("k", {"f": "b"}, None) is None
        assert store.get("k") == {"f": "a"}

    def test_conditional_update_exactly_once(self, store):
        store.put("k", {"n": "0"})
        version = store.get_with_meta("k").version
        assert store.put_if_version("k", {"n": "1"}, version) is not None
        assert store.put_if_version("k", {"n": "2"}, version) is None
        assert store.get("k") == {"n": "1"}

    def test_conditional_update_missing_key_fails(self, store):
        assert store.put_if_version("missing", {"f": "v"}, 1) is None

    def test_delete_semantics(self, store):
        store.put("k", {})
        assert store.delete("k") is True
        assert store.delete("k") is False
        assert store.get("k") is None

    def test_conditional_delete(self, store):
        store.put("k", {})
        version = store.get_with_meta("k").version
        assert store.delete_if_version("k", version + 7) is None
        assert store.delete_if_version("k", version) is True
        assert store.delete_if_version("k", version) is False

    def test_scan_is_ordered_and_bounded(self, store):
        for key in ("d", "b", "a", "c"):
            store.put(key, {"k": key})
        result = store.scan("b", 2)
        assert [key for key, _ in result] == ["b", "c"]
        assert result[0][1] == {"k": "b"}

    def test_scan_empty_and_nonpositive(self, store):
        assert store.scan("zzz", 5) == []
        store.put("a", {})
        assert store.scan("", 0) == []

    def test_size_and_keys(self, store):
        for key in ("b", "a"):
            store.put(key, {})
        store.delete("a")
        assert store.size() == 1
        assert list(store.keys()) == ["b"]

    def test_cas_loop_always_progresses(self, store):
        store.put("counter", {"n": "0"})
        for _ in range(5):
            while True:
                current = store.get_with_meta("counter")
                next_value = {"n": str(int(current.value["n"]) + 1)}
                if store.put_if_version("counter", next_value, current.version):
                    break
        assert store.get("counter") == {"n": "5"}

    def test_transactions_run_on_top(self, store):
        """The contract is sufficient for the transaction layer."""
        from repro.txn import ClientTransactionManager

        manager = ClientTransactionManager(store)
        with manager.transaction() as tx:
            tx.write("acct:a", {"bal": "10"})
            tx.write("acct:b", {"bal": "20"})
        with manager.transaction() as tx:
            a = int(tx.read("acct:a")["bal"])
            b = int(tx.read("acct:b")["bal"])
            tx.write("acct:a", {"bal": str(a - 5)})
            tx.write("acct:b", {"bal": str(b + 5)})
        with manager.transaction() as tx:
            assert tx.read("acct:a") == {"bal": "5"}
            assert tx.read("acct:b") == {"bal": "25"}
