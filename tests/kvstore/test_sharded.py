"""Consistent-hash ring and sharded store tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvstore import ConsistentHashRing, InMemoryKVStore, ShardedKVStore


def make_store(shard_count=3):
    shards = {f"shard{i}": InMemoryKVStore() for i in range(shard_count)}
    return ShardedKVStore(shards), shards


class TestConsistentHashRing:
    def test_owner_is_stable(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        assert ring.owner("key1") == ring.owner("key1")

    def test_all_shards_receive_keys(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        owners = {ring.owner(f"key{i}") for i in range(1000)}
        assert owners == {"a", "b", "c"}

    def test_balance_reasonable(self):
        ring = ConsistentHashRing(["a", "b", "c", "d"], replicas=128)
        counts = {"a": 0, "b": 0, "c": 0, "d": 0}
        for i in range(8000):
            counts[ring.owner(f"key{i}")] += 1
        for count in counts.values():
            assert 0.5 * 2000 < count < 1.8 * 2000

    def test_add_shard_moves_minority(self):
        ring = ConsistentHashRing(["a", "b", "c"], replicas=128)
        before = {f"key{i}": ring.owner(f"key{i}") for i in range(3000)}
        ring.add_shard("d")
        moved = sum(1 for key, owner in before.items() if ring.owner(key) != owner)
        # Consistent hashing: ~1/4 of keys move, never the majority.
        assert moved < 1500
        # And every key that moved went to the new shard.
        for key, owner in before.items():
            new_owner = ring.owner(key)
            if new_owner != owner:
                assert new_owner == "d"

    def test_remove_shard(self):
        ring = ConsistentHashRing(["a", "b"])
        ring.remove_shard("b")
        assert {ring.owner(f"k{i}") for i in range(100)} == {"a"}

    def test_duplicate_shard_rejected(self):
        ring = ConsistentHashRing(["a"])
        with pytest.raises(ValueError):
            ring.add_shard("a")

    def test_unknown_shard_removal_rejected(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(["a"]).remove_shard("zz")

    def test_empty_ring_raises(self):
        ring = ConsistentHashRing([])
        with pytest.raises(RuntimeError):
            ring.owner("k")


class TestShardedKVStore:
    def test_requires_shards(self):
        with pytest.raises(ValueError):
            ShardedKVStore({})

    def test_put_get_roundtrip(self):
        store, _ = make_store()
        for i in range(200):
            store.put(f"key{i}", {"v": str(i)})
        for i in range(200):
            assert store.get(f"key{i}") == {"v": str(i)}

    def test_data_actually_distributed(self):
        store, shards = make_store()
        for i in range(500):
            store.put(f"key{i}", {})
        sizes = [shard.size() for shard in shards.values()]
        assert sum(sizes) == 500
        assert all(size > 0 for size in sizes)

    def test_scan_merges_in_order(self):
        store, _ = make_store()
        keys = [f"key{i:04d}" for i in range(100)]
        for key in keys:
            store.put(key, {})
        result = [key for key, _ in store.scan("key0010", 20)]
        assert result == keys[10:30]

    def test_keys_sorted_across_shards(self):
        store, _ = make_store()
        for i in range(50):
            store.put(f"k{i:03d}", {})
        assert list(store.keys()) == [f"k{i:03d}" for i in range(50)]

    def test_conditional_ops_route_to_owner(self):
        store, _ = make_store()
        assert store.put_if_version("k", {"v": "1"}, None) == 1
        assert store.put_if_version("k", {"v": "2"}, 1) == 2
        assert store.delete_if_version("k", 2) is True

    def test_delete(self):
        store, _ = make_store()
        store.put("k", {})
        assert store.delete("k") is True
        assert store.size() == 0

    def test_add_shard_migrates_and_preserves_data(self):
        store, _ = make_store(2)
        for i in range(400):
            store.put(f"key{i}", {"v": str(i)})
        moved = store.add_shard("shard2", InMemoryKVStore())
        assert moved > 0
        assert store.shard_count == 3
        assert store.size() == 400
        for i in range(400):
            assert store.get(f"key{i}") == {"v": str(i)}

    @given(keys=st.sets(st.text(min_size=1, max_size=8), max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_property_scan_equals_sorted_keys(self, keys):
        store, _ = make_store()
        for key in keys:
            store.put(key, {"v": "x"})
        scanned = [key for key, _ in store.scan("", len(keys) + 1)]
        assert scanned == sorted(keys)
