"""Consistent-hash ring and sharded store tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvstore import ConsistentHashRing, InMemoryKVStore, ShardedKVStore
from repro.kvstore.base import VersionedValue
from repro.kvstore.latency import ConstantLatency, LatencyInjectingStore
from repro.sim.scheduler import Scheduler


def make_store(shard_count=3):
    shards = {f"shard{i}": InMemoryKVStore() for i in range(shard_count)}
    return ShardedKVStore(shards), shards


class TestConsistentHashRing:
    def test_owner_is_stable(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        assert ring.owner("key1") == ring.owner("key1")

    def test_all_shards_receive_keys(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        owners = {ring.owner(f"key{i}") for i in range(1000)}
        assert owners == {"a", "b", "c"}

    def test_balance_reasonable(self):
        ring = ConsistentHashRing(["a", "b", "c", "d"], replicas=128)
        counts = {"a": 0, "b": 0, "c": 0, "d": 0}
        for i in range(8000):
            counts[ring.owner(f"key{i}")] += 1
        for count in counts.values():
            assert 0.5 * 2000 < count < 1.8 * 2000

    def test_add_shard_moves_minority(self):
        ring = ConsistentHashRing(["a", "b", "c"], replicas=128)
        before = {f"key{i}": ring.owner(f"key{i}") for i in range(3000)}
        ring.add_shard("d")
        moved = sum(1 for key, owner in before.items() if ring.owner(key) != owner)
        # Consistent hashing: ~1/4 of keys move, never the majority.
        assert moved < 1500
        # And every key that moved went to the new shard.
        for key, owner in before.items():
            new_owner = ring.owner(key)
            if new_owner != owner:
                assert new_owner == "d"

    def test_remove_shard(self):
        ring = ConsistentHashRing(["a", "b"])
        ring.remove_shard("b")
        assert {ring.owner(f"k{i}") for i in range(100)} == {"a"}

    def test_duplicate_shard_rejected(self):
        ring = ConsistentHashRing(["a"])
        with pytest.raises(ValueError):
            ring.add_shard("a")

    def test_unknown_shard_removal_rejected(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(["a"]).remove_shard("zz")

    def test_empty_ring_raises(self):
        ring = ConsistentHashRing([])
        with pytest.raises(RuntimeError):
            ring.owner("k")


class TestShardedKVStore:
    def test_requires_shards(self):
        with pytest.raises(ValueError):
            ShardedKVStore({})

    def test_put_get_roundtrip(self):
        store, _ = make_store()
        for i in range(200):
            store.put(f"key{i}", {"v": str(i)})
        for i in range(200):
            assert store.get(f"key{i}") == {"v": str(i)}

    def test_data_actually_distributed(self):
        store, shards = make_store()
        for i in range(500):
            store.put(f"key{i}", {})
        sizes = [shard.size() for shard in shards.values()]
        assert sum(sizes) == 500
        assert all(size > 0 for size in sizes)

    def test_scan_merges_in_order(self):
        store, _ = make_store()
        keys = [f"key{i:04d}" for i in range(100)]
        for key in keys:
            store.put(key, {})
        result = [key for key, _ in store.scan("key0010", 20)]
        assert result == keys[10:30]

    def test_keys_sorted_across_shards(self):
        store, _ = make_store()
        for i in range(50):
            store.put(f"k{i:03d}", {})
        assert list(store.keys()) == [f"k{i:03d}" for i in range(50)]

    def test_conditional_ops_route_to_owner(self):
        store, _ = make_store()
        assert store.put_if_version("k", {"v": "1"}, None) == 1
        assert store.put_if_version("k", {"v": "2"}, 1) == 2
        assert store.delete_if_version("k", 2) is True

    def test_delete(self):
        store, _ = make_store()
        store.put("k", {})
        assert store.delete("k") is True
        assert store.size() == 0

    def test_add_shard_migrates_and_preserves_data(self):
        store, _ = make_store(2)
        for i in range(400):
            store.put(f"key{i}", {"v": str(i)})
        moved = store.add_shard("shard2", InMemoryKVStore())
        assert moved > 0
        assert store.shard_count == 3
        assert store.size() == 400
        for i in range(400):
            assert store.get(f"key{i}") == {"v": str(i)}

    @given(keys=st.sets(st.text(min_size=1, max_size=8), max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_property_scan_equals_sorted_keys(self, keys):
        store, _ = make_store()
        for key in keys:
            store.put(key, {"v": "x"})
        scanned = [key for key, _ in store.scan("", len(keys) + 1)]
        assert scanned == sorted(keys)


class TestRingBoundary:
    """Regression: ``owner()`` used ``bisect_right``, so a key hashing
    exactly onto a virtual-node point skipped its owner (asymmetric with
    ``add_shard``'s ``bisect_left`` insertion)."""

    def test_key_on_virtual_node_point_belongs_to_that_node(self):
        # The token "a#0" hashes to exactly the point where shard a's only
        # virtual node sits, so shard a must own it; same for "b#0".
        ring = ConsistentHashRing(["a", "b"], replicas=1)
        assert ring.owner("a#0") == "a"
        assert ring.owner("b#0") == "b"

    def test_exact_point_ownership_many_shards(self):
        names = [f"s{i}" for i in range(8)]
        ring = ConsistentHashRing(names, replicas=4)
        for name in names:
            for replica in range(4):
                assert ring.owner(f"{name}#{replica}") == name


class TestVersionPreservingMigration:
    """Regression: ``add_shard`` re-``put``-ed only the value, resetting the
    version counter so a stale CAS could falsely succeed after migration."""

    def test_migration_preserves_versions(self):
        store, _ = make_store(2)
        # Multiplied suffixes spread the FNV hashes across the ring
        # (sequential key{i} strings hash into one vnode gap).
        for i in range(120):
            key = f"u{i * 7919}"
            store.put(key, {"v": "1"})
            store.put(key, {"v": "2"})
            store.put(key, {"v": "3"})  # every key now at version 3
        moved = store.add_shard("shard2", InMemoryKVStore())
        assert moved > 0
        for i in range(120):
            key = f"u{i * 7919}"
            found = store.get_with_meta(key)
            assert found is not None and found.version == 3
            # A CAS carrying a stale version observed long ago must fail...
            assert store.put_if_version(key, {"v": "stale"}, 1) is None
            assert store.delete_if_version(key, 1) is None
            # ...while a CAS carrying the current version succeeds.
            assert store.put_if_version(key, {"v": "4"}, 3) == 4

    def test_put_versioned_routes_and_preserves(self):
        store, _ = make_store(3)
        assert store.put_versioned("k", VersionedValue({"v": "x"}, 7)) is True
        found = store.get_with_meta("k")
        assert found == VersionedValue({"v": "x"}, 7)
        # Insert-if-absent: a second restore loses to the existing value.
        assert store.put_versioned("k", VersionedValue({"v": "y"}, 1)) is False
        assert store.get("k") == {"v": "x"}


class TestRemoveShard:
    def test_remove_shard_drains_keys_with_versions(self):
        store, shards = make_store(3)
        for i in range(150):
            store.put(f"u{i * 7919}", {"v": "a"})
            store.put(f"u{i * 7919}", {"v": "b"})  # version 2
        victim = "shard1"
        had = shards[victim].size()
        moved = store.remove_shard(victim)
        assert moved == had
        assert store.shard_count == 2
        assert shards[victim].size() == 0
        assert store.size() == 150
        for i in range(150):
            found = store.get_with_meta(f"u{i * 7919}")
            assert found is not None
            assert found.value == {"v": "b"} and found.version == 2

    def test_remove_last_shard_rejected(self):
        store, _ = make_store(1)
        with pytest.raises(ValueError):
            store.remove_shard("shard0")

    def test_remove_unknown_shard_rejected(self):
        store, _ = make_store(2)
        with pytest.raises(ValueError):
            store.remove_shard("nope")


class TestOwnershipStabilityProperties:
    @given(
        keys=st.sets(st.text(min_size=1, max_size=10), min_size=1, max_size=80),
        replicas=st.sampled_from([1, 8, 32]),
    )
    @settings(max_examples=30, deadline=None)
    def test_adding_shard_moves_only_keys_it_now_owns(self, keys, replicas):
        ring = ConsistentHashRing(["a", "b", "c"], replicas=replicas)
        before = {key: ring.owner(key) for key in keys}
        ring.add_shard("d")
        for key in keys:
            after = ring.owner(key)
            if after != before[key]:
                assert after == "d"

    @given(
        keys=st.sets(st.text(min_size=1, max_size=10), min_size=1, max_size=80),
        replicas=st.sampled_from([1, 8, 32]),
    )
    @settings(max_examples=30, deadline=None)
    def test_removing_shard_moves_only_its_keys(self, keys, replicas):
        ring = ConsistentHashRing(["a", "b", "c"], replicas=replicas)
        before = {key: ring.owner(key) for key in keys}
        ring.remove_shard("b")
        for key in keys:
            if before[key] != "b":
                assert ring.owner(key) == before[key]

    @given(keys=st.sets(st.text(min_size=1, max_size=10), min_size=1, max_size=50))
    @settings(max_examples=25, deadline=None)
    def test_sharded_store_add_shard_moves_only_new_owner_keys(self, keys):
        shards = {"shard0": InMemoryKVStore(), "shard1": InMemoryKVStore()}
        store = ShardedKVStore(shards)
        for key in keys:
            store.put(key, {"v": "x"})
        located_before = {
            key: next(n for n, s in shards.items() if s.contains(key)) for key in keys
        }
        new_shard = InMemoryKVStore()
        store.add_shard("shard2", new_shard)
        for key in keys:
            if not shards[located_before[key]].contains(key):
                # A key that physically moved must have moved to the new shard.
                assert new_shard.contains(key)
            assert store.get(key) == {"v": "x"}


class TestMigrationReadRace:
    """Regression: readers raced ``add_shard`` — a get routed through the
    new ring before the key was copied observed a missing key.  The sim
    scheduler makes the interleaving deterministic: latency-wrapped child
    stores yield at every store call, so readers run mid-migration."""

    def _latency_wrapped(self, scheduler, inner):
        return LatencyInjectingStore(
            inner, ConstantLatency(0.001), sleep=scheduler.sleep
        )

    def test_reads_never_miss_during_add_shard(self):
        scheduler = Scheduler()
        store = ShardedKVStore(
            {
                "shard0": self._latency_wrapped(scheduler, InMemoryKVStore()),
                "shard1": self._latency_wrapped(scheduler, InMemoryKVStore()),
            }
        )
        keys = [f"u{i * 7919}" for i in range(60)]
        for key in keys:
            store.put(key, {"v": key})

        missing = []
        done = []

        def migrator():
            store.add_shard(
                "shard2", self._latency_wrapped(scheduler, InMemoryKVStore())
            )
            done.append(True)

        def reader():
            while not done:
                for key in keys:
                    if store.get(key) is None:
                        missing.append(key)
                scheduler.sleep(0.0001)

        scheduler.run([migrator, reader, reader])
        assert missing == []
        for key in keys:
            assert store.get(key) == {"v": key}

    def test_writes_never_lost_during_add_shard(self):
        scheduler = Scheduler()
        store = ShardedKVStore(
            {
                "shard0": self._latency_wrapped(scheduler, InMemoryKVStore()),
                "shard1": self._latency_wrapped(scheduler, InMemoryKVStore()),
            }
        )
        keys = [f"u{i * 7919}" for i in range(40)]
        for key in keys:
            store.put(key, {"gen": "0"})

        done = []

        def migrator():
            store.add_shard(
                "shard2", self._latency_wrapped(scheduler, InMemoryKVStore())
            )
            done.append(True)

        def writer():
            generation = 0
            while not done:
                generation += 1
                for key in keys:
                    store.put(key, {"gen": str(generation)})
                scheduler.sleep(0.0001)

        scheduler.run([migrator, writer])
        # Every key survived the migration with its *latest* write, and the
        # version counter kept increasing (one initial put + N overwrites).
        for key in keys:
            found = store.get_with_meta(key)
            assert found is not None
            assert found.value["gen"] != "0"
            assert found.version >= 2
