"""The fault-injecting store wrapper: seeded, deterministic, composable."""

import random

import pytest

from repro.core import Properties
from repro.kvstore import (
    FaultInjectingStore,
    FaultProfile,
    InMemoryKVStore,
    TokenBucket,
    TransientStoreError,
)


def noop_sleep(seconds):
    pass


def make_store(profile, seed=0, **kwargs):
    inner = InMemoryKVStore()
    return inner, FaultInjectingStore(
        inner, profile=profile, seed=seed, sleep=noop_sleep, **kwargs
    )


class TestFaultProfile:
    def test_rejects_out_of_range_rates(self):
        with pytest.raises(ValueError):
            FaultProfile(error_rate=1.5)
        with pytest.raises(ValueError):
            FaultProfile(torn_write_rate=-0.1)

    def test_disabled_by_default(self):
        assert not FaultProfile().enabled

    def test_from_properties_none_when_disabled(self):
        assert FaultProfile.from_properties(Properties()) is None

    def test_from_properties_rate_alias(self):
        profile = FaultProfile.from_properties(Properties({"fault.rate": "0.25"}))
        assert profile is not None
        assert profile.error_rate == 0.25

    def test_from_properties_full(self):
        profile = FaultProfile.from_properties(
            Properties(
                {
                    "fault.error_rate": "0.1",
                    "fault.latency_spike_rate": "0.2",
                    "fault.latency_spike_ms": "10",
                    "fault.throttle_burst_rate": "0.3",
                    "fault.torn_write_rate": "0.4",
                }
            )
        )
        assert profile.error_rate == 0.1
        assert profile.latency_spike_rate == 0.2
        assert profile.latency_spike_s == pytest.approx(0.010)
        assert profile.throttle_burst_rate == 0.3
        assert profile.torn_write_rate == 0.4


class TestTransientErrors:
    def test_rate_one_fails_every_operation_before_the_store(self):
        inner, store = make_store(FaultProfile(error_rate=1.0))
        with pytest.raises(TransientStoreError):
            store.put("k", {"f": "1"})
        with pytest.raises(TransientStoreError):
            store.get("k")
        assert inner.size() == 0  # nothing ever reached the store
        assert store.stats.transient_errors == 2

    def test_rate_zero_is_transparent(self):
        inner, store = make_store(FaultProfile())
        store.put("k", {"f": "1"})
        assert store.get("k") == {"f": "1"}
        assert store.stats.transient_errors == 0


class TestTornWrites:
    def test_put_applies_then_raises(self):
        inner, store = make_store(FaultProfile(torn_write_rate=1.0))
        with pytest.raises(TransientStoreError):
            store.put("k", {"f": "1"})
        assert inner.get("k") == {"f": "1"}  # the write landed anyway
        assert store.stats.torn_writes == 1

    def test_failed_cas_never_tears(self):
        inner, store = make_store(FaultProfile(torn_write_rate=1.0))
        inner.put("k", {"f": "0"})
        # Wrong expected version: the CAS does not apply, so no tear.
        assert store.put_if_version("k", {"f": "1"}, expected_version=999) is None
        assert inner.get("k") == {"f": "0"}
        assert store.stats.torn_writes == 0

    def test_successful_cas_tears(self):
        inner, store = make_store(FaultProfile(torn_write_rate=1.0))
        with pytest.raises(TransientStoreError):
            store.put_if_version("k", {"f": "1"}, None)
        assert inner.get("k") == {"f": "1"}

    def test_delete_of_missing_key_never_tears(self):
        inner, store = make_store(FaultProfile(torn_write_rate=1.0))
        assert store.delete("absent") is False
        assert store.stats.torn_writes == 0

    def test_reads_never_tear(self):
        inner, store = make_store(FaultProfile(torn_write_rate=1.0))
        inner.put("k", {"f": "1"})
        assert store.get("k") == {"f": "1"}
        assert store.stats.torn_writes == 0


class TestThrottleBursts:
    def test_burst_drains_the_bucket(self):
        bucket = TokenBucket(rate=100.0, burst=50.0, clock=lambda: 0.0)
        inner, store = make_store(
            FaultProfile(throttle_burst_rate=1.0), token_bucket=bucket
        )
        assert bucket.available() == pytest.approx(50.0)
        store.put("k", {"f": "1"})
        assert bucket.available() == pytest.approx(0.0)
        assert store.stats.throttle_bursts == 1

    def test_bucket_discovered_from_inner_store(self):
        class BucketStore(InMemoryKVStore):
            def __init__(self):
                super().__init__()
                self.bucket = TokenBucket(rate=10.0, burst=5.0, clock=lambda: 0.0)

        inner = BucketStore()
        store = FaultInjectingStore(
            inner, profile=FaultProfile(throttle_burst_rate=1.0), sleep=noop_sleep
        )
        store.put("k", {"f": "1"})
        assert inner.bucket.available() == pytest.approx(0.0)


class TestLatencySpikes:
    def test_spike_sleeps_for_the_profile_duration(self):
        slept = []
        inner = InMemoryKVStore()
        store = FaultInjectingStore(
            inner,
            profile=FaultProfile(latency_spike_rate=1.0, latency_spike_s=0.033),
            sleep=slept.append,
        )
        store.put("k", {"f": "1"})
        assert slept == [pytest.approx(0.033)]
        assert store.stats.latency_spikes == 1
        assert inner.get("k") == {"f": "1"}  # a stall, not an error


class TestDeterminism:
    @staticmethod
    def run_sequence(seed):
        inner, store = make_store(
            FaultProfile(error_rate=0.3, torn_write_rate=0.2, latency_spike_rate=0.1),
            seed=seed,
        )
        outcomes = []
        for i in range(200):
            try:
                store.put(f"k{i % 10}", {"f": str(i)})
                outcomes.append("ok")
            except TransientStoreError:
                outcomes.append("fail")
        return outcomes, store.stats.snapshot()

    def test_same_seed_same_fault_sequence(self):
        assert self.run_sequence(42) == self.run_sequence(42)

    def test_different_seed_differs(self):
        assert self.run_sequence(42)[0] != self.run_sequence(43)[0]


class TestProfileSwap:
    def test_harness_can_load_cleanly_then_enable_faults(self):
        inner, store = make_store(FaultProfile())
        for i in range(50):
            store.put(f"k{i}", {"f": "1"})  # clean load, never raises
        assert store.stats.transient_errors == 0
        store.profile = FaultProfile(error_rate=1.0)
        with pytest.raises(TransientStoreError):
            store.put("k0", {"f": "2"})


class TestValidationBypass:
    def test_keys_and_size_never_inject(self):
        inner, store = make_store(FaultProfile(error_rate=1.0))
        inner.put("k", {"f": "1"})
        assert list(store.keys()) == ["k"]
        assert store.size() == 1
        assert store.stats.transient_errors == 0


class TestCounters:
    def test_counter_names_for_reports(self):
        inner, store = make_store(FaultProfile(error_rate=1.0))
        with pytest.raises(TransientStoreError):
            store.get("k")
        counters = store.counters()
        assert counters["FAULTS-TRANSIENT"] == 1
        assert set(counters) == {
            "FAULTS-TRANSIENT",
            "FAULTS-LATENCY-SPIKE",
            "FAULTS-THROTTLE-BURST",
            "FAULTS-TORN-WRITE",
        }
