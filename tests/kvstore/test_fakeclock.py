"""Token-bucket and latency-model behaviour under a fake clock.

Everything here runs with injected clocks and sleeps — no wall-clock
dependence, no ``time.sleep`` — so the timing math is tested exactly.
"""

import random

import pytest

from repro.kvstore import LognormalLatency, TokenBucket, UniformLatency


class FakeClock:
    """Manually advanced monotonic clock."""

    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds

    def sleep(self, seconds):
        """A sleep that just advances the clock (for acquire loops)."""
        self.advance(seconds)


class TestTokenBucketRefillMath:
    def test_starts_full_at_burst_capacity(self):
        bucket = TokenBucket(rate=100.0, burst=25.0, clock=FakeClock())
        assert bucket.available() == pytest.approx(25.0)

    def test_refills_exactly_rate_times_elapsed(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=100.0, clock=clock)
        assert bucket.drain() == pytest.approx(100.0)
        clock.advance(2.5)
        assert bucket.available() == pytest.approx(25.0)

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1000.0, burst=10.0, clock=clock)
        clock.advance(60.0)
        assert bucket.available() == pytest.approx(10.0)

    def test_try_acquire_depletes_then_rejects(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [True, True, True, False]
        clock.advance(1.0)
        assert bucket.try_acquire() is True

    def test_drain_empties_and_reports_taken(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=40.0, clock=clock)
        bucket.try_acquire(15.0)
        assert bucket.drain() == pytest.approx(25.0)
        assert bucket.available() == pytest.approx(0.0)
        assert bucket.drain() == pytest.approx(0.0)  # idempotent when empty

    def test_drain_then_refill_recovers(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=50.0, burst=100.0, clock=clock)
        bucket.drain()
        assert bucket.try_acquire() is False
        clock.advance(0.1)  # 5 tokens refill
        assert bucket.available() == pytest.approx(5.0)


class TestTokenBucketAcquireWithFakeSleep:
    def test_acquire_waits_exactly_the_deficit(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=5.0, clock=clock)
        bucket.drain()
        waited = bucket.acquire(2.0, sleep=clock.sleep)
        # 2 tokens at 10/s: exactly 0.2 s of (fake) waiting.
        assert waited == pytest.approx(0.2)
        assert clock.now == pytest.approx(0.2)

    def test_acquire_immediate_when_tokens_available(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=5.0, clock=clock)
        assert bucket.acquire(3.0, sleep=clock.sleep) == 0.0
        assert clock.now == 0.0  # never slept


class TestSeededLatencyModels:
    def test_lognormal_sequence_reproducible(self):
        first = LognormalLatency(0.010, sigma=0.5, rng=random.Random(3))
        second = LognormalLatency(0.010, sigma=0.5, rng=random.Random(3))
        assert [first.sample() for _ in range(100)] == [
            second.sample() for _ in range(100)
        ]

    def test_lognormal_seeded_percentiles(self):
        model = LognormalLatency(0.010, sigma=0.5, rng=random.Random(3))
        samples = sorted(model.sample() for _ in range(4000))
        median = samples[len(samples) // 2]
        p99 = samples[int(len(samples) * 0.99)]
        assert median == pytest.approx(0.010, rel=0.1)
        assert p99 > median  # a real tail, deterministically present

    def test_uniform_sequence_reproducible(self):
        first = UniformLatency(0.001, 0.002, rng=random.Random(4))
        second = UniformLatency(0.001, 0.002, rng=random.Random(4))
        assert [first.sample() for _ in range(100)] == [
            second.sample() for _ in range(100)
        ]
