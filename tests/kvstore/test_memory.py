"""In-memory store tests, including a model-based hypothesis test."""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvstore import InMemoryKVStore, StoreClosed


class TestBasicOperations:
    def test_get_missing(self):
        assert InMemoryKVStore().get("nope") is None
        assert InMemoryKVStore().get_with_meta("nope") is None

    def test_put_get(self):
        store = InMemoryKVStore()
        version = store.put("k", {"f": "v"})
        assert version == 1
        assert store.get("k") == {"f": "v"}

    def test_version_increments(self):
        store = InMemoryKVStore()
        assert store.put("k", {"f": "1"}) == 1
        assert store.put("k", {"f": "2"}) == 2
        assert store.get_with_meta("k").version == 2

    def test_returned_value_is_a_copy(self):
        store = InMemoryKVStore()
        store.put("k", {"f": "v"})
        value = store.get("k")
        value["f"] = "mutated"
        assert store.get("k") == {"f": "v"}

    def test_stored_value_is_a_copy(self):
        store = InMemoryKVStore()
        original = {"f": "v"}
        store.put("k", original)
        original["f"] = "mutated"
        assert store.get("k") == {"f": "v"}

    def test_delete(self):
        store = InMemoryKVStore()
        store.put("k", {"f": "v"})
        assert store.delete("k") is True
        assert store.delete("k") is False
        assert store.get("k") is None

    def test_contains_and_size(self):
        store = InMemoryKVStore()
        assert not store.contains("a")
        store.put("a", {})
        store.put("b", {})
        assert store.contains("a")
        assert store.size() == 2

    def test_clear(self):
        store = InMemoryKVStore()
        store.put("a", {})
        store.clear()
        assert store.size() == 0
        assert list(store.keys()) == []


class TestConditionalOperations:
    def test_insert_if_absent(self):
        store = InMemoryKVStore()
        assert store.put_if_version("k", {"f": "1"}, None) == 1
        assert store.put_if_version("k", {"f": "2"}, None) is None
        assert store.get("k") == {"f": "1"}

    def test_update_if_version(self):
        store = InMemoryKVStore()
        store.put("k", {"f": "1"})
        assert store.put_if_version("k", {"f": "2"}, 1) == 2
        assert store.put_if_version("k", {"f": "3"}, 1) is None
        assert store.get("k") == {"f": "2"}

    def test_update_if_version_missing_key(self):
        store = InMemoryKVStore()
        assert store.put_if_version("k", {"f": "1"}, 3) is None

    def test_delete_if_version(self):
        store = InMemoryKVStore()
        store.put("k", {"f": "1"})
        assert store.delete_if_version("k", 99) is None
        assert store.delete_if_version("k", 1) is True
        assert store.delete_if_version("k", 1) is False

    def test_cas_loop_semantics(self):
        """A CAS loop always makes progress: re-read then retry succeeds."""
        store = InMemoryKVStore()
        store.put("k", {"n": "0"})
        for _ in range(10):
            versioned = store.get_with_meta("k")
            value = {"n": str(int(versioned.value["n"]) + 1)}
            assert store.put_if_version("k", value, versioned.version) is not None
        assert store.get("k") == {"n": "10"}


class TestScanAndKeys:
    def test_scan_ordered(self):
        store = InMemoryKVStore()
        for key in ("c", "a", "b"):
            store.put(key, {"k": key})
        assert [key for key, _ in store.scan("a", 10)] == ["a", "b", "c"]

    def test_scan_from_middle(self):
        store = InMemoryKVStore()
        for key in ("a", "b", "c", "d"):
            store.put(key, {})
        assert [key for key, _ in store.scan("b", 2)] == ["b", "c"]

    def test_scan_start_key_absent(self):
        store = InMemoryKVStore()
        store.put("a", {})
        store.put("c", {})
        assert [key for key, _ in store.scan("b", 5)] == ["c"]

    def test_scan_zero_or_negative_count(self):
        store = InMemoryKVStore()
        store.put("a", {})
        assert store.scan("a", 0) == []
        assert store.scan("a", -3) == []

    def test_keys_sorted_after_deletes(self):
        store = InMemoryKVStore()
        for key in ("d", "b", "a", "c"):
            store.put(key, {})
        store.delete("b")
        assert list(store.keys()) == ["a", "c", "d"]


class TestLifecycle:
    def test_closed_store_rejects_operations(self):
        store = InMemoryKVStore()
        store.close()
        with pytest.raises(StoreClosed):
            store.get("k")
        with pytest.raises(StoreClosed):
            store.put("k", {})

    def test_context_manager(self):
        with InMemoryKVStore() as store:
            store.put("k", {})
        with pytest.raises(StoreClosed):
            store.size()


class TestConcurrency:
    def test_concurrent_disjoint_writers(self):
        store = InMemoryKVStore()

        def worker(prefix):
            for i in range(500):
                store.put(f"{prefix}-{i}", {"v": str(i)})

        threads = [threading.Thread(target=worker, args=(p,)) for p in "abcd"]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert store.size() == 2000

    def test_conditional_put_is_atomic_under_contention(self):
        store = InMemoryKVStore()
        store.put("counter", {"n": "0"})

        def worker():
            for _ in range(200):
                while True:
                    versioned = store.get_with_meta("counter")
                    new = {"n": str(int(versioned.value["n"]) + 1)}
                    if store.put_if_version("counter", new, versioned.version) is not None:
                        break

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert store.get("counter") == {"n": "800"}


@given(
    operations=st.lists(
        st.one_of(
            st.tuples(st.just("put"), st.text(max_size=3), st.text(max_size=3)),
            st.tuples(st.just("delete"), st.text(max_size=3), st.just("")),
        ),
        max_size=80,
    )
)
@settings(max_examples=100, deadline=None)
def test_model_based_against_dict(operations):
    """The store behaves exactly like a dict for put/delete/get/scan."""
    store = InMemoryKVStore()
    model: dict[str, dict[str, str]] = {}
    for op, key, value in operations:
        if op == "put":
            store.put(key, {"v": value})
            model[key] = {"v": value}
        else:
            assert store.delete(key) == (key in model)
            model.pop(key, None)
    assert store.size() == len(model)
    for key, expected in model.items():
        assert store.get(key) == expected
    assert [key for key, _ in store.scan("", len(model) + 1)] == sorted(model)
