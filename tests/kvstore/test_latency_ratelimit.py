"""Latency models, the latency-injecting wrapper, and the token bucket."""

import random

import pytest

from repro.kvstore import (
    ConstantLatency,
    InMemoryKVStore,
    LatencyInjectingStore,
    LognormalLatency,
    NoLatency,
    TokenBucket,
    UniformLatency,
)


class TestLatencyModels:
    def test_no_latency(self):
        model = NoLatency()
        assert model.sample() == 0.0
        assert model.mean() == 0.0

    def test_constant(self):
        model = ConstantLatency(0.25)
        assert model.sample() == 0.25
        assert model.mean() == 0.25

    def test_constant_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1)

    def test_uniform_bounds(self):
        model = UniformLatency(0.1, 0.2, rng=random.Random(1))
        for _ in range(100):
            assert 0.1 <= model.sample() <= 0.2
        assert model.mean() == pytest.approx(0.15)

    def test_uniform_rejects_bad_range(self):
        with pytest.raises(ValueError):
            UniformLatency(0.2, 0.1)

    def test_lognormal_positive_and_tailed(self):
        model = LognormalLatency(0.010, sigma=0.5, rng=random.Random(1))
        samples = [model.sample() for _ in range(5000)]
        assert all(sample > 0 for sample in samples)
        samples.sort()
        median = samples[len(samples) // 2]
        assert median == pytest.approx(0.010, rel=0.1)
        assert samples[-1] > 2 * median  # long right tail

    def test_lognormal_mean_formula(self):
        model = LognormalLatency(0.010, sigma=0.4, rng=random.Random(2))
        samples = [model.sample() for _ in range(20000)]
        assert sum(samples) / len(samples) == pytest.approx(model.mean(), rel=0.1)

    def test_lognormal_rejects_bad_args(self):
        with pytest.raises(ValueError):
            LognormalLatency(0)
        with pytest.raises(ValueError):
            LognormalLatency(0.01, sigma=-1)


class TestLatencyInjectingStore:
    def test_pays_latency_per_call(self):
        slept = []
        store = LatencyInjectingStore(
            InMemoryKVStore(),
            read_latency=ConstantLatency(0.111),
            write_latency=ConstantLatency(0.222),
            sleep=slept.append,
        )
        store.put("k", {"f": "v"})
        store.get("k")
        store.scan("", 10)
        store.delete("k")
        assert slept == [0.222, 0.111, 0.111, 0.222]

    def test_results_pass_through(self):
        slept = []
        store = LatencyInjectingStore(
            InMemoryKVStore(), ConstantLatency(0.01), sleep=slept.append
        )
        assert store.put("k", {"f": "v"}) == 1
        assert store.get_with_meta("k").version == 1
        assert store.put_if_version("k", {"f": "2"}, 1) == 2
        assert store.delete_if_version("k", 2) is True

    def test_keys_and_size_bypass_latency(self):
        slept = []
        store = LatencyInjectingStore(
            InMemoryKVStore(), ConstantLatency(0.5), sleep=slept.append
        )
        store.put("k", {})
        slept.clear()
        assert store.size() == 1
        assert list(store.keys()) == ["k"]
        assert slept == []


class TestTokenBucket:
    def test_burst_then_empty(self):
        clock = [0.0]
        bucket = TokenBucket(rate=10, burst=3, clock=lambda: clock[0])
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refills_over_time(self):
        clock = [0.0]
        bucket = TokenBucket(rate=10, burst=1, clock=lambda: clock[0])
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock[0] += 0.1  # one token refilled
        assert bucket.try_acquire()

    def test_capacity_capped(self):
        clock = [0.0]
        bucket = TokenBucket(rate=10, burst=2, clock=lambda: clock[0])
        clock[0] += 100.0
        assert bucket.available() == pytest.approx(2.0)

    def test_acquire_blocks_until_available(self):
        clock = [0.0]
        waits = []

        def fake_sleep(seconds):
            waits.append(seconds)
            clock[0] += seconds

        bucket = TokenBucket(rate=10, burst=1, clock=lambda: clock[0])
        assert bucket.acquire(sleep=fake_sleep) == 0.0
        waited = bucket.acquire(sleep=fake_sleep)
        assert waited == pytest.approx(0.1, rel=0.01)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1, burst=0)

    def test_rate_enforced_over_window(self):
        clock = [0.0]
        bucket = TokenBucket(rate=100, burst=10, clock=lambda: clock[0])
        admitted = 0
        for _ in range(1000):
            if bucket.try_acquire():
                admitted += 1
            clock[0] += 0.001
        # 1 second elapsed at 100/s plus the initial burst of 10.
        assert 100 <= admitted <= 111
