"""TxnDB: the YCSB+T transactional binding."""

import pytest

from repro.bindings import TxnDB
from repro.core import Properties
from repro.core import status as st
from repro.kvstore import InMemoryKVStore
from repro.txn import ClientTransactionManager, PercolatorLikeManager, RetsoLikeManager


@pytest.fixture
def db():
    return TxnDB(Properties(), manager=ClientTransactionManager(InMemoryKVStore()))


class TestTransactionBoundaries:
    def test_start_commit_cycle(self, db):
        assert db.start().ok
        assert db.insert("t", "k", {"f": "v"}).ok
        assert db.commit().ok
        assert db.read("t", "k")[1] == {"f": "v"}

    def test_abort_discards(self, db):
        db.start()
        db.insert("t", "k", {"f": "v"})
        assert db.abort().ok
        assert db.read("t", "k")[0] is st.NOT_FOUND

    def test_double_start_rejected(self, db):
        db.start()
        assert not db.start().ok
        db.abort()

    def test_commit_without_start_is_noop(self, db):
        assert db.commit().ok
        assert db.abort().ok

    def test_writes_invisible_until_commit(self, db):
        other = TxnDB(Properties(), manager=db.manager)
        db.start()
        db.insert("t", "k", {"f": "v"})
        assert other.read("t", "k")[0] is st.NOT_FOUND
        db.commit()
        assert other.read("t", "k")[1] == {"f": "v"}


class TestAutoCommit:
    def test_each_op_without_start_is_transactional(self, db):
        assert db.insert("t", "k", {"f": "1"}).ok
        assert db.update("t", "k", {"f": "2"}).ok
        assert db.read("t", "k")[1] == {"f": "2"}
        assert db.delete("t", "k").ok
        assert db.read("t", "k")[0] is st.NOT_FOUND

    def test_update_merges(self, db):
        db.insert("t", "k", {"a": "1", "b": "2"})
        db.update("t", "k", {"b": "9"})
        assert db.read("t", "k")[1] == {"a": "1", "b": "9"}

    def test_scan_filters_tables_and_internal_keys(self, db):
        db.insert("t", "a", {"n": "1"})
        db.insert("t", "b", {"n": "2"})
        db.insert("other", "c", {"n": "3"})
        result, rows = db.scan("t", "", 10)
        assert result.ok
        assert [key for key, _ in rows] == ["a", "b"]

    def test_field_selection(self, db):
        db.insert("t", "k", {"a": "1", "b": "2"})
        _, fields = db.read("t", "k", {"a"})
        assert fields == {"a": "1"}


class TestConflictMapping:
    def test_commit_conflict_returns_conflict_status(self, db):
        db.insert("t", "k", {"n": "0"})
        other = TxnDB(Properties(), manager=db.manager)
        db.start()
        assert db.read("t", "k")[0].ok
        # Interleaved committed write invalidates db's snapshot write.
        other.update("t", "k", {"n": "interloper"})
        assert db.update("t", "k", {"n": "mine"}).ok  # buffered
        result = db.commit()
        assert result.name == "CONFLICT"
        assert db.read("t", "k")[1] == {"n": "interloper"}

    def test_threads_have_independent_transactions(self, db):
        import threading

        db.insert("t", "counter", {"n": "0"})
        results = []

        def worker():
            # Each thread gets its own implicit transaction context.
            ok = db.start().ok
            _, fields = db.read("t", "counter")
            db.commit()
            results.append(ok and fields is not None)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results == [True] * 4


class TestManagerVariants:
    @pytest.mark.parametrize(
        "manager_class", [ClientTransactionManager, PercolatorLikeManager, RetsoLikeManager]
    )
    def test_binding_works_over_any_coordinator(self, manager_class):
        db = TxnDB(Properties(), manager=manager_class(InMemoryKVStore()))
        db.start()
        db.insert("t", "k", {"f": "v"})
        assert db.commit().ok
        assert db.read("t", "k")[1] == {"f": "v"}

    def test_default_manager_from_registry(self):
        properties = Properties({"txn.namespace": "shared-test"})
        first = TxnDB(properties)
        second = TxnDB(properties)
        assert first.manager is second.manager
        first.insert("t", "k", {"f": "v"})
        assert second.read("t", "k")[1] == {"f": "v"}
