"""DB bindings: KVStoreDB semantics, store-backed bindings, registry."""

import pytest

from repro.bindings import (
    BasicDB,
    CloudDB,
    DelayedDB,
    KVStoreDB,
    LsmDB,
    MemoryDB,
    registry,
)
from repro.core import Properties
from repro.core import status as st
from repro.kvstore import InMemoryKVStore


class TestKVStoreDB:
    @pytest.fixture
    def db(self):
        return KVStoreDB(InMemoryKVStore(), Properties())

    def test_insert_read(self, db):
        assert db.insert("t", "k", {"f": "v"}).ok
        result, fields = db.read("t", "k")
        assert result.ok and fields == {"f": "v"}

    def test_insert_duplicate_fails(self, db):
        db.insert("t", "k", {})
        assert db.insert("t", "k", {}) is not st.OK
        assert db.insert("t", "k", {}).name == "PRECONDITION_FAILED"

    def test_read_missing(self, db):
        result, fields = db.read("t", "missing")
        assert result is st.NOT_FOUND and fields is None

    def test_field_selection(self, db):
        db.insert("t", "k", {"a": "1", "b": "2", "c": "3"})
        _, fields = db.read("t", "k", {"a", "c"})
        assert fields == {"a": "1", "c": "3"}

    def test_update_merges_fields(self, db):
        db.insert("t", "k", {"a": "1", "b": "2"})
        assert db.update("t", "k", {"b": "9"}).ok
        _, fields = db.read("t", "k")
        assert fields == {"a": "1", "b": "9"}

    def test_update_missing_record(self, db):
        assert db.update("t", "k", {"f": "v"}) is st.NOT_FOUND

    def test_update_replace_mode(self):
        db = KVStoreDB(InMemoryKVStore(), Properties({"kv.mergedupdates": "false"}))
        db.insert("t", "k", {"a": "1", "b": "2"})
        db.update("t", "k", {"a": "9"})
        _, fields = db.read("t", "k")
        assert fields == {"a": "9"}

    def test_delete(self, db):
        db.insert("t", "k", {})
        assert db.delete("t", "k").ok
        assert db.delete("t", "k") is st.NOT_FOUND

    def test_scan_within_table(self, db):
        for i in range(5):
            db.insert("t", f"key{i}", {"n": str(i)})
        result, rows = db.scan("t", "key1", 3)
        assert result.ok
        assert [key for key, _ in rows] == ["key1", "key2", "key3"]

    def test_tables_isolated(self, db):
        db.insert("t1", "k", {"v": "1"})
        db.insert("t2", "k", {"v": "2"})
        _, fields = db.read("t1", "k")
        assert fields == {"v": "1"}
        _, rows = db.scan("t1", "", 10)
        assert len(rows) == 1

    def test_scan_does_not_leak_other_tables(self, db):
        db.insert("aaa", "k1", {})
        db.insert("zzz", "k1", {})
        _, rows = db.scan("aaa", "", 10)
        assert [key for key, _ in rows] == ["k1"]

    def test_transaction_methods_default_noop(self, db):
        assert db.start().ok and db.commit().ok and db.abort().ok


class TestMemoryDB:
    def test_same_namespace_shares_data(self):
        properties = Properties({"memory.namespace": "shared"})
        first = MemoryDB(properties)
        second = MemoryDB(properties)
        first.insert("t", "k", {"f": "v"})
        assert second.read("t", "k")[1] == {"f": "v"}

    def test_different_namespaces_isolated(self):
        first = MemoryDB(Properties({"memory.namespace": "a"}))
        second = MemoryDB(Properties({"memory.namespace": "b"}))
        first.insert("t", "k", {})
        assert second.read("t", "k")[0] is st.NOT_FOUND


class TestLsmDB:
    def test_requires_directory(self):
        with pytest.raises(KeyError):
            LsmDB(Properties())

    def test_round_trip_and_sharing(self, tmp_path):
        properties = Properties({"lsm.dir": str(tmp_path)})
        first = LsmDB(properties)
        second = LsmDB(properties)
        first.insert("t", "k", {"f": "v"})
        assert second.read("t", "k")[1] == {"f": "v"}


class TestCloudDB:
    def test_profiles(self):
        was = CloudDB(Properties({"cloud.scale": "1000", "cloud.profile": "was"}))
        gcs = CloudDB(Properties({"cloud.scale": "1000", "cloud.profile": "gcs"}))
        assert was.insert("t", "k", {}).ok
        assert gcs.insert("t", "k", {}).ok  # separate namespaces per profile

    def test_unknown_profile(self):
        with pytest.raises(ValueError):
            CloudDB(Properties({"cloud.profile": "aws"}))


class TestBasicDB:
    def test_everything_succeeds(self):
        db = BasicDB()
        assert db.read("t", "k")[0].ok
        assert db.scan("t", "k", 5)[0].ok
        assert db.update("t", "k", {}).ok
        assert db.insert("t", "k", {}).ok
        assert db.delete("t", "k").ok
        assert db.start().ok and db.commit().ok and db.abort().ok

    def test_verbose_echo(self, capsys):
        db = BasicDB(Properties({"basicdb.verbose": "true"}))
        db.read("t", "k")
        assert "READ t k" in capsys.readouterr().err


class TestDelayedDB:
    def test_pays_latency_on_data_ops_only(self):
        slept = []
        inner = BasicDB()
        db = DelayedDB(inner, read_latency=0.1, write_latency=0.2, sleep=slept.append)
        db.read("t", "k")
        db.update("t", "k", {})
        db.start()
        db.commit()
        assert slept == [0.1, 0.2]

    def test_defaults_write_to_read_latency(self):
        slept = []
        db = DelayedDB(BasicDB(), read_latency=0.3, sleep=slept.append)
        db.insert("t", "k", {})
        assert slept == [0.3]

    def test_passthrough_results(self):
        memory = MemoryDB(Properties({"memory.namespace": "delayed"}))
        db = DelayedDB(memory, read_latency=0.0)
        db.insert("t", "k", {"f": "v"})
        assert db.read("t", "k")[1] == {"f": "v"}


class TestRegistry:
    def test_get_or_create_caches(self):
        first = registry.get_or_create("kind", "ns", list)
        second = registry.get_or_create("kind", "ns", list)
        assert first is second

    def test_reset_clears(self):
        registry.get_or_create("kind", "ns", list)
        registry.reset()
        assert registry.registered_keys() == []

    def test_reset_closes_closeable(self):
        closed = []

        class Closeable:
            def close(self):
                closed.append(True)

        registry.get_or_create("kind", "ns", Closeable)
        registry.reset()
        assert closed == [True]

    def test_nested_factory_allowed(self):
        def outer_factory():
            registry.get_or_create("inner", "ns", list)
            return "outer"

        assert registry.get_or_create("outer", "ns", outer_factory) == "outer"
