"""Micro-scale smoke runs of every harness experiment.

The benchmarks run each experiment at its quick scale and assert the
paper's shapes; these tests run *tiny* configurations and assert only
structure and invariants, so the full test suite stays fast while still
executing every experiment code path.
"""

import pytest

from repro.harness import (
    ablation_coordinators,
    fig2_cloud_scaling,
    fig3_transaction_overhead,
    fig4_anomaly_score,
    fig5_raw_scaling,
    figure2_multiprocess,
    isolation_matrix,
    tier5_operation_overhead,
    tier6_consistency,
)


class TestFigure2MultiprocessSmoke:
    @pytest.mark.slow
    def test_structure(self):
        """Tiny two-point sweep: spawns real processes, so marked slow."""
        result = figure2_multiprocess(quick=True, process_counts=(1, 2))
        series = result.series[0]
        assert series.xs() == [1, 2]
        for point in series.points:
            assert point.throughput > 0
            assert point.failed_operations == 0
            assert point.extra["http_requests"].get("batch", 0) > 0


class TestFig2Smoke:
    def test_structure(self):
        result = fig2_cloud_scaling(
            quick=True, thread_counts=(1, 2), mixes=(0.9,), scale=100.0
        )
        assert result.experiment == "fig2"
        series = result.series_by_label("90:10")
        assert series.xs() == [1, 2]
        for point in series.points:
            assert point.throughput > 0
            assert point.anomaly_score == 0.0  # transactional


class TestFig3Smoke:
    def test_structure(self):
        result = fig3_transaction_overhead(quick=True, thread_counts=(1, 2), scale=100.0)
        raw = result.series_by_label("non-transactional")
        txn = result.series_by_label("transactional")
        assert len(raw.points) == len(txn.points) == 2
        assert result.tables["overhead"][0]["threads"] == 1
        for raw_point, txn_point in zip(raw.points, txn.points):
            assert txn_point.throughput < raw_point.throughput


class TestFig45Smoke:
    def test_fig4_structure(self):
        result = fig4_anomaly_score(quick=True, thread_counts=(1, 2), scale=100.0)
        scores = {p.x: p.anomaly_score for p in result.series[0].points}
        assert scores[1] == 0.0  # single thread is always clean

    def test_fig5_structure(self):
        result = fig5_raw_scaling(quick=True, thread_counts=(1, 2), scale=100.0)
        points = result.series[0].points
        assert all(point.operations > 0 for point in points)
        assert points[1].throughput > points[0].throughput


class TestTier5Smoke:
    def test_structure(self):
        result = tier5_operation_overhead(quick=True, scale=100.0, threads=2)
        operations = {row["operation"] for row in result.tables["operations"]}
        assert {"READ", "UPDATE", "START", "COMMIT"} <= operations
        modes = {row["mode"] for row in result.tables["throughput"]}
        assert modes == {"raw", "transactional"}


class TestTier6Smoke:
    def test_structure(self):
        result = tier6_consistency(quick=True, scale=100.0, threads=2)
        rows = {row["mode"]: row for row in result.tables["consistency"]}
        assert rows["transactional"]["anomaly_score"] == 0.0
        assert rows["transactional"]["validation_passed"] is True
        assert rows["raw"]["anomaly_score"] >= 0.0


class TestAblationSmoke:
    def test_structure(self):
        result = ablation_coordinators(
            quick=True, oracle_delays_ms=(0.0,), scale=100.0, threads=2
        )
        labels = {series.label for series in result.series}
        assert labels == {"client-coordinated", "percolator-style", "retso-style"}
        for series in result.series:
            assert series.points[0].anomaly_score == 0.0


class TestIsolationSmoke:
    def test_structure(self):
        result = isolation_matrix(quick=True, scale=100.0, threads=2)
        rows = result.tables["matrix"]
        assert len(rows) == 9  # 3 workloads x 3 modes
        for row in rows:
            if row["isolation"] == "serializable":
                assert row["anomaly_score"] == 0.0, row
