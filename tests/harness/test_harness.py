"""Harness machinery: contention model, runner helpers, report rendering."""

import pytest

from repro.bindings import BasicDB, MemoryDB
from repro.harness import (
    ContendedDB,
    ContentionModel,
    ExperimentResult,
    Point,
    Series,
    cew_properties,
    render_experiment,
    render_series_table,
    run_cew,
)


class TestContentionModel:
    def test_cost_grows_with_threads(self):
        model = ContentionModel(base_cost_s=10e-6, per_thread_cost_s=2e-6)
        assert model.cost_s() == pytest.approx(10e-6)
        model.register_thread()
        model.register_thread()
        assert model.cost_s() == pytest.approx(14e-6)
        model.unregister_thread()
        assert model.cost_s() == pytest.approx(12e-6)

    def test_unregister_never_negative(self):
        model = ContentionModel()
        model.unregister_thread()
        assert model.thread_count == 0

    def test_rejects_negative_costs(self):
        with pytest.raises(ValueError):
            ContentionModel(base_cost_s=-1)

    def test_zero_cost_is_free(self):
        model = ContentionModel(base_cost_s=0, per_thread_cost_s=0)
        model.pay()  # must not block or raise

    def test_contended_db_registers_on_init(self):
        model = ContentionModel()
        db = ContendedDB(BasicDB(), model)
        db.init()
        assert model.thread_count == 1
        db.cleanup()
        assert model.thread_count == 0

    def test_contended_db_passthrough(self):
        model = ContentionModel(base_cost_s=0, per_thread_cost_s=0)
        db = ContendedDB(BasicDB(), model)
        assert db.read("t", "k")[0].ok
        assert db.update("t", "k", {}).ok
        assert db.start().ok and db.commit().ok


class TestRunner:
    def test_cew_properties_defaults_and_overrides(self):
        properties = cew_properties(threadcount=4, recordcount=77)
        assert properties.get_int("threadcount") == 4
        assert properties.get_int("recordcount") == 77
        assert properties.get_float("readproportion") == pytest.approx(0.9)

    def test_run_cew_returns_run_result(self):
        result = run_cew(
            lambda: MemoryDB(cew_properties()),
            recordcount=30,
            operationcount=60,
            totalcash=30000,
            threadcount=1,
        )
        assert result.phase == "run"
        assert result.operations == 60
        assert result.validation is not None
        assert result.validation.passed  # single-threaded: consistent


class TestReportRendering:
    def _result(self):
        result = ExperimentResult("figX", "demo experiment", notes=["a note"])
        series = Series("alpha")
        series.points.append(Point(x=1, throughput=100.0, anomaly_score=0.0))
        series.points.append(Point(x=2, throughput=190.0, anomaly_score=1.5e-4))
        result.series.append(series)
        result.tables["extras"] = [{"mode": "raw", "ops_sec": 123.4}]
        return result

    def test_render_contains_series_rows(self):
        text = render_experiment(self._result())
        assert "figX" in text
        assert "a note" in text
        assert "alpha ops/s" in text
        assert "100.00" in text
        assert "1.50e-04" in text
        assert "extras" in text

    def test_series_accessors(self):
        result = self._result()
        series = result.series_by_label("alpha")
        assert series.xs() == [1, 2]
        assert series.throughputs() == [100.0, 190.0]
        with pytest.raises(KeyError):
            result.series_by_label("missing")

    def test_render_series_table_aligns_multiple_series(self):
        a = Series("a", [Point(x=1, throughput=10.0), Point(x=2, throughput=20.0)])
        b = Series("b", [Point(x=1, throughput=5.0)])
        text = render_series_table([a, b], x_label="threads")
        lines = text.splitlines()
        assert lines[0].startswith("threads")
        assert len(lines) == 4  # header + rule + two x rows
        assert "-" in text  # missing point rendered as dash


class TestCsvRendering:
    def test_series_and_tables_render(self):
        from repro.harness import render_experiment_csv

        result = ExperimentResult("figX", "demo")
        result.series.append(
            Series("alpha", [Point(x=1, throughput=10.5, anomaly_score=2.5e-4,
                                   operations=100, failed_operations=3)])
        )
        result.tables["summary"] = [{"mode": "raw", "ops": 7}]
        text = render_experiment_csv(result)
        lines = text.strip().splitlines()
        assert lines[0].startswith("series,label,x,")
        assert "series,alpha,1,10.500,0.00025,100,3" in lines[1]
        assert any(line.startswith("table:summary,mode,ops") for line in lines)

    def test_empty_result(self):
        from repro.harness import render_experiment_csv

        assert render_experiment_csv(ExperimentResult("e", "d")) == ""
