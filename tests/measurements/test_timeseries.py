"""Windowed throughput time series."""

import pytest

from repro.measurements import ThroughputTimeSeries


def make_series(window_s=1.0):
    clock = [100.0]
    series = ThroughputTimeSeries(window_s, clock=lambda: clock[0])
    return series, clock


class TestThroughputTimeSeries:
    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            ThroughputTimeSeries(0)

    def test_empty(self):
        series, _ = make_series()
        assert series.windows() == []
        assert series.total_operations() == 0
        assert series.peak_ops_per_second() == 0.0

    def test_single_window(self):
        series, _ = make_series()
        for _ in range(5):
            series.record()
        windows = series.windows()
        assert len(windows) == 1
        assert windows[0].operations == 5
        assert windows[0].ops_per_second == 5.0

    def test_multiple_windows(self):
        series, clock = make_series(window_s=1.0)
        series.record(3)
        clock[0] += 1.0
        series.record(7)
        clock[0] += 2.5  # skips a window
        series.record(1)
        windows = series.windows()
        assert [w.operations for w in windows] == [3, 7, 0, 1]
        assert [w.start_offset_s for w in windows] == [0.0, 1.0, 2.0, 3.0]
        assert series.total_operations() == 11
        assert series.peak_ops_per_second() == 7.0

    def test_fractional_window(self):
        series, clock = make_series(window_s=0.5)
        series.record(2)
        clock[0] += 0.6
        series.record(2)
        windows = series.windows()
        assert len(windows) == 2
        assert windows[0].ops_per_second == 4.0

    def test_thread_safety(self):
        import threading

        series, _ = make_series()

        def worker():
            for _ in range(5000):
                series.record()

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert series.total_operations() == 20000
