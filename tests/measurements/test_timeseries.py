"""Windowed throughput time series."""

import pytest

from repro.measurements import ThroughputTimeSeries


def make_series(window_s=1.0):
    clock = [100.0]
    series = ThroughputTimeSeries(window_s, clock=lambda: clock[0])
    return series, clock


class TestThroughputTimeSeries:
    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            ThroughputTimeSeries(0)

    def test_empty(self):
        series, _ = make_series()
        assert series.windows() == []
        assert series.total_operations() == 0
        assert series.peak_ops_per_second() == 0.0

    def test_single_window(self):
        series, _ = make_series()
        for _ in range(5):
            series.record()
        windows = series.windows()
        assert len(windows) == 1
        assert windows[0].operations == 5
        assert windows[0].ops_per_second == 5.0

    def test_multiple_windows(self):
        series, clock = make_series(window_s=1.0)
        series.record(3)
        clock[0] += 1.0
        series.record(7)
        clock[0] += 2.5  # skips a window
        series.record(1)
        windows = series.windows()
        assert [w.operations for w in windows] == [3, 7, 0, 1]
        assert [w.start_offset_s for w in windows] == [0.0, 1.0, 2.0, 3.0]
        assert series.total_operations() == 11
        assert series.peak_ops_per_second() == 7.0

    def test_fractional_window(self):
        series, clock = make_series(window_s=0.5)
        series.record(2)
        clock[0] += 0.6
        series.record(2)
        windows = series.windows()
        assert len(windows) == 2
        assert windows[0].ops_per_second == 4.0

    def test_thread_safety(self):
        import threading

        series, _ = make_series()

        def worker():
            for _ in range(5000):
                series.record()

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert series.total_operations() == 20000


class TestBoundedTimeSeries:
    """The ``max_windows`` decimating cap: O(1) memory for open-ended runs."""

    def make_bounded(self, max_windows, window_s=1.0):
        clock = [0.0]
        series = ThroughputTimeSeries(
            window_s, clock=lambda: clock[0], max_windows=max_windows
        )
        return series, clock

    def test_rejects_cap_below_two(self):
        with pytest.raises(ValueError):
            ThroughputTimeSeries(1.0, max_windows=1)

    def test_never_exceeds_cap(self):
        series, clock = self.make_bounded(max_windows=8)
        for second in range(1000):
            clock[0] = float(second)
            series.record()
            assert len(series.window_counts()) <= 8
        assert series.total_operations() == 1000

    def test_decimation_doubles_window_and_preserves_counts(self):
        series, clock = self.make_bounded(max_windows=4)
        for second in range(4):
            clock[0] = float(second)
            series.record(second + 1)  # counts 1..4
        assert series.window_counts() == [1, 2, 3, 4]
        assert series.window_s == 1.0
        # The 5th window forces one halving: pairs merge, width doubles.
        clock[0] = 4.0
        series.record(10)
        assert series.window_s == 2.0
        assert series.window_counts() == [3, 7, 10]
        assert series.total_operations() == 20

    def test_long_run_window_grows_logarithmically(self):
        series, clock = self.make_bounded(max_windows=16)
        for second in range(0, 10_000, 10):
            clock[0] = float(second)
            series.record()
        # 10_000 s at cap 16 needs width >= 625 -> next power of two: 1024.
        assert series.window_s == 1024.0
        assert len(series.window_counts()) <= 16
        assert series.total_operations() == 1000

    def test_windows_report_decimated_offsets(self):
        series, clock = self.make_bounded(max_windows=2)
        for second in range(4):
            clock[0] = float(second)
            series.record()
        windows = series.windows()
        assert [w.start_offset_s for w in windows] == [0.0, 2.0]
        assert all(w.ops_per_second == pytest.approx(1.0) for w in windows)

    def test_unbounded_series_unaffected(self):
        series, clock = make_series()
        for second in range(100):
            clock[0] = 100.0 + second
            series.record()
        assert series.max_windows is None
        assert len(series.window_counts()) == 100
        assert series.window_s == 1.0
