"""Exporter number formatting and report edge cases."""

from repro.measurements import Measurements, RunReport, TextExporter
from repro.measurements.exporters import _format_number


class TestFormatNumber:
    def test_integers(self):
        assert _format_number(42) == "42"
        assert _format_number(0) == "0"
        assert _format_number(-7) == "-7"

    def test_whole_floats_keep_one_decimal(self):
        # Java's String.valueOf(124619.0) -> "124619.0" (Listing 3 shape).
        assert _format_number(124619.0) == "124619.0"

    def test_fractional_floats_full_precision(self):
        assert _format_number(8024.458549659362) == "8024.458549659362"

    def test_tiny_scores_scientific(self):
        # repr of 2.9e-05 keeps scientific notation, as in Listing 3.
        assert "e-05" in _format_number(2.9e-05)

    def test_strings_pass_through(self):
        assert _format_number("already text") == "already text"

    def test_bools_lowercase(self):
        assert _format_number(True) == "true"


class TestRunReportEdges:
    def test_zero_runtime_throughput(self):
        report = RunReport.from_measurements(Measurements(), 0.0, 100)
        assert report.throughput == 0.0

    def test_empty_report_renders(self):
        text = TextExporter().export(RunReport.from_measurements(Measurements(), 10.0, 0))
        assert "[OVERALL], RunTime(ms), 10.0" in text
        assert text.endswith("\n")

    def test_validation_order_preserved(self):
        report = RunReport.from_measurements(
            Measurements(), 10.0, 1,
            validation=[("B FIRST", 1), ("A SECOND", 2)],
            validation_passed=True,
        )
        text = TextExporter().export(report)
        assert text.index("[B FIRST]") < text.index("[A SECOND]")
