"""Golden-file tests for every report exporter.

One deterministic RunReport — raw measurements with fixed samples,
counters, a validation block, throughput windows and a live-status
interval — is rendered by each exporter and compared byte-for-byte
against a checked-in golden file.  Any formatting change (field order,
counter ordering, number rendering, new fields) shows up as a reviewable
fixture diff.

Regenerate after an intentional change with::

    PYTHONPATH=src python tests/measurements/test_golden_reports.py
"""

from pathlib import Path

from repro.measurements import (
    CsvExporter,
    IntervalLatency,
    JsonExporter,
    JsonLinesExporter,
    Measurements,
    RunReport,
    StatusSnapshot,
    TextExporter,
    ThroughputWindow,
)

GOLDEN = Path(__file__).parent / "golden"


def build_report() -> RunReport:
    """A fully deterministic report exercising every exporter feature."""
    measurements = Measurements(measurement_type="raw")
    for value in (120, 450, 800, 1500, 9000):
        measurements.measure("READ", value)
    for _ in range(4):
        measurements.report_status("READ", "OK")
    measurements.report_status("READ", "NOT_FOUND")
    for value in (300, 600):
        measurements.measure("UPDATE", value)
        measurements.report_status("UPDATE", "OK")
    # Counters arrive in non-alphabetical order; exporters sort them.
    measurements.increment("RETRIES", 3)
    measurements.set_counter("FAULTS-TRANSIENT", 2)
    # Recovery-caused aborts are reported apart from write-write conflicts.
    measurements.increment("TXN-RECOVERY-ABORTS", 1)
    windows = [
        ThroughputWindow(start_offset_s=0.0, operations=50, ops_per_second=50.0),
        ThroughputWindow(start_offset_s=1.0, operations=70, ops_per_second=70.0),
    ]
    intervals = [
        StatusSnapshot(
            elapsed_s=1.0,
            operations=50,
            interval_operations=50,
            ops_per_second=50.0,
            latencies=(
                IntervalLatency(
                    operation="READ", count=50, average_us=400.0, p95_us=800.0, p99_us=1500.0
                ),
            ),
        ),
        StatusSnapshot(
            elapsed_s=2.0,
            operations=120,
            interval_operations=70,
            ops_per_second=70.0,
            latencies=(
                IntervalLatency(
                    operation="READ", count=70, average_us=350.0, p95_us=450.0, p99_us=800.0
                ),
            ),
        ),
    ]
    return RunReport.from_measurements(
        measurements,
        run_time_ms=2000.0,
        operations=120,
        validation=[
            ("TOTAL CASH", 1000),
            ("COUNTED CASH", 1000),
            ("ACTUAL OPERATIONS", 120),
            ("ANOMALY SCORE", 0.0),
        ],
        validation_passed=True,
        windows=windows,
        intervals=intervals,
    )


EXPORTERS = {
    "report.txt": TextExporter(),
    "report.json": JsonExporter(),
    "report.jsonl": JsonLinesExporter(phase="run"),
    "report.csv": CsvExporter(),
}


class TestGoldenReports:
    def _check(self, name: str) -> None:
        rendered = EXPORTERS[name].export(build_report())
        # read_bytes: the CSV exporter emits \r\n, which read_text's
        # universal-newline mode would silently translate.
        golden = (GOLDEN / name).read_bytes().decode()
        assert rendered == golden, f"{name} drifted from its golden file"

    def test_text(self):
        self._check("report.txt")

    def test_json(self):
        self._check("report.json")

    def test_jsonl(self):
        self._check("report.jsonl")

    def test_csv(self):
        self._check("report.csv")

    def test_plain_report_omits_interval_sections(self):
        """A run without status/interval data must not grow new blocks."""
        report = RunReport.from_measurements(Measurements(), 10.0, 0)
        assert '"windows"' not in JsonExporter().export(report)
        assert '"intervals"' not in JsonExporter().export(report)
        jsonl = JsonLinesExporter().export(report)
        assert '"record": "window"' not in jsonl
        assert '"record": "interval"' not in jsonl


if __name__ == "__main__":  # regenerate the golden files
    GOLDEN.mkdir(exist_ok=True)
    for name, exporter in EXPORTERS.items():
        (GOLDEN / name).write_text(exporter.export(build_report()))
        print(f"wrote {GOLDEN / name}")
