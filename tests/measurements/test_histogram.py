"""Measurement container tests."""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.measurements import HistogramMeasurement, RawMeasurement


class TestHistogramMeasurement:
    def test_empty_summary(self):
        summary = HistogramMeasurement("READ").summary()
        assert summary.count == 0
        assert summary.average_us == 0.0

    def test_basic_stats(self):
        measurement = HistogramMeasurement("READ")
        for latency in (1000, 2000, 3000):
            measurement.measure(latency)
        summary = measurement.summary()
        assert summary.count == 3
        assert summary.average_us == pytest.approx(2000)
        assert summary.min_us == 1000
        assert summary.max_us == 3000

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            HistogramMeasurement("READ").measure(-1)

    def test_rejects_zero_buckets(self):
        with pytest.raises(ValueError):
            HistogramMeasurement("READ", buckets=0)

    def test_overflow_bucket(self):
        measurement = HistogramMeasurement("READ", buckets=2)
        measurement.measure(10_000_000)  # way past the last bucket
        summary = measurement.summary()
        assert summary.count == 1
        assert summary.max_us == 10_000_000
        # A percentile that lands in the overflow bucket reports the
        # observed maximum, not the regular-bucket limit.
        assert summary.percentile_95_us == 10_000_000.0

    def test_overflow_percentile_clamps_to_observed_max(self):
        # Regression: overflow samples used to count toward the target
        # while only the regular buckets were walked, so any overflow
        # made p99 report `buckets` ms instead of the real tail.
        measurement = HistogramMeasurement("READ", buckets=10)
        for _ in range(90):
            measurement.measure(2_500)  # bucket 2
        for _ in range(10):
            measurement.measure(123_456)  # overflow (>= 10 ms)
        summary = measurement.summary()
        assert summary.percentile_95_us == 123_456.0
        assert summary.percentile_99_us == 123_456.0
        # A percentile still inside the regular buckets is unaffected.
        assert (
            HistogramMeasurement._percentile_us([90, 0, 10], 100, 2_900, 0.90) == 0.0
        )

    def test_percentiles_ms_resolution(self):
        measurement = HistogramMeasurement("READ")
        for _ in range(95):
            measurement.measure(1_500)  # bucket 1
        for _ in range(5):
            measurement.measure(9_500)  # bucket 9
        summary = measurement.summary()
        assert summary.percentile_95_us == 1000.0
        assert summary.percentile_99_us == 9000.0

    def test_return_codes(self):
        measurement = HistogramMeasurement("READ")
        measurement.report_status("OK")
        measurement.report_status("OK")
        measurement.report_status("NOT_FOUND")
        assert measurement.summary().return_codes == {"OK": 2, "NOT_FOUND": 1}

    def test_thread_safety_counts(self):
        measurement = HistogramMeasurement("READ")

        def worker():
            for _ in range(5000):
                measurement.measure(1234)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert measurement.summary().count == 20000

    @given(latencies=st.lists(st.integers(0, 10_000_000), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_property_exact_aggregates(self, latencies):
        measurement = HistogramMeasurement("X")
        for latency in latencies:
            measurement.measure(latency)
        summary = measurement.summary()
        assert summary.count == len(latencies)
        assert summary.min_us == min(latencies)
        assert summary.max_us == max(latencies)
        assert summary.average_us == pytest.approx(sum(latencies) / len(latencies))


class TestRawMeasurement:
    def test_exact_percentiles(self):
        measurement = RawMeasurement("READ")
        for latency in range(1, 101):
            measurement.measure(latency)
        summary = measurement.summary()
        assert summary.percentile_95_us == 95.0
        assert summary.percentile_99_us == 99.0

    def test_samples_returned(self):
        measurement = RawMeasurement("READ")
        measurement.measure(5)
        measurement.measure(7)
        assert measurement.samples() == [5, 7]

    def test_empty(self):
        assert RawMeasurement("X").summary().count == 0

    @given(latencies=st.lists(st.integers(0, 1_000_000), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_property_summary_matches_samples(self, latencies):
        measurement = RawMeasurement("X")
        for latency in latencies:
            measurement.measure(latency)
        summary = measurement.summary()
        assert summary.min_us == min(latencies)
        assert summary.max_us == max(latencies)
        assert summary.count == len(latencies)

    @pytest.mark.parametrize(
        ("count", "fraction", "expected_rank"),
        [
            # Nearest-rank is ceil(fraction * n); round() was wrong both
            # ways: round(9.5) == 10 by luck, but round(2.5) == 2
            # (banker's) and round(9.4) == 9 truncates the tail.
            (10, 0.95, 10),  # 9.5 -> 10
            (10, 0.25, 3),  # 2.5 -> 3 (round() gives 2)
            (10, 0.94, 10),  # 9.4 -> 10 (round() gives 9)
            (20, 0.95, 19),  # exact 19
            (50, 0.95, 48),  # 47.5 -> 48
            (100, 0.95, 95),
            (100, 0.99, 99),
            (3, 0.5, 2),  # 1.5 -> 2 (round() gives 2 too)
            (4, 0.5, 2),  # exact 2
            (1, 0.99, 1),
            (200, 0.999, 200),  # 199.8 -> 200
        ],
    )
    def test_nearest_rank_percentile_table(self, count, fraction, expected_rank):
        measurement = RawMeasurement("X")
        # Distinct ascending samples: value == its 1-based rank.
        for value in range(1, count + 1):
            measurement.measure(value)
        ordered = sorted(measurement.samples())
        assert RawMeasurement._percentile(ordered, fraction) == float(expected_rank)

    def test_histogram_and_raw_agree_on_aggregates(self):
        histogram = HistogramMeasurement("X")
        raw = RawMeasurement("X")
        data = [17, 170, 1700, 17000, 170000]
        for latency in data:
            histogram.measure(latency)
            raw.measure(latency)
        h, r = histogram.summary(), raw.summary()
        assert (h.count, h.min_us, h.max_us) == (r.count, r.min_us, r.max_us)
        assert h.average_us == pytest.approx(r.average_us)


class TestIntervalSummaries:
    """interval_summary() drains a window without touching the cumulative view."""

    @pytest.mark.parametrize("factory", [HistogramMeasurement, RawMeasurement])
    def test_windows_partition_the_stream(self, factory):
        measurement = factory("READ")
        for value in (1_000, 2_000):
            measurement.measure(value)
        first = measurement.interval_summary()
        assert first.count == 2
        assert first.min_us == 1_000
        assert first.max_us == 2_000
        measurement.measure(7_000)
        second = measurement.interval_summary()
        assert second.count == 1
        assert second.min_us == second.max_us == 7_000
        # Empty window.
        assert measurement.interval_summary().count == 0
        # Cumulative summary still sees everything.
        total = measurement.summary()
        assert total.count == 3
        assert total.min_us == 1_000
        assert total.max_us == 7_000

    def test_interval_percentiles_reflect_only_the_window(self):
        measurement = HistogramMeasurement("READ")
        for _ in range(100):
            measurement.measure(1_500)  # bucket 1
        measurement.interval_summary()  # drain
        for _ in range(100):
            measurement.measure(9_500)  # bucket 9
        window = measurement.interval_summary()
        assert window.percentile_95_us == 9_000.0
        # Cumulative p95 still spans both halves.
        assert measurement.summary().percentile_95_us == 9_000.0
        assert measurement.summary().percentile_99_us == 9_000.0
