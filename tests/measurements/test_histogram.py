"""Measurement container tests."""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.measurements import HistogramMeasurement, RawMeasurement


class TestHistogramMeasurement:
    def test_empty_summary(self):
        summary = HistogramMeasurement("READ").summary()
        assert summary.count == 0
        assert summary.average_us == 0.0

    def test_basic_stats(self):
        measurement = HistogramMeasurement("READ")
        for latency in (1000, 2000, 3000):
            measurement.measure(latency)
        summary = measurement.summary()
        assert summary.count == 3
        assert summary.average_us == pytest.approx(2000)
        assert summary.min_us == 1000
        assert summary.max_us == 3000

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            HistogramMeasurement("READ").measure(-1)

    def test_rejects_zero_buckets(self):
        with pytest.raises(ValueError):
            HistogramMeasurement("READ", buckets=0)

    def test_overflow_bucket(self):
        measurement = HistogramMeasurement("READ", buckets=2)
        measurement.measure(10_000_000)  # way past the last bucket
        summary = measurement.summary()
        assert summary.count == 1
        assert summary.max_us == 10_000_000
        # Percentile saturates at the bucket limit (in ms -> us).
        assert summary.percentile_95_us == 2000.0

    def test_percentiles_ms_resolution(self):
        measurement = HistogramMeasurement("READ")
        for _ in range(95):
            measurement.measure(1_500)  # bucket 1
        for _ in range(5):
            measurement.measure(9_500)  # bucket 9
        summary = measurement.summary()
        assert summary.percentile_95_us == 1000.0
        assert summary.percentile_99_us == 9000.0

    def test_return_codes(self):
        measurement = HistogramMeasurement("READ")
        measurement.report_status("OK")
        measurement.report_status("OK")
        measurement.report_status("NOT_FOUND")
        assert measurement.summary().return_codes == {"OK": 2, "NOT_FOUND": 1}

    def test_thread_safety_counts(self):
        measurement = HistogramMeasurement("READ")

        def worker():
            for _ in range(5000):
                measurement.measure(1234)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert measurement.summary().count == 20000

    @given(latencies=st.lists(st.integers(0, 10_000_000), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_property_exact_aggregates(self, latencies):
        measurement = HistogramMeasurement("X")
        for latency in latencies:
            measurement.measure(latency)
        summary = measurement.summary()
        assert summary.count == len(latencies)
        assert summary.min_us == min(latencies)
        assert summary.max_us == max(latencies)
        assert summary.average_us == pytest.approx(sum(latencies) / len(latencies))


class TestRawMeasurement:
    def test_exact_percentiles(self):
        measurement = RawMeasurement("READ")
        for latency in range(1, 101):
            measurement.measure(latency)
        summary = measurement.summary()
        assert summary.percentile_95_us == 95.0
        assert summary.percentile_99_us == 99.0

    def test_samples_returned(self):
        measurement = RawMeasurement("READ")
        measurement.measure(5)
        measurement.measure(7)
        assert measurement.samples() == [5, 7]

    def test_empty(self):
        assert RawMeasurement("X").summary().count == 0

    @given(latencies=st.lists(st.integers(0, 1_000_000), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_property_summary_matches_samples(self, latencies):
        measurement = RawMeasurement("X")
        for latency in latencies:
            measurement.measure(latency)
        summary = measurement.summary()
        assert summary.min_us == min(latencies)
        assert summary.max_us == max(latencies)
        assert summary.count == len(latencies)

    def test_histogram_and_raw_agree_on_aggregates(self):
        histogram = HistogramMeasurement("X")
        raw = RawMeasurement("X")
        data = [17, 170, 1700, 17000, 170000]
        for latency in data:
            histogram.measure(latency)
            raw.measure(latency)
        h, r = histogram.summary(), raw.summary()
        assert (h.count, h.min_us, h.max_us) == (r.count, r.min_us, r.max_us)
        assert h.average_us == pytest.approx(r.average_us)
