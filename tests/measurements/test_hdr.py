"""Streaming log-bucketed (HDR-style) histogram tests.

The headline guarantee: percentiles within the configured relative error
of the exact (RawMeasurement) answer on the same sample stream, at
O(buckets) memory.
"""

import random
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.measurements import HdrHistogramMeasurement, Measurements, RawMeasurement


class TestIndexing:
    def test_small_values_exact(self):
        measurement = HdrHistogramMeasurement("X")
        # With 2 significant digits the sub-bucket count is 256: every
        # value below 256 us has its own slot.
        for value in (0, 1, 17, 255):
            assert measurement._index_for(value) == value
            assert measurement._highest_equivalent(measurement._index_for(value)) == value

    def test_round_trip_brackets_value(self):
        measurement = HdrHistogramMeasurement("X")
        for value in (256, 300, 1_000, 65_537, 10_000_000, 123_456_789):
            index = measurement._index_for(value)
            high = measurement._highest_equivalent(index)
            assert high >= value
            assert (high - value) / value < 1 / 100  # 2 significant digits

    def test_indexes_are_contiguous_and_monotonic(self):
        measurement = HdrHistogramMeasurement("X")
        previous = -1
        for value in range(0, 5_000):
            index = measurement._index_for(value)
            assert index in (previous, previous + 1)
            previous = index

    def test_rejects_bad_digits(self):
        with pytest.raises(ValueError):
            HdrHistogramMeasurement("X", significant_digits=0)
        with pytest.raises(ValueError):
            HdrHistogramMeasurement("X", significant_digits=6)


class TestHdrHistogramMeasurement:
    def test_empty_summary(self):
        summary = HdrHistogramMeasurement("READ").summary()
        assert summary.count == 0
        assert summary.percentile_95_us == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            HdrHistogramMeasurement("READ").measure(-1)

    def test_exact_aggregates(self):
        measurement = HdrHistogramMeasurement("READ")
        for value in (120, 450, 999, 70_000):
            measurement.measure(value)
        summary = measurement.summary()
        assert summary.count == 4
        assert summary.min_us == 120
        assert summary.max_us == 70_000
        assert summary.average_us == pytest.approx((120 + 450 + 999 + 70_000) / 4)

    def test_sub_millisecond_percentiles_not_quantised_to_zero(self):
        # The bug this container exists to fix: the 1 ms-bucket histogram
        # reports p95 = 0 us for any all-sub-millisecond run.
        measurement = HdrHistogramMeasurement("READ")
        for value in range(1, 101):  # 1..100 us
            measurement.measure(value)
        summary = measurement.summary()
        assert summary.percentile_95_us == 95.0
        assert summary.percentile_99_us == 99.0

    def test_percentile_clamped_to_observed_max(self):
        measurement = HdrHistogramMeasurement("READ")
        measurement.measure(1_000_000)
        # The slot's highest equivalent value exceeds the sample; the
        # report must never exceed what was actually observed.
        assert measurement.summary().percentile_99_us == 1_000_000.0

    def test_percentile_us_arbitrary_fraction(self):
        measurement = HdrHistogramMeasurement("READ")
        for value in range(1, 101):
            measurement.measure(value)
        assert measurement.percentile_us(0.50) == 50.0
        with pytest.raises(ValueError):
            measurement.percentile_us(0.0)

    def test_return_codes(self):
        measurement = HdrHistogramMeasurement("READ")
        measurement.report_status("OK")
        measurement.report_status("ERROR")
        assert measurement.summary().return_codes == {"OK": 1, "ERROR": 1}

    def test_thread_safety(self):
        measurement = HdrHistogramMeasurement("READ")

        def worker():
            for value in range(5000):
                measurement.measure(value)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert measurement.summary().count == 20_000

    def test_interval_summary_partitions_stream(self):
        measurement = HdrHistogramMeasurement("READ")
        for value in (100, 200):
            measurement.measure(value)
        window = measurement.interval_summary()
        assert (window.count, window.min_us, window.max_us) == (2, 100, 200)
        measurement.measure(50_000)
        window = measurement.interval_summary()
        assert (window.count, window.min_us) == (1, 50_000)
        assert window.percentile_95_us == pytest.approx(50_000, rel=0.01)
        assert measurement.interval_summary().count == 0
        assert measurement.summary().count == 3


class TestAccuracyAgainstRaw:
    """The provable contract: HDR percentiles track RawMeasurement."""

    @staticmethod
    def _relative_error(approx: float, exact: float) -> float:
        if exact == 0:
            return abs(approx)
        return abs(approx - exact) / exact

    def test_100k_sub_millisecond_run_within_2_percent(self):
        # Acceptance criterion: a 100k-sample sub-millisecond stream,
        # p95/p99 within 2% of exact, at bounded memory.
        rng = random.Random(1234)
        hdr = HdrHistogramMeasurement("READ")
        raw = RawMeasurement("READ")
        for _ in range(100_000):
            value = min(999, int(rng.lognormvariate(4.5, 0.8)))
            hdr.measure(value)
            raw.measure(value)
        h, r = hdr.summary(), raw.summary()
        assert self._relative_error(h.percentile_95_us, r.percentile_95_us) < 0.02
        assert self._relative_error(h.percentile_99_us, r.percentile_99_us) < 0.02
        assert (h.count, h.min_us, h.max_us) == (r.count, r.min_us, r.max_us)
        assert h.average_us == pytest.approx(r.average_us)
        # O(buckets) memory: sub-millisecond values need < 600 slots,
        # versus the 100_000 samples RawMeasurement holds.
        assert hdr.slot_count < 600

    @given(
        latencies=st.lists(st.integers(0, 10_000_000), min_size=1, max_size=500)
    )
    @settings(max_examples=100, deadline=None)
    def test_property_percentiles_bracket_exact(self, latencies):
        hdr = HdrHistogramMeasurement("X")
        raw = RawMeasurement("X")
        for value in latencies:
            hdr.measure(value)
            raw.measure(value)
        h, r = hdr.summary(), raw.summary()
        for approx, exact in (
            (h.percentile_95_us, r.percentile_95_us),
            (h.percentile_99_us, r.percentile_99_us),
        ):
            # Same nearest-rank target; the HDR answer is the slot's
            # highest equivalent value, so it can only overshoot — and by
            # at most the two-significant-digit bound.
            assert approx >= exact or approx == float(h.max_us)
            assert approx <= exact * 1.01 + 1e-9 or exact == 0 and approx == 0

    def test_wide_dynamic_range_memory_stays_small(self):
        measurement = HdrHistogramMeasurement("X")
        rng = random.Random(7)
        for _ in range(50_000):
            measurement.measure(rng.randrange(0, 100_000_000))  # up to 100 s
        # bit_length(1e8) == 27 -> ~ (27 - 8 + 2) * 128 slots.
        assert measurement.slot_count <= (27 - 8 + 2) * 128


class TestRegistryIntegration:
    def test_hdrhistogram_is_the_default(self):
        measurements = Measurements()
        assert measurements.measurement_type == "hdrhistogram"
        measurements.measure("READ", 95)
        for value in range(1, 101):
            measurements.measure("OP", value)
        assert measurements.summary_for("OP").percentile_95_us == 95.0

    def test_selectable_by_property(self):
        from repro.core import Properties

        measurements = Measurements.from_properties(
            Properties({"measurementtype": "hdrhistogram", "hdrhistogram.digits": "3"})
        )
        container = measurements._get("READ")
        assert isinstance(container, HdrHistogramMeasurement)
        assert container.significant_digits == 3

    def test_classic_types_still_selectable(self):
        from repro.measurements import HistogramMeasurement

        assert isinstance(
            Measurements(measurement_type="histogram")._get("X"), HistogramMeasurement
        )
        assert isinstance(Measurements(measurement_type="raw")._get("X"), RawMeasurement)

    def test_interval_summaries_drain_all_operations(self):
        measurements = Measurements()
        measurements.measure("READ", 100)
        measurements.measure("UPDATE", 200)
        windows = measurements.interval_summaries()
        assert windows["READ"].count == 1
        assert windows["UPDATE"].count == 1
        assert all(s.count == 0 for s in measurements.interval_summaries().values())
