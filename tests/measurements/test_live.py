"""Live status reporter tests (fake clock, manual ticks)."""

import io

import pytest

from repro.measurements import Measurements, StatusReporter
from repro.measurements.live import format_status_line


def make_reporter(sink=None, interval_s=1.0):
    clock = [100.0]
    measurements = Measurements()
    counter = [0]
    reporter = StatusReporter(
        measurements,
        operation_counter=lambda: counter[0],
        interval_s=interval_s,
        phase="run",
        sink=sink,
        clock=lambda: clock[0],
    )
    # Pin the reporter's epoch without starting the background thread;
    # ticks are driven manually for determinism.
    reporter._started_at = reporter._last_at = clock[0]
    return reporter, measurements, counter, clock


class TestStatusReporter:
    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            StatusReporter(Measurements(), lambda: 0, interval_s=0)

    def test_tick_computes_interval_rate(self):
        reporter, measurements, counter, clock = make_reporter()
        counter[0] = 500
        for _ in range(10):
            measurements.measure("READ", 250)
        clock[0] += 2.0
        snapshot = reporter.tick()
        assert snapshot.elapsed_s == pytest.approx(2.0)
        assert snapshot.operations == 500
        assert snapshot.interval_operations == 500
        assert snapshot.ops_per_second == pytest.approx(250.0)
        assert [lat.operation for lat in snapshot.latencies] == ["READ"]
        assert snapshot.latencies[0].count == 10
        assert snapshot.latencies[0].p95_us == 250.0

    def test_second_tick_sees_only_new_work(self):
        reporter, measurements, counter, clock = make_reporter()
        counter[0] = 100
        measurements.measure("READ", 100)
        clock[0] += 1.0
        reporter.tick()
        counter[0] = 130
        measurements.measure("UPDATE", 900)
        clock[0] += 1.0
        snapshot = reporter.tick()
        assert snapshot.interval_operations == 30
        assert snapshot.ops_per_second == pytest.approx(30.0)
        # READ had no samples this window; only UPDATE appears.
        assert [lat.operation for lat in snapshot.latencies] == ["UPDATE"]

    def test_lines_written_to_sink(self):
        sink = io.StringIO()
        reporter, measurements, counter, clock = make_reporter(sink=sink)
        counter[0] = 42
        measurements.measure("TX-READ", 812)
        clock[0] += 1.0
        reporter.tick()
        line = sink.getvalue().strip()
        assert line.startswith("[run] 1 sec: 42 operations; 42.0 current ops/sec")
        assert "TX-READ p95=812us p99=812us" in line

    def test_snapshots_accumulate(self):
        reporter, measurements, counter, clock = make_reporter()
        for total in (10, 25, 70):
            counter[0] = total
            clock[0] += 1.0
            reporter.tick()
        assert [s.operations for s in reporter.snapshots] == [10, 25, 70]
        assert [s.interval_operations for s in reporter.snapshots] == [10, 15, 45]

    def test_does_not_disturb_cumulative_summaries(self):
        reporter, measurements, counter, clock = make_reporter()
        for value in (100, 200, 300):
            measurements.measure("READ", value)
        clock[0] += 1.0
        reporter.tick()
        measurements.measure("READ", 400)
        summary = measurements.summary_for("READ")
        assert summary.count == 4
        assert summary.min_us == 100
        assert summary.max_us == 400

    def test_thread_start_stop_emits_final_interval(self):
        sink = io.StringIO()
        measurements = Measurements()
        reporter = StatusReporter(
            measurements, lambda: 7, interval_s=60.0, phase="load", sink=sink
        )
        reporter.start()
        measurements.measure("INSERT", 55)
        reporter.stop()  # final tick fires even though no interval elapsed
        assert len(reporter.snapshots) >= 1
        assert reporter.snapshots[-1].operations == 7
        assert "[load]" in sink.getvalue()


class TestFormatStatusLine:
    def test_shape(self):
        reporter, measurements, counter, clock = make_reporter()
        counter[0] = 1000
        measurements.measure("READ", 120)
        measurements.measure("UPDATE", 450)
        clock[0] += 10.0
        line = format_status_line("run", reporter.tick())
        assert line.startswith("[run] 10 sec: 1000 operations; 100.0 current ops/sec")
        assert "READ p95=120us p99=120us" in line
        assert "UPDATE p95=450us p99=450us" in line
