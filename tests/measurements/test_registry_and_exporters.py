"""Measurements registry and exporter tests."""

import csv
import io
import json
import threading

import pytest

from repro.measurements import (
    CsvExporter,
    JsonExporter,
    Measurements,
    RunReport,
    StopWatch,
    TextExporter,
)


class TestMeasurements:
    def test_lazy_creation(self):
        measurements = Measurements()
        assert measurements.operations() == []
        measurements.measure("READ", 100)
        assert measurements.operations() == ["READ"]

    def test_rejects_unknown_type(self):
        with pytest.raises(ValueError):
            Measurements(measurement_type="hdr")

    def test_zero_buckets_means_default(self):
        # Listing 2 sets histogram.buckets=0; treated as "use default".
        measurements = Measurements(histogram_buckets=0)
        measurements.measure("READ", 500_000)
        assert measurements.summary_for("READ").count == 1

    def test_raw_mode(self):
        measurements = Measurements(measurement_type="raw")
        for latency in range(1, 101):
            measurements.measure("OP", latency)
        assert measurements.summary_for("OP").percentile_95_us == 95.0

    def test_summary_for_missing_operation(self):
        summary = Measurements().summary_for("NOPE")
        assert summary.count == 0
        assert summary.operation == "NOPE"

    def test_status_reporting(self):
        measurements = Measurements()
        measurements.report_status("READ", "OK")
        measurements.report_status("READ", "NOT_FOUND")
        assert measurements.summary_for("READ").return_codes == {"OK": 1, "NOT_FOUND": 1}

    def test_concurrent_distinct_operations(self):
        measurements = Measurements()

        def worker(name):
            for _ in range(2000):
                measurements.measure(name, 10)

        threads = [threading.Thread(target=worker, args=(f"OP{i}",)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(measurements.operations()) == ["OP0", "OP1", "OP2", "OP3"]
        for i in range(4):
            assert measurements.summary_for(f"OP{i}").count == 2000


class TestStopWatch:
    def test_elapsed_non_negative_and_monotonic(self):
        watch = StopWatch()
        first = watch.elapsed_us()
        second = watch.elapsed_us()
        assert 0 <= first <= second

    def test_restart(self):
        watch = StopWatch()
        import time

        time.sleep(0.002)
        watch.restart()
        # After restart the 2 ms sleep must not be counted; allow slack
        # for preemption between restart() and elapsed_us().
        assert watch.elapsed_us() < 100_000


def _sample_report() -> RunReport:
    measurements = Measurements()
    measurements.measure("READ", 1500)
    measurements.measure("READ", 2500)
    measurements.report_status("READ", "OK")
    measurements.report_status("READ", "OK")
    return RunReport.from_measurements(
        measurements,
        run_time_ms=1000.0,
        operations=2,
        validation=[("TOTAL CASH", 1000), ("COUNTED CASH", 998), ("ANOMALY SCORE", 2e-3)],
        validation_passed=False,
    )


class TestTextExporter:
    def test_listing3_shape(self):
        output = TextExporter().export(_sample_report())
        lines = output.splitlines()
        assert lines[0] == "Validation failed"
        assert "[TOTAL CASH], 1000" in lines
        assert "[COUNTED CASH], 998" in lines
        assert "Database validation failed" in lines
        assert "[OVERALL], RunTime(ms), 1000.0" in lines
        assert "[OVERALL], Throughput(ops/sec), 2.0" in lines
        assert "[READ], Operations, 2" in lines
        assert "[READ], AverageLatency(us), 2000.0" in lines
        assert "[READ], MinLatency(us), 1500" in lines
        assert "[READ], MaxLatency(us), 2500" in lines
        assert "[READ], Return=OK, 2" in lines

    def test_validation_passed_line(self):
        report = _sample_report()
        report.validation_passed = True
        output = TextExporter().export(report)
        assert "Database validation passed" in output
        assert "Validation failed" not in output

    def test_no_validation_section(self):
        measurements = Measurements()
        report = RunReport.from_measurements(measurements, 100.0, 0)
        output = TextExporter().export(report)
        assert "validation" not in output.lower()
        assert output.startswith("[OVERALL], RunTime(ms)")

    def test_percentiles_toggle(self):
        output = TextExporter(include_percentiles=False).export(_sample_report())
        assert "95thPercentile" not in output


class TestJsonExporter:
    def test_round_trip(self):
        document = json.loads(JsonExporter().export(_sample_report()))
        assert document["overall"]["operations"] == 2
        assert document["overall"]["throughput_ops_sec"] == pytest.approx(2.0)
        assert document["validation"]["passed"] is False
        assert document["validation"]["fields"]["TOTAL CASH"] == 1000
        assert document["operations"]["READ"]["operations"] == 2
        assert document["operations"]["READ"]["return_codes"] == {"OK": 2}


class TestCsvExporter:
    def test_rows(self):
        output = CsvExporter().export(_sample_report())
        rows = list(csv.reader(io.StringIO(output)))
        assert rows[0][0] == "operation"
        assert rows[1][0] == "READ"
        assert rows[1][1] == "2"
        assert rows[1][7] == "2"  # ok count
        assert rows[1][8] == "0"  # failures
