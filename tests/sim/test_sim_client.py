"""The benchmark client on virtual time.

Covers the acceptance bar for the simulation subsystem: a CEW run
spanning ~1000 *simulated* seconds — 8 simulated threads with latency,
rate-limit and fault models all active — completes in well under 5 s of
wall time and is byte-for-byte reproducible; and a short run under
SimClock agrees with the same run under WallClock.
"""

import random
import time

from repro.bindings.kv import KVStoreDB
from repro.bindings.stores import wrap_store
from repro.bindings.txn import TxnDB
from repro.core.client import Client
from repro.core.closed_economy import ClosedEconomyWorkload
from repro.core.properties import Properties
from repro.kvstore.cloud import WAS_PROFILE, SimulatedCloudStore
from repro.kvstore.memory import InMemoryKVStore
from repro.measurements.exporters import JsonLinesExporter
from repro.measurements.registry import Measurements
from repro.sim.clock import use_clock
from repro.sim.scheduler import SimClock
from repro.txn.manager import ClientTransactionManager


def _cew(properties, db_factory):
    """Load + run one CEW benchmark; returns the run result."""
    workload = ClosedEconomyWorkload()
    measurements = Measurements.from_properties(properties)
    workload.init(properties, measurements)
    client = Client(workload, db_factory, properties, measurements)
    client.load()
    run = client.run()
    workload.cleanup()
    return run


class TestThousandSimulatedSeconds:
    """The flagship acceptance case."""

    PROPERTIES = {
        "table": "usertable",
        "recordcount": "50",
        "operationcount": "2000",
        "totalcash": "50000",
        "readproportion": "0.4",
        "updateproportion": "0.2",
        "insertproportion": "0.05",
        "deleteproportion": "0.05",
        "readmodifywriteproportion": "0.3",
        "fieldcount": "1",
        "threadcount": "8",
        "target": "2.0",  # 2000 ops at 2 ops/s -> ~1000 virtual seconds
        "measurementtype": "hdrhistogram",
        # fault model (torn writes off: this test pins duration, not gamma)
        "fault.error_rate": "0.02",
        "fault.latency_spike_rate": "0.02",
        "fault.latency_spike_ms": "40",
        "retry.max_attempts": "8",
        "retry.base_delay_ms": "1",
        "retry.max_delay_ms": "20",
        "retry.seed": "5",
        "fault.seed": "6",
        "seed": "4",
    }

    def _one_run(self):
        props = Properties(dict(self.PROPERTIES))
        clock = SimClock()
        with use_clock(clock):
            # Latency + rate ceiling from the simulated cloud store,
            # faults + retries from the standard wrapper chain.
            store = SimulatedCloudStore(WAS_PROFILE, scale=1.0, rng=random.Random(9))
            wrapped = wrap_store(store, props)
            run = _cew(props, lambda: KVStoreDB(wrapped, props))
        return run, clock, store

    def test_thousand_virtual_seconds_under_five_wall_seconds(self):
        wall_started = time.monotonic()
        run, clock, store = self._one_run()
        wall_s = time.monotonic() - wall_started

        assert run.operations == 2000
        assert run.run_time_ms >= 990_000  # ~1000 simulated seconds
        assert wall_s < 5.0
        # All three models were genuinely in the path.
        assert clock.scheduler.events_processed > 2000
        assert store.throttled_requests >= 0  # rate limiter consulted
        counters = run.measurements.counters()
        assert counters.get("RETRIES", 0) > 0  # faults fired, retries absorbed

    def test_same_seed_reports_are_byte_identical(self):
        first, _, _ = self._one_run()
        second, _, _ = self._one_run()
        exporter = JsonLinesExporter()
        assert exporter.export(first.report()) == exporter.export(second.report())


class TestSimWallEquivalence:
    """A simulated run is the same benchmark, just on a different clock."""

    PROPERTIES = {
        "table": "usertable",
        "recordcount": "20",
        "operationcount": "150",
        "totalcash": "20000",
        "readproportion": "0.4",
        "updateproportion": "0.2",
        "insertproportion": "0.05",
        "deleteproportion": "0.05",
        "readmodifywriteproportion": "0.3",
        "fieldcount": "1",
        "seed": "11",
    }

    def _txn_run(self, threadcount):
        props = Properties(dict(self.PROPERTIES) | {"threadcount": str(threadcount)})
        manager = ClientTransactionManager(
            InMemoryKVStore(), isolation="serializable", client_id="equiv"
        )
        return _cew(props, lambda: TxnDB(props, manager=manager))

    def test_single_thread_runs_agree_exactly(self):
        sim_clock = SimClock()
        with use_clock(sim_clock):
            sim = self._txn_run(threadcount=1)
        wall = self._txn_run(threadcount=1)

        # Same committed-operation counts and the same verdict.
        assert sim.operations == wall.operations == 150
        assert sim.failed_operations == wall.failed_operations
        assert sim.anomaly_score == wall.anomaly_score == 0.0
        assert sim.validation.passed and wall.validation.passed
        assert dict(sim.validation.fields) == dict(wall.validation.fields)

    def test_concurrent_runs_agree_on_the_verdict(self):
        sim_clock = SimClock()
        with use_clock(sim_clock):
            sim = self._txn_run(threadcount=6)
        wall = self._txn_run(threadcount=6)

        assert sim.operations == wall.operations == 150
        assert sim.anomaly_score == wall.anomaly_score == 0.0
        assert sim.validation.passed and wall.validation.passed
