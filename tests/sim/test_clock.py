"""Clock protocol: wall/sim implementations and the ambient dispatch."""

import time

import pytest

from repro.sim.clock import (
    WALL_CLOCK,
    WallClock,
    ambient_monotonic,
    ambient_now,
    ambient_now_us,
    ambient_perf_counter_ns,
    ambient_sleep,
    get_clock,
    set_clock,
    use_clock,
)
from repro.sim.scheduler import SIM_EPOCH, SimClock


class TestWallClock:
    def test_tracks_time_module(self):
        clock = WallClock()
        assert abs(clock.now() - time.time()) < 1.0
        assert abs(clock.monotonic() - time.monotonic()) < 1.0
        assert abs(clock.now_us() - time.time_ns() // 1000) < 1_000_000

    def test_sleep_actually_sleeps(self):
        clock = WallClock()
        before = time.monotonic()
        clock.sleep(0.01)
        assert time.monotonic() - before >= 0.009


class TestSimClock:
    def test_virtual_arithmetic(self):
        clock = SimClock()
        assert clock.monotonic() == 0.0
        assert clock.now() == SIM_EPOCH
        clock.sleep(12.5)  # driver context: advances directly
        assert clock.monotonic() == 12.5
        assert clock.now() == SIM_EPOCH + 12.5
        assert clock.now_us() == int(round((SIM_EPOCH + 12.5) * 1e6))
        assert clock.perf_counter_ns() == 12_500_000_000

    def test_sleeping_costs_no_wall_time(self):
        clock = SimClock()
        before = time.monotonic()
        clock.sleep(3600.0)
        assert time.monotonic() - before < 0.1
        assert clock.monotonic() == 3600.0


class TestAmbientClock:
    def test_default_is_wall(self):
        assert get_clock() is WALL_CLOCK

    def test_use_clock_installs_and_restores(self):
        sim = SimClock()
        with use_clock(sim):
            assert get_clock() is sim
            sim.scheduler.now = 7.0
            assert ambient_monotonic() == 7.0
            assert ambient_now() == SIM_EPOCH + 7.0
            assert ambient_now_us() == int(round((SIM_EPOCH + 7.0) * 1e6))
            assert ambient_perf_counter_ns() == 7_000_000_000
            ambient_sleep(3.0)
            assert sim.scheduler.now == 10.0
        assert get_clock() is WALL_CLOCK

    def test_use_clock_restores_on_error(self):
        sim = SimClock()
        with pytest.raises(RuntimeError):
            with use_clock(sim):
                raise RuntimeError("boom")
        assert get_clock() is WALL_CLOCK

    def test_set_clock_returns_previous(self):
        sim = SimClock()
        previous = set_clock(sim)
        try:
            assert previous is WALL_CLOCK
            assert get_clock() is sim
        finally:
            set_clock(previous)
        assert get_clock() is WALL_CLOCK

    def test_ambient_functions_dispatch_at_call_time(self):
        # The functions are usable as default parameter values: binding
        # them early must not freeze the wall clock in.
        captured = ambient_sleep
        sim = SimClock()
        with use_clock(sim):
            captured(42.0)
        assert sim.scheduler.now == 42.0
