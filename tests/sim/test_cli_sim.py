"""The ``ycsbt sim`` sub-command."""

import json

from repro.core.cli import main


class TestSimCommand:
    def test_sweep_writes_artifacts_and_summarises(self, tmp_path, capsys):
        exit_code = main(
            [
                "sim",
                "--seeds", "3",
                "--start-seed", "1",
                "--out", str(tmp_path),
            ]
        )
        captured = capsys.readouterr()

        assert exit_code == 0  # txn binding never violated
        # Progressive per-seed lines on stderr, one per (binding, seed).
        assert captured.err.count("seed=") == 6
        # Final summary on stdout covers both bindings.
        assert "raw:" in captured.out and "txn:" in captured.out

        # Seeds 1 and 2 violate under the baseline schedule (deterministic).
        artifacts = sorted(tmp_path.glob("violation-*.json"))
        assert artifacts, "sweep surfaced no violation artifacts"
        payload = json.loads(artifacts[0].read_text())
        assert payload["kind"] == "ycsbt-sim-violation"
        assert payload["binding"] == "raw"
        assert payload["trace"]["events"]

    def test_single_binding_schedule_and_overrides(self, capsys):
        exit_code = main(
            [
                "sim",
                "--seeds", "1",
                "--db", "raw",
                "--schedule", "torn-heavy",
                "--no-trace",
                "-p", "operationcount=100",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert captured.err.count("seed=") == 1
        assert "schedule=torn-heavy" in captured.err
        assert "txn" not in captured.out.splitlines()[-1] or "raw:" in captured.out

    def test_rejects_bad_property(self):
        import pytest

        with pytest.raises(SystemExit):
            main(["sim", "--seeds", "1", "-p", "garbage"])

    def test_rejects_zero_seeds(self):
        import pytest

        with pytest.raises(SystemExit):
            main(["sim", "--seeds", "0"])
