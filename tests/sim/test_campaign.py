"""Seed-sweep campaigns: determinism regression and anomaly hunting.

The two headline properties of the simulation subsystem:

* **Determinism** — a run is a pure function of its seed: same seed, same
  bytes (report export, gamma, trace); different seed, different
  interleaving.
* **Anomaly hunting** — across a seed sweep the raw binding leaks money
  (gamma > 0 on some seeds, with a replayable trace artifact) while the
  transactional binding holds gamma == 0 on every seed.
"""

import json

from repro.sim.campaign import (
    FAULT_SCHEDULES,
    run_campaign,
    run_sim,
    write_violation_trace,
)


class TestDeterminism:
    def test_same_seed_is_byte_identical(self):
        first = run_sim("raw", seed=7)
        second = run_sim("raw", seed=7)
        assert first.report_jsonl == second.report_jsonl
        assert first.gamma == second.gamma
        assert first.counters == second.counters
        assert first.events_processed == second.events_processed
        assert first.trace.events == second.trace.events

    def test_txn_same_seed_is_byte_identical(self):
        first = run_sim("txn", seed=3)
        second = run_sim("txn", seed=3)
        assert first.report_jsonl == second.report_jsonl
        assert first.trace.events == second.trace.events

    def test_distinct_seeds_distinct_interleavings(self):
        first = run_sim("raw", seed=7)
        second = run_sim("raw", seed=8)
        assert first.trace.events != second.trace.events

    def test_schedules_change_the_run(self):
        baseline = run_sim("raw", seed=7, schedule="baseline")
        storm = run_sim("raw", seed=7, schedule="storm")
        assert baseline.trace.events != storm.trace.events


class TestCampaign:
    def test_twenty_seeds_raw_leaks_txn_never(self, tmp_path):
        """The acceptance sweep: >= 20 seeds, both bindings, baseline faults."""
        campaign = run_campaign(range(20), out_dir=tmp_path)

        raw_violations = [r for r in campaign.by_binding("raw") if r.violation]
        assert raw_violations, "no raw-binding violation in 20 seeds"

        for run in campaign.by_binding("txn"):
            assert run.gamma == 0.0, run.summary_line()
            assert run.passed, run.summary_line()

        # Every violation produced a replayable artifact.
        assert len(campaign.artifacts) == len(campaign.violations)
        for path in campaign.artifacts:
            payload = json.loads(path.read_text())
            assert payload["kind"] == "ycsbt-sim-violation"
            assert payload["gamma"] > 0.0 or not payload["validation_passed"]
            assert payload["trace"]["events"], "artifact carries no interleaving"
            assert "--start-seed" in payload["replay"]["command"]

    def test_violation_artifact_replays_exactly(self, tmp_path):
        campaign = run_campaign(range(20), bindings=("raw",), trace=True)
        violation = next(r for r in campaign.runs if r.violation)
        artifact = write_violation_trace(violation, tmp_path)
        payload = json.loads(artifact.read_text())

        replay = run_sim(
            payload["binding"], seed=payload["seed"], schedule=payload["schedule"]
        )
        assert replay.gamma == payload["gamma"]
        assert [e.to_dict() for e in replay.trace.events] == payload["trace"]["events"]

    def test_every_schedule_runs(self):
        for name in FAULT_SCHEDULES:
            result = run_sim("raw", seed=1, schedule=name, trace=False)
            assert result.operations == 400
            assert result.wall_time_s < 5.0
