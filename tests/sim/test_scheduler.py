"""Scheduler semantics: deterministic interleaving of cooperative tasks."""

import time

import pytest

from repro.sim.scheduler import Scheduler, SimClock, SimTaskFailed, VirtualResource


class TestScheduler:
    def test_single_task_runs_to_completion(self):
        scheduler = Scheduler()
        log = []

        def task():
            log.append(("start", scheduler.now))
            scheduler.sleep(5.0)
            log.append(("end", scheduler.now))
            return "done"

        results = scheduler.run([task])
        assert results == ["done"]
        assert log == [("start", 0.0), ("end", 5.0)]
        assert scheduler.now == 5.0

    def test_interleaving_follows_virtual_time(self):
        scheduler = Scheduler()
        log = []

        def make(name, delays):
            def task():
                for delay in delays:
                    scheduler.sleep(delay)
                    log.append((name, scheduler.now))

            return task

        # a wakes at 1, 3 (1+2); b wakes at 2, 4 (2+2).
        scheduler.run([make("a", [1.0, 2.0]), make("b", [2.0, 2.0])])
        assert log == [("a", 1.0), ("b", 2.0), ("a", 3.0), ("b", 4.0)]

    def test_ties_break_in_push_order(self):
        scheduler = Scheduler()
        log = []

        def make(name):
            def task():
                scheduler.sleep(1.0)  # identical wake time for all three
                log.append(name)

            return task

        scheduler.run([make("x"), make("y"), make("z")])
        assert log == ["x", "y", "z"]

    def test_identical_runs_produce_identical_histories(self):
        def run_once():
            scheduler = Scheduler()
            log = []

            def make(name, step):
                def task():
                    for _ in range(5):
                        scheduler.sleep(step)
                        log.append((name, round(scheduler.now, 9)))

                return task

            scheduler.run(
                [make("a", 0.3), make("b", 0.7), make("c", 0.3)],
                names=["a", "b", "c"],
            )
            return log, scheduler.events_processed

        assert run_once() == run_once()

    def test_task_failure_surfaces_after_all_complete(self):
        scheduler = Scheduler()
        log = []

        def bad():
            scheduler.sleep(1.0)
            raise ValueError("exploded")

        def good():
            scheduler.sleep(2.0)
            log.append("good finished")

        with pytest.raises(SimTaskFailed) as excinfo:
            scheduler.run([bad, good])
        assert isinstance(excinfo.value.__cause__, ValueError)
        assert log == ["good finished"]  # the healthy task still completed

    def test_driver_context_sleep_advances_directly(self):
        scheduler = Scheduler(start_time=10.0)
        scheduler.sleep(5.0)
        assert scheduler.now == 15.0

    def test_current_task_name(self):
        scheduler = Scheduler()
        seen = []

        def task():
            seen.append(scheduler.current_task_name)
            scheduler.sleep(1.0)
            seen.append(scheduler.current_task_name)

        assert scheduler.current_task_name is None
        scheduler.run([task], names=["worker-0"])
        assert seen == ["worker-0", "worker-0"]
        assert scheduler.current_task_name is None

    def test_thousands_of_virtual_seconds_cost_no_wall_time(self):
        scheduler = Scheduler()

        def task():
            for _ in range(100):
                scheduler.sleep(100.0)

        before = time.monotonic()
        scheduler.run([task])
        assert time.monotonic() - before < 1.0
        assert scheduler.now == 10_000.0


class TestVirtualResource:
    def test_fifo_queueing(self):
        clock = SimClock()
        scheduler = clock.scheduler
        resource = VirtualResource(clock)
        log = []

        def make(name):
            def task():
                resource.occupy(1.0)
                log.append((name, scheduler.now))

            return task

        scheduler.run([make("a"), make("b"), make("c")])
        # All request at t=0; the resource serialises them 1 s apart.
        assert log == [("a", 1.0), ("b", 2.0), ("c", 3.0)]

    def test_idle_resource_costs_only_the_occupancy(self):
        clock = SimClock()
        resource = VirtualResource(clock)
        clock.scheduler.now = 100.0  # resource idle since busy_until=0
        resource.occupy(2.0)
        assert clock.scheduler.now == 102.0

    def test_zero_cost_is_free(self):
        clock = SimClock()
        resource = VirtualResource(clock)
        resource.occupy(0.0)
        assert clock.scheduler.now == 0.0
