"""Loopback latency regression guard for the HTTP store stack.

http.client writes headers and body as separate sends.  Without
TCP_NODELAY on both ends, Nagle's algorithm holds the second send behind
the peer's delayed ACK, which costs ~40 ms *per request* over loopback —
three orders of magnitude over the real round-trip, and enough to erase
any visible shard-scaling effect.  This test fails (by a wide margin) if
either the eager-connect/setsockopt in the client pool or
``disable_nagle_algorithm`` on the server handler regresses.
"""

import socket
import time

from repro.http import HttpKVStore, KVStoreHTTPServer
from repro.kvstore import InMemoryKVStore


def test_sequential_requests_are_not_nagle_stalled():
    requests = 50
    with KVStoreHTTPServer(InMemoryKVStore()) as server:
        client = HttpKVStore(server.address)
        try:
            client.put("warm", {"f": "v"})  # connection + handler warm-up
            started = time.perf_counter()
            for i in range(requests):
                client.put(f"k{i}", {"f": str(i)})
                client.get(f"k{i}")
            elapsed = time.perf_counter() - started
        finally:
            client.close()
    per_request_ms = elapsed / (2 * requests) * 1000.0
    # Healthy loopback is ~0.2-0.3 ms/request; a Nagle/delayed-ACK stall
    # is ~40 ms.  10 ms splits those regimes with slack for slow CI.
    assert per_request_ms < 10.0, (
        f"{per_request_ms:.2f} ms/request over loopback — Nagle stall?"
    )


def test_pooled_connections_have_nodelay_set():
    with KVStoreHTTPServer(InMemoryKVStore()) as server:
        client = HttpKVStore(server.address)
        try:
            connection, _pooled = client._pool.acquire()
            try:
                assert connection.sock is not None  # connected eagerly
                assert connection.sock.getsockopt(
                    socket.IPPROTO_TCP, socket.TCP_NODELAY
                )
            finally:
                client._pool.release(connection)
        finally:
            client.close()
