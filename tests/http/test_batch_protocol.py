"""Batch protocol equivalence: one POST /batch == N single-op requests.

The batch endpoint and the single-op REST routes are two encodings of
the same store contract, so a batched op sequence must produce results
**byte-for-byte identical** (as canonical JSON) to executing the same
ops one by one — across unicode keys, empty field maps, mixed op kinds,
and partial failures.  Seeded random sequences keep the space honest
without flaky tests.

Also pins the point of batching: loading records through the
write-behind wrapper must cost at least 10x fewer HTTP round trips than
single-op PUTs (the ISSUE's acceptance bar), measured with the server's
own request counters.
"""

import json
import random

import pytest

from repro.http import HttpKVStore, KVStoreHTTPServer
from repro.http.batch import (
    execute_ops,
    insert_ops,
    op_cas,
    op_delete,
    op_delete_if,
    op_get,
    op_insert,
    op_put,
    op_scan,
    put_ops,
)
from repro.http.batching import BatchingKVStore
from repro.kvstore import InMemoryKVStore

# Deliberately hostile keys: multi-byte unicode, URL metacharacters,
# whitespace, and a key that is pure percent-encoding bait.
KEYS = [
    "user1",
    "user/2/with/slashes",
    "ключ-три",
    "鍵四",
    "key five with spaces",
    "percent%2Fencoded%20bait",
    "emoji-🔑",
]

FIELD_POOL = [
    {},
    {"f": ""},
    {"field0": "value0", "field1": "value1"},
    {"поле": "значение", "λ": "μ"},
    {"f": "x" * 200},
]


def _random_ops(rng: random.Random, count: int) -> list[dict]:
    """A seeded op sequence with every kind and deliberate failures."""
    ops: list[dict] = []
    for _ in range(count):
        key = rng.choice(KEYS)
        fields = rng.choice(FIELD_POOL)
        kind = rng.randrange(7)
        if kind == 0:
            ops.append(op_get(key))
        elif kind == 1:
            ops.append(op_put(key, fields))
        elif kind == 2:
            ops.append(op_insert(key, fields))  # 412 when the key exists
        elif kind == 3:
            # Version 1 is sometimes current, mostly stale -> mixed 200/412.
            ops.append(op_cas(key, fields, rng.choice([1, 2, 999])))
        elif kind == 4:
            ops.append(op_delete(key))  # 404 when missing
        elif kind == 5:
            ops.append(op_delete_if(key, rng.choice([1, 999])))
        else:
            ops.append(op_scan(rng.choice(KEYS), rng.randrange(0, 5)))
    return ops


def _canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True, ensure_ascii=False)


def _state_dump(store) -> str:
    return _canonical(
        [[key, meta.value, meta.version] for key, meta in
         ((k, store.get_with_meta(k)) for k in store.keys())]
    )


@pytest.fixture()
def served_store():
    backing = InMemoryKVStore()
    server = KVStoreHTTPServer(backing).start()
    client = HttpKVStore(server.address)
    yield backing, server, client
    client.close()
    server.stop()


class TestBatchEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_batched_results_match_sequential_execution(self, served_store, seed):
        """POST /batch over the wire == the same ops on a local mirror."""
        backing, _server, client = served_store
        mirror = InMemoryKVStore()
        rng = random.Random(seed)
        for _round in range(4):
            ops = _random_ops(rng, 25)
            over_the_wire = client.execute_batch(ops)
            locally = execute_ops(mirror, ops)
            assert _canonical(over_the_wire) == _canonical(locally)
        assert _state_dump(backing) == _state_dump(mirror)

    def test_unicode_keys_survive_the_round_trip(self, served_store):
        backing, _server, client = served_store
        records = [(key, {"who": key}) for key in KEYS]
        results = client.execute_batch(insert_ops(records))
        assert [r["status"] for r in results] == [200] * len(KEYS)
        for key in KEYS:
            assert client.get(key) == {"who": key}
            assert backing.get(key) == {"who": key}

    def test_empty_fields_and_empty_values(self, served_store):
        _backing, _server, client = served_store
        results = client.execute_batch(
            [op_put("empty", {}), op_put("blank", {"f": ""}), op_get("empty")]
        )
        assert [r["status"] for r in results] == [200, 200, 200]
        assert results[2]["fields"] == {}
        assert client.get("blank") == {"f": ""}

    def test_partial_failures_do_not_poison_the_batch(self, served_store):
        """Each op fails or succeeds alone; later ops still execute."""
        _backing, _server, client = served_store
        results = client.execute_batch(
            [
                op_insert("k", {"n": "1"}),
                op_insert("k", {"n": "2"}),   # duplicate -> 412
                op_cas("k", {"n": "3"}, 999),  # stale version -> 412
                op_delete("missing"),          # -> 404
                op_get("k"),                   # still the first insert
            ]
        )
        assert [r["status"] for r in results] == [200, 412, 412, 404, 200]
        assert results[4]["fields"] == {"n": "1"}

    def test_malformed_op_is_a_per_op_400(self, served_store):
        _backing, _server, client = served_store
        results = client.execute_batch(
            [{"op": "nonsense", "key": "k"}, op_put("k", {"f": "v"})]
        )
        assert results[0]["status"] == 400
        assert results[1]["status"] == 200


class TestRoundTripSavings:
    def test_batched_load_is_10x_fewer_round_trips(self):
        """The ISSUE's bar: batched load >= 10x fewer HTTP requests."""
        records = [(f"user{i:04d}", {"field0": str(i)}) for i in range(300)]

        single_server = KVStoreHTTPServer(InMemoryKVStore()).start()
        try:
            client = HttpKVStore(single_server.address)
            for key, fields in records:
                client.put(key, fields)
            client.close()
            single_requests = single_server.request_count
        finally:
            single_server.stop()

        batch_server = KVStoreHTTPServer(InMemoryKVStore()).start()
        try:
            batching = BatchingKVStore(
                HttpKVStore(batch_server.address), batch_size=50
            )
            batching.put_batch(records)
            batching.close()
            batch_requests = batch_server.request_count
            batch_counts = batch_server.request_counts
        finally:
            batch_server.stop()

        assert single_requests == 300
        assert batch_counts.get("kv", 0) == 0  # everything rode /batch
        assert batch_requests * 10 <= single_requests, (
            f"batched load used {batch_requests} round trips vs "
            f"{single_requests} single-op requests"
        )

    def test_put_batch_is_one_request(self):
        server = KVStoreHTTPServer(InMemoryKVStore()).start()
        try:
            client = HttpKVStore(server.address)
            versions = client.put_batch(
                [(f"k{i}", {"n": str(i)}) for i in range(40)]
            )
            client.close()
            assert len(versions) == 40
            assert server.request_counts == {"batch": 1}
        finally:
            server.stop()

    def test_put_ops_and_insert_ops_shapes(self):
        records = [("a", {"f": "1"})]
        assert put_ops(records)[0]["op"] == "put"
        assert insert_ops(records)[0]["op"] == "insert"
