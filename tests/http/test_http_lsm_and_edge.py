"""HTTP stack over the durable store, plus transport edge cases."""

import threading

import pytest

from repro.http import HttpKVStore, KVStoreHTTPServer
from repro.kvstore.lsm import LSMKVStore


class TestHttpOverLsm:
    @pytest.fixture
    def stack(self, tmp_path):
        store = LSMKVStore(tmp_path)
        with KVStoreHTTPServer(store) as server:
            client = HttpKVStore(server.address)
            yield store, client, tmp_path
            client.close()
        store.close()

    def test_roundtrip_through_both_layers(self, stack):
        store, client, _ = stack
        client.put("k", {"f": "v"})
        store.flush()
        assert client.get("k") == {"f": "v"}

    def test_data_survives_server_restart(self, stack):
        store, client, tmp_path = stack
        client.put("durable", {"f": "v"})
        # The fixture closes server and store; reopen the directory.
        store.flush()
        reopened = LSMKVStore(tmp_path)
        assert reopened.get("durable") == {"f": "v"}
        reopened.close()

    def test_conditional_ops_through_http(self, stack):
        _, client, _ = stack
        assert client.put_if_version("k", {"f": "a"}, None) is not None
        version = client.get_with_meta("k").version
        assert client.put_if_version("k", {"f": "b"}, version) is not None
        assert client.put_if_version("k", {"f": "c"}, version) is None


class TestConnectionBehaviour:
    @pytest.fixture
    def stack(self):
        from repro.kvstore import InMemoryKVStore

        store = InMemoryKVStore()
        with KVStoreHTTPServer(store) as server:
            client = HttpKVStore(server.address)
            yield server, client
            client.close()

    def test_connection_reused_within_thread(self, stack):
        _, client = stack
        client.put("k", {"f": "v"})
        first = client._connection()
        client.get("k")
        assert client._connection() is first

    def test_threads_get_separate_connections(self, stack):
        _, client = stack
        client.put("k", {})
        connections = {}

        def worker(name):
            client.get("k")
            connections[name] = client._connection()

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(conn) for conn in connections.values()}) == 3

    def test_stale_connection_transparently_retried(self, stack):
        _, client = stack
        client.put("k", {"f": "v"})
        # Kill the cached connection behind the client's back; the next
        # request must re-establish and succeed.
        client._connection().close()
        assert client.get("k") == {"f": "v"}

    def test_empty_key_round_trip(self, stack):
        _, client = stack
        client.put("", {"f": "root"})
        assert client.get("") == {"f": "root"}
