"""HTTP stack over the durable store, plus transport edge cases."""

import threading

import pytest

from repro.http import HttpKVStore, KVStoreHTTPServer
from repro.kvstore.lsm import LSMKVStore


class TestHttpOverLsm:
    @pytest.fixture
    def stack(self, tmp_path):
        store = LSMKVStore(tmp_path)
        with KVStoreHTTPServer(store) as server:
            client = HttpKVStore(server.address)
            yield store, client, tmp_path
            client.close()
        store.close()

    def test_roundtrip_through_both_layers(self, stack):
        store, client, _ = stack
        client.put("k", {"f": "v"})
        store.flush()
        assert client.get("k") == {"f": "v"}

    def test_data_survives_server_restart(self, stack):
        store, client, tmp_path = stack
        client.put("durable", {"f": "v"})
        # The fixture closes server and store; reopen the directory.
        store.flush()
        reopened = LSMKVStore(tmp_path)
        assert reopened.get("durable") == {"f": "v"}
        reopened.close()

    def test_conditional_ops_through_http(self, stack):
        _, client, _ = stack
        assert client.put_if_version("k", {"f": "a"}, None) is not None
        version = client.get_with_meta("k").version
        assert client.put_if_version("k", {"f": "b"}, version) is not None
        assert client.put_if_version("k", {"f": "c"}, version) is None


class TestConnectionBehaviour:
    @pytest.fixture
    def stack(self):
        from repro.kvstore import InMemoryKVStore

        store = InMemoryKVStore()
        with KVStoreHTTPServer(store) as server:
            client = HttpKVStore(server.address)
            yield server, client
            client.close()

    def test_connection_returned_to_pool_and_reused(self, stack):
        _, client = stack
        client.put("k", {"f": "v"})
        assert client._pool.idle_count() == 1
        pooled = client._pool._idle[0]
        client.get("k")
        # The same keep-alive connection was borrowed and returned.
        assert client._pool.idle_count() == 1
        assert client._pool._idle[0] is pooled

    def test_pool_bounds_idle_connections(self, stack):
        server, _ = stack
        small = HttpKVStore(server.address, pool_size=2)
        try:
            small.put("k", {})

            def worker():
                for _ in range(5):
                    small.get("k")

            threads = [threading.Thread(target=worker) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            # However many connections were open concurrently, at most
            # pool_size survive as idle keep-alives.
            assert small._pool.idle_count() <= 2
        finally:
            small.close()

    def test_stale_connection_transparently_retried(self, stack):
        _, client = stack
        client.put("k", {"f": "v"})
        # Kill the pooled connection's socket behind the client's back;
        # the next request must re-establish and succeed.
        client._pool._idle[0].close()
        assert client.get("k") == {"f": "v"}

    def test_empty_key_round_trip(self, stack):
        _, client = stack
        client.put("", {"f": "root"})
        assert client.get("") == {"f": "root"}

    def test_health_endpoint(self, stack):
        _, client = stack
        assert client.health() is True

    def test_health_false_when_server_gone(self):
        from repro.kvstore import InMemoryKVStore

        server = KVStoreHTTPServer(InMemoryKVStore())
        server.start()
        client = HttpKVStore(server.address)
        server.stop()
        try:
            assert client.health() is False
        finally:
            client.close()


class TestServerBounce:
    """Regression: a bounced server must cost one stale retry, not errors.

    After a restart every idle keep-alive in the pool points at a closed
    socket.  The first request through the pool must drop the stale set,
    replay on a fresh connection, and succeed — transparently.
    """

    def test_request_survives_server_bounce(self):
        from repro.kvstore import InMemoryKVStore

        store = InMemoryKVStore()
        first = KVStoreHTTPServer(store)
        first.start()
        host, port = first.address
        client = HttpKVStore((host, port))
        try:
            client.put("k", {"f": "v"})
            assert client._pool.idle_count() == 1
            first.stop()
            # Same port, same store: the server came back after a crash.
            second = KVStoreHTTPServer(store, host=host, port=port)
            second.start()
            try:
                assert client.get("k") == {"f": "v"}
                assert client.stale_retries == 1
                assert client.counters() == {"HTTP-STALE-RETRIES": 1}
            finally:
                second.stop()
        finally:
            client.close()

    def test_bounce_clears_every_idle_connection(self):
        from repro.kvstore import InMemoryKVStore

        store = InMemoryKVStore()
        first = KVStoreHTTPServer(store)
        first.start()
        host, port = first.address
        client = HttpKVStore((host, port))
        try:
            client.put("k", {"f": "v"})

            def hammer():
                for _ in range(3):
                    client.get("k")

            threads = [threading.Thread(target=hammer) for _ in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert client._pool.idle_count() >= 1
            first.stop()
            second = KVStoreHTTPServer(store, host=host, port=port)
            second.start()
            try:
                # One request pays one stale retry and flushes the whole
                # pool; the follow-ups ride fresh keep-alives cleanly.
                for _ in range(3):
                    assert client.get("k") == {"f": "v"}
                assert client.stale_retries == 1
            finally:
                second.stop()
        finally:
            client.close()

    def test_fresh_connection_failure_still_raises(self):
        from repro.kvstore import InMemoryKVStore
        from repro.kvstore.base import StoreUnavailable

        server = KVStoreHTTPServer(InMemoryKVStore())
        server.start()
        client = HttpKVStore(server.address)
        client.put("k", {"f": "v"})
        server.stop()  # nobody listening: the retry has nothing to reach
        try:
            with pytest.raises(StoreUnavailable):
                client.get("k")
            assert client.stale_retries == 1  # it did try the fresh socket
        finally:
            client.close()
