"""HTTP server + client tests (real sockets on loopback)."""

import threading

import pytest

from repro.http import HttpKVStore, KVStoreHTTPServer
from repro.kvstore import InMemoryKVStore, StoreUnavailable


@pytest.fixture
def stack():
    store = InMemoryKVStore()
    with KVStoreHTTPServer(store) as server:
        client = HttpKVStore(server.address)
        yield store, client
        client.close()


class TestRoundTrip:
    def test_put_get(self, stack):
        _, client = stack
        assert client.put("k", {"f": "v"}) == 1
        versioned = client.get_with_meta("k")
        assert versioned.value == {"f": "v"}
        assert versioned.version == 1

    def test_get_missing(self, stack):
        _, client = stack
        assert client.get("missing") is None

    def test_unicode_and_special_keys(self, stack):
        _, client = stack
        for key in ("user/with/slashes", "key with spaces", "clé-unicode-日本"):
            client.put(key, {"f": key})
            assert client.get(key) == {"f": key}

    def test_delete(self, stack):
        _, client = stack
        client.put("k", {})
        assert client.delete("k") is True
        assert client.delete("k") is False

    def test_server_sees_client_writes(self, stack):
        store, client = stack
        client.put("k", {"f": "v"})
        assert store.get("k") == {"f": "v"}


class TestConditionalOperations:
    def test_insert_if_absent(self, stack):
        _, client = stack
        assert client.put_if_version("k", {"f": "1"}, None) == 1
        assert client.put_if_version("k", {"f": "2"}, None) is None

    def test_etag_update(self, stack):
        _, client = stack
        client.put("k", {"f": "1"})
        assert client.put_if_version("k", {"f": "2"}, 1) == 2
        assert client.put_if_version("k", {"f": "3"}, 1) is None

    def test_conditional_delete(self, stack):
        _, client = stack
        client.put("k", {})
        assert client.delete_if_version("k", 9) is None
        assert client.delete_if_version("k", 1) is True
        assert client.delete_if_version("k", 1) is False


class TestScanAndStats:
    def test_scan(self, stack):
        _, client = stack
        for key in ("b", "a", "c"):
            client.put(key, {"k": key})
        assert [key for key, _ in client.scan("a", 2)] == ["a", "b"]

    def test_scan_empty(self, stack):
        _, client = stack
        assert client.scan("x", 10) == []
        assert client.scan("x", 0) == []

    def test_size(self, stack):
        _, client = stack
        client.put("a", {})
        client.put("b", {})
        assert client.size() == 2

    def test_keys_pages_through(self, stack):
        _, client = stack
        expected = sorted(f"key{i:04d}" for i in range(50))
        for key in expected:
            client.put(key, {})
        assert list(client.keys()) == expected


class TestRobustness:
    def test_unknown_path_404(self, stack):
        _, client = stack
        status, _, _ = client._request("GET", "/bogus")
        assert status == 404

    def test_bad_scan_count_400(self, stack):
        _, client = stack
        status, _, _ = client._request("GET", "/scan?start=a&count=banana")
        assert status == 400

    def test_bad_body_400(self, stack):
        _, client = stack
        status, _, _ = client._request("PUT", "/kv/k", body=None)
        assert status == 400

    def test_bad_if_match_400(self, stack):
        _, client = stack
        status, _, _ = client._request(
            "PUT", "/kv/k", body={"f": "v"}, headers={"If-Match": "banana"}
        )
        assert status == 400

    def test_unreachable_server_raises(self):
        client = HttpKVStore(("127.0.0.1", 1), timeout_s=0.2)
        with pytest.raises(StoreUnavailable):
            client.get("k")

    def test_concurrent_clients(self, stack):
        _, client = stack

        def worker(prefix):
            for i in range(30):
                client.put(f"{prefix}-{i}", {"v": str(i)})
                assert client.get(f"{prefix}-{i}") == {"v": str(i)}

        threads = [threading.Thread(target=worker, args=(p,)) for p in "abcd"]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert client.size() == 120

    def test_transactions_over_http(self, stack):
        from repro.txn import ClientTransactionManager

        _, client = stack
        manager = ClientTransactionManager(client)
        with manager.transaction() as tx:
            tx.write("alice", {"balance": "100"})
            tx.write("bob", {"balance": "50"})
        with manager.transaction() as tx:
            alice = int(tx.read("alice")["balance"])
            bob = int(tx.read("bob")["balance"])
            tx.write("alice", {"balance": str(alice - 10)})
            tx.write("bob", {"balance": str(bob + 10)})
        with manager.transaction() as tx:
            assert tx.read("alice") == {"balance": "90"}
            assert tx.read("bob") == {"balance": "60"}
