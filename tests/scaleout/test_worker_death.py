"""Worker-death tolerance: a killed worker must not hang the run.

One of the workers is armed (via ``crash.worker``) to ``os._exit`` mid
run phase — no result message, no cleanup, exactly like a kill -9.  The
engine has to notice, release the survivors' barriers through the
coordinator, and either complete degraded (merged report from survivors,
lost shard flagged) or fail fast, per policy.
"""

import pytest

from repro.harness import cew_properties
from repro.kvstore import InMemoryKVStore
from repro.scaleout import ScaleoutSpec, WorkerDeathError, run_scaleout
from repro.scaleout.worker import WORKER_CRASH_EXIT_CODE

PROCESSES = 2
RECORDS = 40
OPS_PER_WORKER = 60


def _spec(**overrides) -> ScaleoutSpec:
    properties = dict(
        cew_properties(
            recordcount=RECORDS,
            operationcount=OPS_PER_WORKER,
            totalcash=RECORDS * 100,
            readproportion=0.5,
            readmodifywriteproportion=0.5,
            threadcount=2,
            seed=13,
        ).as_dict()
    ) | {
        "workload": "closed_economy",
        # Kill worker-1 early in its run phase.  Hits accumulate over the
        # worker's DB writes: the load phase fires 2 per inserted record
        # (insert + the YCSB+T per-op commit) over its 20-record slice,
        # so hit 50 lands a handful of operations into the run phase.
        "crash.worker": "worker-1",
        "crash.worker_hits": "50",
    }
    spec_kwargs = {
        "processes": PROCESSES,
        "db": "raw_http",
        "properties": properties,
        "phases": ("load", "run"),
        "timeout_s": 60.0,
    } | overrides
    return ScaleoutSpec(**spec_kwargs)


@pytest.fixture(scope="module")
def degraded_result():
    """One shared degraded run: spawning processes is the expensive part."""
    return run_scaleout(_spec(), store=InMemoryKVStore())


class TestDegradedMode:
    def test_run_terminates_and_is_degraded(self, degraded_result):
        assert degraded_result.degraded is True
        assert degraded_result.dead_workers == ["worker-1"]

    def test_dead_worker_error_carries_crash_exit_code(self, degraded_result):
        [error] = [
            e for e in degraded_result.worker_errors if e.startswith("worker-1:")
        ]
        assert f"exit code {WORKER_CRASH_EXIT_CODE}" in error

    def test_lost_shard_is_flagged(self, degraded_result):
        [shard] = degraded_result.lost_shards
        assert shard["worker"] == "worker-1"
        # worker-1 registered second, so it owned the upper half.
        assert shard["insertcount"] == RECORDS // PROCESSES

    def test_survivor_results_are_merged(self, degraded_result):
        # Both workers deliver their load result; only the survivor
        # delivers a run result.
        assert degraded_result.load is not None
        assert degraded_result.load.operations == RECORDS
        assert degraded_result.run is not None
        assert len(degraded_result.per_worker["run"]) == PROCESSES - 1

    def test_coordinator_knows_the_dead(self, degraded_result):
        assert degraded_result.coordinator_summary["dead_clients"] == ["worker-1"]

    def test_validation_still_runs(self, degraded_result):
        # Degraded mode still validates the shared store; on the raw
        # binding the verdict quantifies the damage rather than being
        # skipped.  Passed-or-not depends on where the crash landed, so
        # only its presence is asserted.
        assert degraded_result.validation is not None


class TestFailFast:
    def test_fail_fast_raises_worker_death_error(self):
        with pytest.raises(WorkerDeathError) as excinfo:
            run_scaleout(
                _spec(on_worker_death="fail_fast"), store=InMemoryKVStore()
            )
        assert excinfo.value.dead_workers == ["worker-1"]

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="on_worker_death"):
            run_scaleout(_spec(on_worker_death="panic"), store=InMemoryKVStore())
