"""The paper's core claim, across real OS processes.

YCSB+T exists to show that the closed-economy anomaly score separates a
raw (non-transactional) binding from a transactional one under real
concurrency.  The in-process stress tests show it across threads; this
one shows it across *processes* — N spawned workers hammer read-modify-
write operations on a tiny shared keyspace through one HTTP front end:

* raw binding: unprotected read-then-put loses updates, money leaks,
  gamma > 0;
* transactional binding: optimistic transactions with CAS commit keep
  the economy closed, gamma == 0, exactly.
"""

import pytest

from repro.harness import cew_properties
from repro.scaleout import ScaleoutSpec, run_scaleout

PROCESSES = 2
THREADS = 3
RECORDS = 8  # tiny keyspace -> near-certain cross-process collisions
OPS_PER_WORKER = 200


def _gamma(db: str, seed: int) -> float:
    properties = dict(
        cew_properties(
            recordcount=RECORDS,
            operationcount=OPS_PER_WORKER,
            totalcash=RECORDS * 1000,
            readproportion=0.0,
            readmodifywriteproportion=1.0,
            requestdistribution="uniform",
            threadcount=THREADS,
            seed=seed,
        ).as_dict()
    ) | {"workload": "closed_economy"}
    result = run_scaleout(
        ScaleoutSpec(
            processes=PROCESSES,
            db=db,
            properties=properties,
            phases=("load", "run"),
            timeout_s=120.0,
        )
    )
    assert result.worker_errors == []
    assert result.run.operations == PROCESSES * OPS_PER_WORKER
    assert result.validation is not None
    return result.validation.anomaly_score


@pytest.mark.slow
class TestCrossProcessConsistency:
    def test_raw_binding_leaks_money(self):
        """Lost updates across processes must show up as gamma > 0."""
        # The race is real nondeterminism: allow a couple of seeds before
        # declaring the detector broken.
        gammas = []
        for seed in (11, 12, 13):
            gammas.append(_gamma("raw_http", seed))
            if gammas[-1] > 0:
                break
        assert max(gammas) > 0, (
            f"no anomaly detected across seeds (gammas={gammas}); either the "
            "store became accidentally serialisable or validation is broken"
        )

    def test_txn_binding_keeps_the_economy_closed(self):
        """The transactional binding must score exactly zero."""
        assert _gamma("txn_http", 21) == 0.0
