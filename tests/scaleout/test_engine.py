"""Fast end-to-end check of the multi-process scale-out engine.

Two real spawned worker processes load disjoint keyspace slices into one
embedded HTTP store, run a read-heavy CEW phase, and the parent merges
their results and validates the shared store globally.  Marked at module
level so the whole file can be excluded from ultra-fast loops, but it is
deliberately small enough (tens of operations) for the tier-1 suite.
"""

import pytest

from repro.harness import cew_properties
from repro.kvstore import InMemoryKVStore
from repro.scaleout import ScaleoutSpec, run_scaleout

PROCESSES = 2
RECORDS = 40
OPS_PER_WORKER = 50


def _spec(**extra) -> ScaleoutSpec:
    properties = dict(
        cew_properties(
            recordcount=RECORDS,
            operationcount=OPS_PER_WORKER,
            totalcash=RECORDS * 100,
            readproportion=1.0,
            readmodifywriteproportion=0.0,
            threadcount=2,
            seed=7,
        ).as_dict()
    ) | {
        "workload": "closed_economy",
        "batchsize": "10",
        "http.batchsize": "10",
    } | extra
    return ScaleoutSpec(
        processes=PROCESSES,
        db="raw_http",
        properties=properties,
        phases=("load", "run"),
        timeout_s=60.0,
    )


@pytest.fixture(scope="module")
def result():
    """One shared run: spawning processes is the expensive part."""
    return run_scaleout(_spec(), store=InMemoryKVStore())


class TestScaleoutEngine:
    def test_no_worker_errors(self, result):
        assert result.worker_errors == []

    def test_load_is_sharded_exactly_once(self, result):
        # Every record loaded by exactly one worker: merged load ops ==
        # the global record count, not processes * recordcount.
        assert result.load.operations == RECORDS
        assert result.load.failed_operations == 0

    def test_run_sums_per_worker_budgets(self, result):
        assert result.run.operations == PROCESSES * OPS_PER_WORKER
        assert result.run.thread_count == PROCESSES * 2

    def test_per_worker_results_are_kept(self, result):
        assert len(result.per_worker["load"]) == PROCESSES
        assert len(result.per_worker["run"]) == PROCESSES
        assert (sum(r.operations for r in result.per_worker["run"])
                == result.run.operations)

    def test_global_validation_passes_for_read_only_run(self, result):
        assert result.validation is not None
        assert result.validation.passed is True
        assert result.anomaly_score == 0.0

    def test_coordinator_saw_every_report(self, result):
        summary = result.coordinator_summary
        assert summary["reports"] == PROCESSES * 2  # one per worker per phase
        assert summary["total_operations"] == (
            result.load.operations + result.run.operations
        )

    def test_measurements_cover_the_mix(self, result):
        operations = set(result.run.measurements.operations())
        assert "READ" in operations


class TestSpecValidation:
    def test_rejects_zero_processes(self):
        with pytest.raises(ValueError, match="at least one"):
            run_scaleout(ScaleoutSpec(processes=0))

    def test_rejects_unknown_phase(self):
        with pytest.raises(ValueError, match="unknown phases"):
            run_scaleout(ScaleoutSpec(processes=1, phases=("load", "verify")))

    def test_rejects_indivisible_totalcash(self):
        spec = ScaleoutSpec(
            processes=2,
            properties={"recordcount": "40", "totalcash": "4001"},
        )
        with pytest.raises(ValueError, match="divisible"):
            run_scaleout(spec)
