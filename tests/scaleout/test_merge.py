"""Merged reports must equal the report of the combined run.

The scale-out engine's whole credibility rests on one claim: merging K
per-worker results is *lossless* — the merged HDR histograms, counters
and throughput series are exactly what one process measuring all the
samples would have produced.  These tests pin that claim for every
measurement type, plus the serialisation the results ride across the
process boundary on.
"""

import random

import pytest

from repro.core.client import BenchmarkResult
from repro.core.workload import ValidationResult
from repro.measurements.registry import Measurements
from repro.measurements.timeseries import ThroughputTimeSeries
from repro.scaleout import deserialize_result, merge_results, serialize_result

K = 4
SAMPLES_PER_WORKER = 500


def _seeded_samples(worker: int) -> list[int]:
    """A long-tailed latency series, microseconds, distinct per worker."""
    rng = random.Random(1000 + worker)
    return [int(rng.lognormvariate(7.0 + 0.2 * worker, 0.8)) + 1
            for _ in range(SAMPLES_PER_WORKER)]


def _fill(measurements: Measurements, samples: list[int], worker: int) -> None:
    for latency in samples:
        measurements.measure("READ", latency)
        if latency % 3 == 0:
            measurements.measure("UPDATE", latency // 2 + 1)
    measurements.report_status("READ", "OK")
    measurements.increment("retries", worker + 1)


def _merged_and_combined(measurement_type: str) -> tuple[Measurements, Measurements]:
    """Merge K per-worker registries; also build the one-process registry."""
    per_worker = []
    combined = Measurements(measurement_type=measurement_type)
    for worker in range(K):
        own = Measurements(measurement_type=measurement_type)
        samples = _seeded_samples(worker)
        _fill(own, samples, worker)
        _fill(combined, samples, worker)
        per_worker.append(own)
    # Merge through the wire format, exactly as the engine does.
    merged = Measurements.from_dict(per_worker[0].to_dict())
    for other in per_worker[1:]:
        merged.merge_from(Measurements.from_dict(other.to_dict()))
    return merged, combined


@pytest.mark.parametrize("measurement_type", ["hdrhistogram", "histogram", "raw"])
def test_merge_is_lossless_for_every_measurement_type(measurement_type):
    """Merged summaries == the combined run's summaries, field for field."""
    merged, combined = _merged_and_combined(measurement_type)
    assert merged.operations() == combined.operations()
    assert merged.counters() == combined.counters()
    for operation in combined.operations():
        got = merged.summary_for(operation)
        want = combined.summary_for(operation)
        assert got.count == want.count
        assert got.min_us == want.min_us
        assert got.max_us == want.max_us
        assert got.average_us == pytest.approx(want.average_us, rel=1e-9)
        # Bucketed sketches quantise identically on both paths, so even
        # the percentiles must match exactly, not approximately.
        assert got.percentile_95_us == want.percentile_95_us
        assert got.percentile_99_us == want.percentile_99_us
        assert got.return_codes == want.return_codes


def test_merged_hdr_percentiles_within_1pct_of_exact():
    """<1% error vs the exact percentiles of the pooled raw samples."""
    merged, _combined = _merged_and_combined("hdrhistogram")
    exact = Measurements(measurement_type="raw")
    for worker in range(K):
        _fill(exact, _seeded_samples(worker), worker)
    for operation in exact.operations():
        got = merged.summary_for(operation)
        want = exact.summary_for(operation)
        assert got.percentile_95_us == pytest.approx(want.percentile_95_us, rel=0.01)
        assert got.percentile_99_us == pytest.approx(want.percentile_99_us, rel=0.01)
        assert got.average_us == pytest.approx(want.average_us, rel=0.01)


def test_measurements_serialisation_round_trips():
    for measurement_type in ("hdrhistogram", "histogram", "raw"):
        original = Measurements(measurement_type=measurement_type)
        _fill(original, _seeded_samples(0), 0)
        clone = Measurements.from_dict(original.to_dict())
        assert clone.measurement_type == original.measurement_type
        assert clone.counters() == original.counters()
        for operation in original.operations():
            assert clone.summary_for(operation) == original.summary_for(operation)


def _worker_result(worker: int, run_time_ms: float) -> BenchmarkResult:
    measurements = Measurements()
    _fill(measurements, _seeded_samples(worker), worker)
    series = ThroughputTimeSeries.from_window_counts(1.0, [10 + worker, 20, 5])
    return BenchmarkResult(
        phase="run",
        operations=100 + worker,
        failed_operations=worker,
        run_time_ms=run_time_ms,
        measurements=measurements,
        validation=ValidationResult(passed=True, fields=[("COUNTED", 1)], anomaly_score=0.0),
        thread_count=2,
        errors=[f"oops-{worker}"] if worker == 2 else [],
        throughput_series=series,
    )


def test_result_serialisation_round_trips():
    original = _worker_result(1, 1234.5)
    clone = deserialize_result(serialize_result(original))
    assert clone.phase == original.phase
    assert clone.operations == original.operations
    assert clone.failed_operations == original.failed_operations
    assert clone.run_time_ms == original.run_time_ms
    assert clone.thread_count == original.thread_count
    assert clone.errors == original.errors
    assert clone.validation.passed is True
    assert clone.validation.anomaly_score == 0.0
    assert clone.throughput_series.window_counts() == [10 + 1, 20, 5]
    for operation in original.measurements.operations():
        assert (clone.measurements.summary_for(operation)
                == original.measurements.summary_for(operation))


def test_merge_results_arithmetic():
    results = [_worker_result(worker, 1000.0 + 100 * worker) for worker in range(K)]
    merged = merge_results(results)
    assert merged.phase == "run"
    assert merged.operations == sum(100 + worker for worker in range(K))
    assert merged.failed_operations == sum(range(K))
    # Workers run concurrently from a barrier: wall time is the max.
    assert merged.run_time_ms == 1000.0 + 100 * (K - 1)
    assert merged.thread_count == 2 * K
    assert merged.errors == ["worker 2: oops-2"]
    # Per-worker validations race mid-run; the merge must drop them and
    # leave global validation to the parent.
    assert merged.validation is None
    assert merged.throughput_series.window_counts() == [
        sum(10 + worker for worker in range(K)), 20 * K, 5 * K]
    combined = Measurements()
    for worker in range(K):
        _fill(combined, _seeded_samples(worker), worker)
    for operation in combined.operations():
        assert (merged.measurements.summary_for(operation)
                == combined.summary_for(operation))


def test_merge_results_rejects_empty_and_mixed_phases():
    with pytest.raises(ValueError):
        merge_results([])
    load = _worker_result(0, 10.0)
    load.phase = "load"
    with pytest.raises(ValueError):
        merge_results([load, _worker_result(1, 10.0)])
