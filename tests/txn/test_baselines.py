"""Percolator-style and ReTSO-style baseline coordinators."""

import threading

import pytest

from repro.kvstore import InMemoryKVStore
from repro.txn import (
    PercolatorLikeManager,
    RetsoLikeManager,
    TimestampOracle,
    TransactionConflict,
    TransactionStatusOracle,
)


@pytest.fixture(params=["percolator", "retso"])
def any_manager(request):
    store = InMemoryKVStore()
    if request.param == "percolator":
        return PercolatorLikeManager(store)
    return RetsoLikeManager(store)


class TestCommonBehaviour:
    """Both baselines satisfy the same black-box transaction contract."""

    def test_commit_visible(self, any_manager):
        any_manager.run(lambda tx: tx.write("k", {"v": "1"}))
        with any_manager.transaction() as tx:
            assert tx.read("k") == {"v": "1"}

    def test_abort_invisible(self, any_manager):
        tx = any_manager.begin()
        tx.write("k", {"v": "1"})
        tx.abort()
        with any_manager.transaction() as tx:
            assert tx.read("k") is None

    def test_read_your_writes(self, any_manager):
        with any_manager.transaction() as tx:
            tx.write("k", {"v": "1"})
            assert tx.read("k") == {"v": "1"}

    def test_snapshot_isolation_blocks_lost_update(self, any_manager):
        any_manager.run(lambda tx: tx.write("k", {"n": "0"}))
        t1 = any_manager.begin()
        t2 = any_manager.begin()
        t1.read("k")
        t2.read("k")
        t1.write("k", {"n": "t1"})
        t2.write("k", {"n": "t2"})
        t1.commit()
        with pytest.raises(TransactionConflict):
            t2.commit()
        with any_manager.transaction() as tx:
            assert tx.read("k") == {"n": "t1"}

    def test_delete(self, any_manager):
        any_manager.run(lambda tx: tx.write("k", {"v": "1"}))
        any_manager.run(lambda tx: tx.delete("k"))
        with any_manager.transaction() as tx:
            assert tx.read("k") is None

    def test_scan(self, any_manager):
        for i in range(5):
            any_manager.run(lambda tx, i=i: tx.write(f"key{i}", {"n": str(i)}))
        with any_manager.transaction() as tx:
            assert [key for key, _ in tx.scan("key", 3)] == ["key0", "key1", "key2"]

    def test_concurrent_counter_no_lost_updates(self, any_manager):
        any_manager.run(lambda tx: tx.write("counter", {"n": "0"}))

        def worker():
            for _ in range(50):

                def body(tx):
                    value = int(tx.read("counter")["n"])
                    tx.write("counter", {"n": str(value + 1)})

                any_manager.run(body, retries=10_000)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        with any_manager.transaction() as tx:
            assert tx.read("counter") == {"n": "200"}


class TestPercolatorSpecifics:
    def test_central_oracle_serves_both_timestamps(self):
        oracle = TimestampOracle()
        manager = PercolatorLikeManager(InMemoryKVStore(), oracle=oracle)
        manager.run(lambda tx: tx.write("k", {"v": "1"}))
        # begin + commit each fetched a timestamp.
        assert oracle.requests >= 2

    def test_oracle_delay_is_per_transaction_cost(self):
        waits = []
        oracle = TimestampOracle(rpc_delay_s=0.01, sleep=waits.append)
        manager = PercolatorLikeManager(InMemoryKVStore(), oracle=oracle)
        manager.run(lambda tx: tx.write("k", {"v": "1"}))
        assert len(waits) == 2  # start ts + commit ts

    def test_expired_primary_lock_recovered(self):
        manager = PercolatorLikeManager(InMemoryKVStore(), lock_lease_ms=0.0)
        manager.run(lambda tx: tx.write("k", {"v": "old"}))
        # Crash a transaction after prewrite.
        tx = manager.begin()
        tx.write("k", {"v": "stuck"})
        ordered = list(tx._writes)
        primary = f"{ordered[0][0]}:{ordered[0][1]}"
        for address in ordered:
            tx._prewrite(address, primary)
        # A later reader cleans up the expired lock and sees the old value.
        with manager.transaction() as reader:
            assert reader.read("k") == {"v": "old"}
        assert manager.stats.rollbacks_of_peers >= 1

    def test_committed_secondary_rolled_forward(self):
        manager = PercolatorLikeManager(InMemoryKVStore(), lock_lease_ms=0.0)
        tx = manager.begin()
        tx.write("a", {"v": "A"})
        tx.write("b", {"v": "B"})
        ordered = list(tx._writes)
        primary_addr = ordered[0]
        primary = f"{primary_addr[0]}:{primary_addr[1]}"
        for address in ordered:
            tx._prewrite(address, primary)
        commit_ts = manager.oracle.next_timestamp()
        # Crash after committing the primary only.
        assert tx._commit_record(primary_addr, commit_ts)
        # A reader of the secondary discovers the committed primary and
        # rolls the secondary forward.
        secondary_key = ordered[1][1]
        with manager.transaction() as reader:
            assert reader.read(secondary_key) is not None
        assert manager.stats.rollforwards >= 1


class TestRetsoSpecifics:
    def test_tso_counts_commits_and_aborts(self):
        oracle = TransactionStatusOracle()
        manager = RetsoLikeManager(InMemoryKVStore(), oracle=oracle)
        manager.run(lambda tx: tx.write("k", {"n": "0"}))
        t1 = manager.begin()
        t2 = manager.begin()
        t1.read("k"), t2.read("k")
        t1.write("k", {"n": "1"})
        t2.write("k", {"n": "2"})
        t1.commit()
        with pytest.raises(TransactionConflict):
            t2.commit()
        assert oracle.commits == 2  # initial write + t1
        assert oracle.aborts == 1

    def test_read_only_transaction_skips_tso_commit(self):
        oracle = TransactionStatusOracle()
        manager = RetsoLikeManager(InMemoryKVStore(), oracle=oracle)
        with manager.transaction() as tx:
            tx.read("missing")
        assert oracle.commits == 0

    def test_low_water_mark_aborts_ancient_transactions(self):
        oracle = TransactionStatusOracle(max_tracked_keys=2)
        ancient = oracle.begin()
        # Enough commits to evict and advance the low-water mark.
        for i in range(10):
            assert oracle.try_commit(oracle.begin(), [("s", f"key{i}")]) is not None
        assert oracle.try_commit(ancient, [("s", "fresh-key")]) is None

    def test_rpc_delay_paid_on_begin_and_commit(self):
        waits = []
        oracle = TransactionStatusOracle(rpc_delay_s=0.02, sleep=waits.append)
        manager = RetsoLikeManager(InMemoryKVStore(), oracle=oracle)
        manager.run(lambda tx: tx.write("k", {"v": "1"}))
        assert waits == [0.02, 0.02]

    def test_conflict_detection_uses_commit_order_not_writes(self):
        oracle = TransactionStatusOracle()
        manager = RetsoLikeManager(InMemoryKVStore(), oracle=oracle)
        # Two transactions writing disjoint keys both commit.
        t1 = manager.begin()
        t2 = manager.begin()
        t1.write("a", {"v": "1"})
        t2.write("b", {"v": "2"})
        t1.commit()
        t2.commit()
        with manager.transaction() as tx:
            assert tx.read("a") == {"v": "1"}
            assert tx.read("b") == {"v": "2"}
