"""Property-based tests for the transaction record codec and WAL records."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvstore.lsm.wal import WalRecord
from repro.txn import LockInfo, TxRecord, Version

_fields = st.dictionaries(
    st.text(min_size=1, max_size=8),
    st.text(max_size=16),
    max_size=4,
)

_versions = st.lists(
    st.builds(
        Version,
        timestamp=st.integers(min_value=1, max_value=10**12),
        fields=_fields,
        deleted=st.booleans(),
        txid=st.one_of(st.none(), st.text(min_size=1, max_size=12)),
    ),
    max_size=6,
    unique_by=lambda version: version.timestamp,
)

_locks = st.one_of(
    st.none(),
    st.builds(
        LockInfo,
        txid=st.text(min_size=1, max_size=12),
        primary=st.text(min_size=1, max_size=20),
        lease_expiry_us=st.integers(min_value=0, max_value=10**15),
        staged=st.one_of(st.none(), _fields),
        is_delete=st.booleans(),
    ),
)


class TestTxRecordProperties:
    @given(versions=_versions, lock=_locks, trunc=st.integers(0, 10**12))
    @settings(max_examples=200, deadline=None)
    def test_encode_decode_round_trip(self, versions, lock, trunc):
        record = TxRecord(
            versions=sorted(versions, key=lambda v: -v.timestamp),
            lock=lock,
            truncated_before=trunc,
        )
        decoded = TxRecord.decode(record.encode())
        assert decoded.versions == record.versions
        assert decoded.lock == record.lock
        assert decoded.truncated_before == record.truncated_before

    @given(versions=_versions)
    @settings(max_examples=100, deadline=None)
    def test_decode_normalises_version_order(self, versions):
        record = TxRecord(versions=list(versions))
        decoded = TxRecord.decode(record.encode())
        timestamps = [version.timestamp for version in decoded.versions]
        assert timestamps == sorted(timestamps, reverse=True)

    @given(
        commits=st.lists(
            st.integers(min_value=1, max_value=10**9), min_size=1, max_size=30, unique=True
        ),
        probe=st.integers(min_value=0, max_value=10**9),
    )
    @settings(max_examples=150, deadline=None)
    def test_visibility_matches_naive_model(self, commits, probe):
        """visible_at == the newest commit <= probe among *retained*
        versions, and snapshot_too_old flags exactly the GC'd region."""
        record = TxRecord()
        for timestamp in commits:
            record.apply_commit(timestamp, {"n": str(timestamp)})
        retained = sorted(commits, reverse=True)[: TxRecord.MAX_VERSIONS]
        visible = record.visible_at(probe)
        expected = max((t for t in retained if t <= probe), default=None)
        assert (visible.timestamp if visible else None) == expected
        if expected is None and len(commits) > TxRecord.MAX_VERSIONS:
            assert record.snapshot_too_old(probe)
        if expected is not None:
            assert not record.snapshot_too_old(probe)

    @given(commits=st.lists(st.integers(1, 10**9), min_size=1, max_size=40, unique=True))
    @settings(max_examples=100, deadline=None)
    def test_trim_invariants(self, commits):
        record = TxRecord()
        for timestamp in commits:
            record.apply_commit(timestamp, {})
        assert len(record.versions) <= TxRecord.MAX_VERSIONS
        if len(commits) > TxRecord.MAX_VERSIONS:
            oldest_retained = record.versions[-1].timestamp
            assert record.truncated_before < oldest_retained
            assert record.truncated_before in commits
        else:
            assert record.truncated_before == 0


class TestWalRecordProperties:
    @given(
        sequence=st.integers(min_value=0, max_value=10**15),
        op=st.sampled_from(["put", "delete"]),
        key=st.text(max_size=32),
        value=st.one_of(st.none(), _fields),
    )
    @settings(max_examples=200, deadline=None)
    def test_round_trip(self, sequence, op, key, value):
        record = WalRecord(sequence, op, key, value)
        assert WalRecord.from_json(record.to_json()) == record
