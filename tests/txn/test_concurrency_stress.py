"""Concurrency and fault stress for the client-coordinated manager.

The acid test for the commit protocol: under thread contention and
injected faults (transient errors, torn writes at the commit point), a
counter incremented only through transactions must equal the number of
*reported-successful* increments — any lost update (a committed increment
that vanished) or double-apply (an "aborted" increment that landed)
breaks the equality.
"""

import random
import threading

import pytest

from repro.core.retry import RetryPolicy, RetryingStore
from repro.kvstore import (
    FaultInjectingStore,
    FaultProfile,
    InMemoryKVStore,
    KeyValueStore,
    StoreError,
    TransientStoreError,
)
from repro.txn import ClientTransactionManager
from repro.txn.errors import TransactionAborted, TransactionConflict, TransactionError
from repro.txn.manager import TSR_PREFIX


def noop_sleep(seconds):
    pass


COUNTER_KEY = "counter"


def make_manager(store, **kwargs):
    kwargs.setdefault("sleep", noop_sleep)
    kwargs.setdefault("lock_wait_retries", 500)
    return ClientTransactionManager(store, **kwargs)


def seed_counter(manager):
    with manager.transaction() as tx:
        tx.write(COUNTER_KEY, {"n": "0"})


def read_counter(manager):
    with manager.transaction() as tx:
        return int(tx.read(COUNTER_KEY)["n"])


def increment_workers(manager, threads, increments_per_thread):
    """Run the increment storm; returns the number of reported successes."""
    successes = [0] * threads

    def body(tx):
        current = int(tx.read(COUNTER_KEY)["n"])
        tx.write(COUNTER_KEY, {"n": str(current + 1)})

    def worker(worker_id):
        for _ in range(increments_per_thread):
            try:
                manager.run(body, retries=200, backoff_s=0.0, sleep=noop_sleep)
            except (TransactionError, StoreError):
                continue  # not counted; must then not be applied either
            successes[worker_id] += 1

    pool = [
        threading.Thread(target=worker, args=(i,), name=f"stress-{i}")
        for i in range(threads)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    return sum(successes)


class TestNoLostUpdates:
    def test_contended_counter_exact(self):
        manager = make_manager(InMemoryKVStore())
        seed_counter(manager)
        successes = increment_workers(manager, threads=8, increments_per_thread=30)
        assert successes == 240  # enough conflict retries for all to land
        assert read_counter(manager) == 240

    @pytest.mark.slow
    def test_contended_counter_under_faults_exact(self):
        """Threads + transient errors + torn writes: reported == applied."""
        faulty = FaultInjectingStore(
            InMemoryKVStore(),
            profile=FaultProfile(error_rate=0.03, torn_write_rate=0.03),
            seed=21,
            sleep=noop_sleep,
        )
        policy = RetryPolicy(
            max_attempts=8,
            base_delay_s=0.0,
            max_delay_s=0.0,
            rng=random.Random(2),
            sleep=noop_sleep,
        )
        manager = make_manager(faulty, retry_policy=policy)
        seed_counter(manager)
        successes = increment_workers(manager, threads=6, increments_per_thread=25)
        faulty.profile = FaultProfile()  # clean read-back
        assert read_counter(manager) == successes
        assert policy.stats.retries > 0  # the faults actually bit

    def test_contended_counter_under_faults_exact_virtual_time(self):
        """The slow stress case re-homed onto the simulator.

        Same fault profile and per-worker workload as the wall-clock
        variant above, but the six workers are cooperative simulated
        tasks interleaved deterministically by the event scheduler, with
        store latency and real (virtual) backoff providing the
        interleavings. Runs in well under a second of wall time.
        """
        from repro.kvstore.latency import ConstantLatency, LatencyInjectingStore
        from repro.sim.clock import use_clock
        from repro.sim.scheduler import SimClock

        clock = SimClock()
        with use_clock(clock):
            faulty = FaultInjectingStore(
                LatencyInjectingStore(InMemoryKVStore(), ConstantLatency(0.001)),
                profile=FaultProfile(error_rate=0.03, torn_write_rate=0.03),
                seed=21,
            )
            policy = RetryPolicy(
                max_attempts=8,
                base_delay_s=0.001,
                max_delay_s=0.02,
                rng=random.Random(2),
            )
            manager = ClientTransactionManager(
                faulty, retry_policy=policy, lock_wait_retries=500
            )
            seed_counter(manager)

            successes = [0] * 6

            def body(tx):
                current = int(tx.read(COUNTER_KEY)["n"])
                tx.write(COUNTER_KEY, {"n": str(current + 1)})

            def worker(worker_id):
                for _ in range(25):
                    try:
                        manager.run(body, retries=200, backoff_s=0.001)
                    except (TransactionError, StoreError):
                        continue  # not counted; must then not be applied either
                    successes[worker_id] += 1

            clock.scheduler.run(
                [lambda i=i: worker(i) for i in range(6)],
                names=[f"stress-{i}" for i in range(6)],
            )

            faulty.profile = FaultProfile()  # clean read-back
            assert read_counter(manager) == sum(successes)
        assert policy.stats.retries > 0  # the faults actually bit
        assert clock.scheduler.now > 0.0  # latency/backoff really elapsed


class _TearTsrCommitOnce(KeyValueStore):
    """Wrapper that tears exactly one committed-TSR insert (applies it,
    then raises), leaving everything else untouched."""

    def __init__(self, inner):
        self.inner = inner
        self.torn = False

    def get_with_meta(self, key):
        return self.inner.get_with_meta(key)

    def scan(self, start_key, record_count):
        return self.inner.scan(start_key, record_count)

    def keys(self):
        return self.inner.keys()

    def size(self):
        return self.inner.size()

    def put(self, key, value):
        return self.inner.put(key, value)

    def put_if_version(self, key, value, expected_version):
        result = self.inner.put_if_version(key, value, expected_version)
        should_tear = (
            not self.torn
            and result is not None
            and key.startswith(TSR_PREFIX)
            and value.get("state") == "committed"
        )
        if should_tear:
            self.torn = True
            raise TransientStoreError("torn TSR insert: applied but reported failed")
        return result

    def delete(self, key):
        return self.inner.delete(key)

    def delete_if_version(self, key, expected_version):
        return self.inner.delete_if_version(key, expected_version)


class TestAmbiguousCommit:
    def test_torn_tsr_insert_decides_committed_not_aborted(self):
        """The torn commit-point write must be verified, not blindly
        retried: the transaction committed and applies exactly once."""
        inner = InMemoryKVStore()
        manager = make_manager(_TearTsrCommitOnce(inner))
        seed_counter(manager)
        tx = manager.begin()
        current = int(tx.read(COUNTER_KEY)["n"])
        tx.write(COUNTER_KEY, {"n": str(current + 1)})
        tx.commit()  # raises nothing: the tear is resolved by verification
        assert manager.stats.ambiguous_commits == 1
        assert read_counter(manager) == 1  # applied exactly once

    def test_tear_absorbed_by_retry_layer_still_decides_committed(self):
        """A RetryingStore below the manager turns the torn insert into a
        CAS miss; the manager must still verify rather than conclude
        'aborted by peer'."""
        inner = InMemoryKVStore()
        policy = RetryPolicy(
            max_attempts=4, base_delay_s=0.0, max_delay_s=0.0, sleep=noop_sleep
        )
        manager = make_manager(RetryingStore(_TearTsrCommitOnce(inner), policy))
        seed_counter(manager)
        tx = manager.begin()
        tx.write(COUNTER_KEY, {"n": "1"})
        tx.commit()
        assert manager.stats.ambiguous_commits == 1
        assert manager.stats.committed == 2  # seed + this one
        assert read_counter(manager) == 1

    def test_peer_abort_wins_and_nothing_applies(self):
        """A peer's aborted TSR (lease-expiry recovery) must be honoured:
        commit raises TransactionAborted and the write is invisible."""
        inner = InMemoryKVStore()
        manager = make_manager(inner)
        tx = manager.begin()
        tx.write("account", {"n": "1"})
        inner.put_if_version(
            f"{TSR_PREFIX}{tx.txid}", {"state": "aborted", "commit_ts": "0"}, None
        )
        with pytest.raises(TransactionAborted):
            tx.commit()
        assert manager.stats.aborted == 1
        with manager.transaction() as reader:
            assert reader.read("account") is None


class _FailFirstLockInstall(KeyValueStore):
    """Raises (without applying) on the first non-TSR conditional put."""

    def __init__(self, inner):
        self.inner = inner
        self.failed = False

    def get_with_meta(self, key):
        return self.inner.get_with_meta(key)

    def scan(self, start_key, record_count):
        return self.inner.scan(start_key, record_count)

    def keys(self):
        return self.inner.keys()

    def size(self):
        return self.inner.size()

    def put(self, key, value):
        return self.inner.put(key, value)

    def put_if_version(self, key, value, expected_version):
        if not self.failed and not key.startswith(TSR_PREFIX):
            self.failed = True
            raise TransientStoreError("injected: request never reached the store")
        return self.inner.put_if_version(key, value, expected_version)

    def delete(self, key):
        return self.inner.delete(key)

    def delete_if_version(self, key, expected_version):
        return self.inner.delete_if_version(key, expected_version)


class TestStoreErrorsAroundCommit:
    def test_store_error_before_commit_point_aborts_cleanly(self):
        """Without a retry policy a transient lock-install failure aborts
        the transaction and leaves no lock behind."""
        inner = InMemoryKVStore()
        manager = make_manager(_FailFirstLockInstall(inner))
        tx = manager.begin()
        tx.write("k", {"f": "1"})
        with pytest.raises(TransientStoreError):
            tx.commit()
        assert tx.state.value == "aborted"
        # The key is free: a fresh transaction locks and commits at once.
        with manager.transaction() as retry_tx:
            retry_tx.write("k", {"f": "2"})
        with manager.transaction() as reader:
            assert reader.read("k") == {"f": "2"}

    def test_manager_retry_policy_rides_through_lock_install_failure(self):
        inner = InMemoryKVStore()
        policy = RetryPolicy(
            max_attempts=4, base_delay_s=0.0, max_delay_s=0.0, sleep=noop_sleep
        )
        manager = make_manager(_FailFirstLockInstall(inner), retry_policy=policy)
        with manager.transaction() as tx:
            tx.write("k", {"f": "1"})
        assert manager.stats.committed == 1
        assert manager.retry_stats.retries == 1
        assert manager.counters()["TXN-RETRIES"] == 1

    def test_rollback_after_torn_lock_install_releases_the_lock(self):
        """A torn lock install absorbed by the retry layer re-enters
        ``_acquire_lock`` through the 'already ours' branch; the lock must
        be registered there so a later conflict rollback releases it."""
        from repro.txn.record import LockInfo, TxRecord

        class TearFirstLockInstall(_FailFirstLockInstall):
            def put_if_version(self, key, value, expected_version):
                if not self.failed and key == "a":
                    result = self.inner.put_if_version(key, value, expected_version)
                    if result is not None:
                        self.failed = True
                        raise TransientStoreError("torn lock install")
                    return result
                return self.inner.put_if_version(key, value, expected_version)

        inner = InMemoryKVStore()
        policy = RetryPolicy(
            max_attempts=4, base_delay_s=0.0, max_delay_s=0.0, sleep=noop_sleep
        )
        manager = make_manager(
            TearFirstLockInstall(inner), retry_policy=policy, lock_wait_retries=5
        )
        # "k" is held by a live peer with a far-future lease, so locking it
        # must fail — after "a" was already (tornly) locked by us.
        blocker = TxRecord()
        blocker.lock = LockInfo(
            txid="peer-1",
            primary="default:k",
            lease_expiry_us=2**62,
            staged={"f": "x"},
            is_delete=False,
        )
        inner.put("k", blocker.encode())
        tx = manager.begin()
        tx.write("a", {"f": "1"})
        tx.write("k", {"f": "1"})
        with pytest.raises(TransactionConflict):
            tx.commit()
        # The torn lock on "a" was registered and rolled back: a fresh
        # transaction writes "a" immediately, no lease wait, no conflict.
        with manager.transaction() as retry_tx:
            retry_tx.write("a", {"f": "2"})
        with manager.transaction() as reader:
            assert reader.read("a") == {"f": "2"}
