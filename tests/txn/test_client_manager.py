"""Client-coordinated transaction manager: ACID behaviour and recovery."""

import threading

import pytest

from repro.kvstore import InMemoryKVStore
from repro.kvstore.lsm import LSMKVStore
from repro.txn import (
    ClientTransactionManager,
    TransactionConflict,
    TransactionStateError,
    TxState,
)
from repro.txn.manager import TSR_PREFIX


@pytest.fixture
def manager():
    return ClientTransactionManager(InMemoryKVStore())


class TestBasics:
    def test_read_your_own_writes(self, manager):
        with manager.transaction() as tx:
            tx.write("k", {"v": "1"})
            assert tx.read("k") == {"v": "1"}

    def test_write_visible_after_commit(self, manager):
        with manager.transaction() as tx:
            tx.write("k", {"v": "1"})
        with manager.transaction() as tx:
            assert tx.read("k") == {"v": "1"}

    def test_read_missing_key(self, manager):
        with manager.transaction() as tx:
            assert tx.read("missing") is None

    def test_delete(self, manager):
        manager.run(lambda tx: tx.write("k", {"v": "1"}))
        manager.run(lambda tx: tx.delete("k"))
        with manager.transaction() as tx:
            assert tx.read("k") is None

    def test_buffered_delete_read_back(self, manager):
        manager.run(lambda tx: tx.write("k", {"v": "1"}))
        with manager.transaction() as tx:
            tx.delete("k")
            assert tx.read("k") is None

    def test_abort_discards_writes(self, manager):
        tx = manager.begin()
        tx.write("k", {"v": "1"})
        tx.abort()
        with manager.transaction() as tx:
            assert tx.read("k") is None

    def test_operations_after_commit_rejected(self, manager):
        tx = manager.begin()
        tx.commit()
        with pytest.raises(TransactionStateError):
            tx.read("k")
        with pytest.raises(TransactionStateError):
            tx.commit()

    def test_abort_idempotent(self, manager):
        tx = manager.begin()
        tx.abort()
        tx.abort()
        assert tx.state is TxState.ABORTED

    def test_empty_commit(self, manager):
        tx = manager.begin()
        tx.commit()
        assert tx.state is TxState.COMMITTED

    def test_reserved_prefix_rejected(self, manager):
        tx = manager.begin()
        with pytest.raises(ValueError):
            tx.write(f"{TSR_PREFIX}evil", {})

    def test_tsr_cleaned_after_commit(self, manager):
        manager.run(lambda tx: tx.write("k", {"v": "1"}))
        store = manager.store()
        assert not any(key.startswith(TSR_PREFIX) for key in store.keys())

    def test_context_manager_aborts_on_exception(self, manager):
        with pytest.raises(RuntimeError):
            with manager.transaction() as tx:
                tx.write("k", {"v": "1"})
                raise RuntimeError("boom")
        with manager.transaction() as tx:
            assert tx.read("k") is None


class TestAtomicity:
    def test_multi_key_commit_is_all_or_nothing(self, manager):
        with manager.transaction() as tx:
            tx.write("a", {"v": "1"})
            tx.write("b", {"v": "2"})
        with manager.transaction() as tx:
            assert tx.read("a") == {"v": "1"}
            assert tx.read("b") == {"v": "2"}

    def test_conflict_leaves_no_partial_state(self, manager):
        manager.run(lambda tx: tx.write("x", {"n": "0"}))
        manager.run(lambda tx: tx.write("y", {"n": "0"}))

        t1 = manager.begin()
        v1 = t1.read("x")
        t2 = manager.begin()
        t2.write("x", {"n": "t2"})
        t2.write("y", {"n": "t2"})
        t2.commit()
        # t1 read x before t2 committed; its write set overlaps -> conflict.
        t1.write("x", {"n": "t1"})
        t1.write("y", {"n": "t1"})
        with pytest.raises(TransactionConflict):
            t1.commit()
        with manager.transaction() as tx:
            assert tx.read("x") == {"n": "t2"}
            assert tx.read("y") == {"n": "t2"}
        assert v1 == {"n": "0"}


class TestIsolation:
    def test_snapshot_read_ignores_later_commit(self, manager):
        manager.run(lambda tx: tx.write("k", {"v": "old"}))
        reader = manager.begin()
        assert reader.read("k") == {"v": "old"}
        manager.run(lambda tx: tx.write("k", {"v": "new"}))
        # Same snapshot: still the old value.
        assert reader.read("k") == {"v": "old"}
        reader.abort()

    def test_first_committer_wins(self, manager):
        manager.run(lambda tx: tx.write("k", {"n": "0"}))
        t1 = manager.begin()
        t2 = manager.begin()
        t1.read("k")
        t2.read("k")
        t1.write("k", {"n": "t1"})
        t2.write("k", {"n": "t2"})
        t1.commit()
        with pytest.raises(TransactionConflict):
            t2.commit()
        assert manager.stats.conflicts >= 1

    def test_no_lost_updates_under_concurrency(self):
        store = InMemoryKVStore()
        manager = ClientTransactionManager(store)
        manager.run(lambda tx: tx.write("counter", {"n": "0"}))

        def worker():
            for _ in range(100):

                def body(tx):
                    current = int(tx.read("counter")["n"])
                    tx.write("counter", {"n": str(current + 1)})

                manager.run(body, retries=10_000)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        with manager.transaction() as tx:
            assert tx.read("counter") == {"n": "400"}

    def test_write_write_conflict_on_unread_key(self, manager):
        manager.run(lambda tx: tx.write("k", {"n": "0"}))
        t1 = manager.begin()  # snapshot taken now
        manager.run(lambda tx: tx.write("k", {"n": "1"}))  # commits after t1 began
        t1.write("k", {"n": "blind"})
        with pytest.raises(TransactionConflict):
            t1.commit()


class TestOrderedLockingNoDeadlock:
    def test_opposite_order_writes_never_deadlock(self, manager):
        manager.run(lambda tx: tx.write("a", {"n": "0"}))
        manager.run(lambda tx: tx.write("b", {"n": "0"}))
        errors = []

        def worker(first, second, label):
            for _ in range(50):

                def body(tx):
                    tx.write(first, {"n": label})
                    tx.write(second, {"n": label})

                try:
                    manager.run(body, retries=10_000)
                except TransactionConflict as exc:
                    errors.append(exc)

        t1 = threading.Thread(target=worker, args=("a", "b", "t1"))
        t2 = threading.Thread(target=worker, args=("b", "a", "t2"))
        t1.start(), t2.start()
        t1.join(timeout=30), t2.join(timeout=30)
        assert not t1.is_alive() and not t2.is_alive(), "deadlock: workers stuck"
        assert not errors


class TestRecovery:
    def _stuck_transaction(self, manager, key="k", value=None):
        """Drive a transaction to hold a lock, then 'crash' the client."""
        tx = manager.begin()
        tx.write(key, value or {"v": "staged"})
        ordered = sorted(tx._writes)
        for address in ordered:
            tx._acquire_lock(address, f"{ordered[0][0]}:{ordered[0][1]}")
        return tx

    def test_expired_lock_rolled_back_by_reader(self):
        manager = ClientTransactionManager(InMemoryKVStore(), lock_lease_ms=0.0)
        manager.run(lambda tx: tx.write("k", {"v": "committed"}))
        self._stuck_transaction(manager)  # crashes holding the lock
        with manager.transaction() as tx:
            assert tx.read("k") == {"v": "committed"}
        assert manager.stats.rollbacks_of_peers >= 1

    def test_decided_transaction_rolled_forward_by_reader(self):
        manager = ClientTransactionManager(InMemoryKVStore(), lock_lease_ms=0.0)
        tx = self._stuck_transaction(manager, value={"v": "decided"})
        # The crashed client had reached its commit point (TSR exists).
        commit_ts = manager.clock.next_timestamp()
        manager.store().put_if_version(
            manager._tsr_key(tx.txid),
            {"state": "committed", "commit_ts": str(commit_ts)},
            None,
        )
        with manager.transaction() as reader:
            assert reader.read("k") == {"v": "decided"}
        assert manager.stats.rollforwards >= 1

    def test_live_lock_blocks_then_conflicts(self):
        manager = ClientTransactionManager(
            InMemoryKVStore(),
            lock_lease_ms=60_000.0,
            lock_wait_retries=3,
            lock_wait_s=0.0001,
        )
        manager.run(lambda tx: tx.write("k", {"v": "old"}))
        stuck = self._stuck_transaction(manager)
        with pytest.raises(TransactionConflict):
            with manager.transaction() as reader:
                reader.read("k")
        stuck.abort()
        with manager.transaction() as reader:
            assert reader.read("k") == {"v": "old"}

    def test_peer_abort_beats_committer(self):
        manager = ClientTransactionManager(InMemoryKVStore(), lock_lease_ms=0.0)
        stuck = self._stuck_transaction(manager)
        # A peer presumes the transaction dead and aborts it.
        with manager.transaction() as reader:
            assert reader.read("k") is None
        # The original client wakes up and tries to finish: it must lose.
        from repro.txn import TransactionAborted

        with pytest.raises(TransactionAborted):
            stuck.commit()
        with manager.transaction() as reader:
            assert reader.read("k") is None


class TestHeterogeneousStores:
    def test_transaction_spans_memory_and_lsm(self, tmp_path):
        lsm = LSMKVStore(tmp_path)
        manager = ClientTransactionManager(
            {"mem": InMemoryKVStore(), "disk": lsm}, default_store="mem"
        )
        with manager.transaction() as tx:
            tx.write("a", {"v": "mem-data"}, store="mem")
            tx.write("b", {"v": "lsm-data"}, store="disk")
        with manager.transaction() as tx:
            assert tx.read("a", store="mem") == {"v": "mem-data"}
            assert tx.read("b", store="disk") == {"v": "lsm-data"}
        lsm.close()

    def test_unknown_store_rejected(self, manager):
        tx = manager.begin()
        with pytest.raises(KeyError):
            tx.read("k", store="nope")

    def test_cross_store_conflict_detected(self, tmp_path):
        manager = ClientTransactionManager(
            {"a": InMemoryKVStore(), "b": InMemoryKVStore()}, default_store="a"
        )
        manager.run(lambda tx: tx.write("k", {"n": "0"}, store="b"))
        t1 = manager.begin()
        t1.read("k", store="b")
        manager.run(lambda tx: tx.write("k", {"n": "1"}, store="b"))
        t1.write("k", {"n": "t1"}, store="b")
        with pytest.raises(TransactionConflict):
            t1.commit()


class TestScan:
    def test_scan_sees_committed_only(self, manager):
        for i in range(5):
            manager.run(lambda tx, i=i: tx.write(f"key{i}", {"n": str(i)}))
        pending = manager.begin()
        pending.write("key9", {"n": "uncommitted"})
        with manager.transaction() as tx:
            keys = [key for key, _ in tx.scan("key", 10)]
        assert keys == [f"key{i}" for i in range(5)]
        pending.abort()

    def test_scan_skips_deleted(self, manager):
        manager.run(lambda tx: tx.write("a", {}))
        manager.run(lambda tx: tx.write("b", {}))
        manager.run(lambda tx: tx.delete("a"))
        with manager.transaction() as tx:
            assert [key for key, _ in tx.scan("", 10)] == ["b"]

    def test_scan_respects_limit(self, manager):
        for i in range(20):
            manager.run(lambda tx, i=i: tx.write(f"key{i:02d}", {}))
        with manager.transaction() as tx:
            assert len(tx.scan("key", 7)) == 7


class TestRunHelper:
    def test_run_retries_conflicts(self, manager):
        manager.run(lambda tx: tx.write("k", {"n": "0"}))
        attempts = []

        def body(tx):
            attempts.append(1)
            value = int(tx.read("k")["n"])
            if len(attempts) == 1:
                # Sabotage the first attempt with an interleaved commit.
                manager.run(lambda other: other.write("k", {"n": str(value + 10)}))
            tx.write("k", {"n": str(value + 1)})

        manager.run(body, retries=5, sleep=lambda _t: None)
        assert len(attempts) == 2
        with manager.transaction() as tx:
            assert tx.read("k") == {"n": "11"}

    def test_run_raises_after_retry_budget(self, manager):
        manager.run(lambda tx: tx.write("k", {"n": "0"}))

        def always_conflicts(tx):
            tx.read("k")
            manager.run(lambda other: other.write("k", {"n": "interference"}))
            tx.write("k", {"n": "mine"})

        with pytest.raises(TransactionConflict):
            manager.run(always_conflicts, retries=2, sleep=lambda _t: None)


class TestSnapshotTooOld:
    def test_old_snapshot_conflicts_instead_of_vanishing(self, manager):
        """After version GC trims the version an old snapshot would read,
        the read fails with a conflict rather than returning None."""
        from repro.txn.record import TxRecord

        manager.run(lambda tx: tx.write("hot", {"n": "0"}))
        old_reader = manager.begin()
        for i in range(TxRecord.MAX_VERSIONS + 2):
            manager.run(lambda tx, i=i: tx.write("hot", {"n": str(i + 1)}))
        with pytest.raises(TransactionConflict):
            old_reader.read("hot")
        old_reader.abort()

    def test_fresh_snapshot_unaffected_by_trimming(self, manager):
        from repro.txn.record import TxRecord

        for i in range(TxRecord.MAX_VERSIONS + 5):
            manager.run(lambda tx, i=i: tx.write("hot", {"n": str(i)}))
        with manager.transaction() as tx:
            assert tx.read("hot") == {"n": str(TxRecord.MAX_VERSIONS + 4)}

    def test_key_created_after_snapshot_reads_none(self, manager):
        reader = manager.begin()
        manager.run(lambda tx: tx.write("new-key", {"v": "x"}))
        # Not trimmed, just newer than the snapshot: legitimately absent.
        assert reader.read("new-key") is None
        reader.abort()
