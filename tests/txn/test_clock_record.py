"""Timestamp sources and the multi-version record codec."""

import threading

import pytest

from repro.txn import (
    HybridClock,
    LocalClock,
    LockInfo,
    TimestampOracle,
    TX_FIELD,
    TxRecord,
    Version,
)


class TestLocalClock:
    def test_strictly_increasing(self):
        clock = LocalClock()
        timestamps = [clock.next_timestamp() for _ in range(1000)]
        assert all(b > a for a, b in zip(timestamps, timestamps[1:]))

    def test_strictly_increasing_across_threads(self):
        clock = LocalClock()
        seen = []
        lock = threading.Lock()

        def worker():
            local = [clock.next_timestamp() for _ in range(2000)]
            with lock:
                seen.extend(local)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(seen)) == len(seen)

    def test_frozen_wall_clock_still_advances(self):
        clock = LocalClock(now_us=lambda: 1000)
        assert clock.next_timestamp() == 1000
        assert clock.next_timestamp() == 1001


class TestHybridClock:
    def test_observe_ratchets_forward(self):
        clock = HybridClock(now_us=lambda: 100)
        assert clock.next_timestamp() == 100
        clock.observe(5000)  # a remote client is far ahead
        assert clock.next_timestamp() == 5001

    def test_observe_never_goes_backward(self):
        clock = HybridClock(now_us=lambda: 100)
        clock.next_timestamp()
        clock.observe(50)
        assert clock.next_timestamp() == 101


class TestTimestampOracle:
    def test_strictly_increasing(self):
        oracle = TimestampOracle()
        assert oracle.next_timestamp() < oracle.next_timestamp()

    def test_counts_requests(self):
        oracle = TimestampOracle()
        for _ in range(5):
            oracle.next_timestamp()
        assert oracle.requests == 5

    def test_rpc_delay_paid(self):
        waits = []
        oracle = TimestampOracle(rpc_delay_s=0.05, sleep=waits.append)
        oracle.next_timestamp()
        assert waits == [0.05]

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            TimestampOracle(rpc_delay_s=-1)


class TestVersion:
    def test_round_trip(self):
        version = Version(17, {"f": "v"}, deleted=False, txid="t1")
        assert Version.from_dict(version.to_dict()) == version

    def test_delete_marker(self):
        version = Version(17, {}, deleted=True)
        assert Version.from_dict(version.to_dict()).deleted


class TestLockInfo:
    def test_round_trip_with_staged_data(self):
        lock = LockInfo("t1", "store:key", 123456, staged={"f": "v"}, is_delete=False)
        assert LockInfo.from_dict(lock.to_dict()) == lock

    def test_round_trip_delete_intent(self):
        lock = LockInfo("t1", "store:key", 123456, staged=None, is_delete=True)
        decoded = LockInfo.from_dict(lock.to_dict())
        assert decoded.is_delete
        assert decoded.staged is None


class TestTxRecord:
    def test_empty_record(self):
        record = TxRecord()
        assert record.latest() is None
        assert record.visible_at(100) is None
        assert record.newest_commit_timestamp() == 0

    def test_encode_decode_round_trip(self):
        record = TxRecord()
        record.apply_commit(10, {"f": "1"}, txid="a")
        record.apply_commit(20, {"f": "2"}, txid="b")
        record.lock = LockInfo("c", "s:k", 999, staged={"f": "3"})
        decoded = TxRecord.decode(record.encode())
        assert decoded.versions == record.versions
        assert decoded.lock == record.lock

    def test_decode_none_is_empty(self):
        record = TxRecord.decode(None)
        assert record.versions == [] and record.lock is None

    def test_decode_raw_value_raises(self):
        with pytest.raises(ValueError):
            TxRecord.decode({"field0": "not transactional"})

    def test_snapshot_visibility(self):
        record = TxRecord()
        record.apply_commit(10, {"f": "old"})
        record.apply_commit(20, {"f": "new"})
        assert record.visible_at(5) is None
        assert record.visible_at(10).fields == {"f": "old"}
        assert record.visible_at(15).fields == {"f": "old"}
        assert record.visible_at(20).fields == {"f": "new"}
        assert record.visible_at(10**9).fields == {"f": "new"}

    def test_apply_commit_clears_lock(self):
        record = TxRecord()
        record.lock = LockInfo("t", "s:k", 1, staged={"f": "v"})
        record.apply_commit(10, {"f": "v"})
        assert record.lock is None

    def test_version_trimming(self):
        record = TxRecord()
        for ts in range(1, 20):
            record.apply_commit(ts, {"n": str(ts)})
        assert len(record.versions) == TxRecord.MAX_VERSIONS
        assert record.latest().timestamp == 19
        # Oldest retained version is the cutoff for very old snapshots.
        assert record.visible_at(5) is None

    def test_versions_stay_sorted_on_out_of_order_commit(self):
        record = TxRecord()
        record.apply_commit(20, {"n": "20"})
        record.apply_commit(10, {"n": "10"})
        assert [version.timestamp for version in record.versions] == [20, 10]
        assert record.visible_at(15).fields == {"n": "10"}

    def test_encoded_field_name(self):
        record = TxRecord()
        record.apply_commit(1, {"f": "v"})
        assert set(record.encode()) == {TX_FIELD}
