"""Anomaly scoring, serialization graphs, staleness probing."""

import pytest

from repro.validation import (
    AnomalyReport,
    ExecutionRecorder,
    InvariantCheck,
    SerializationGraph,
    StalenessProbe,
    simple_anomaly_score,
)


class TestAnomalyScore:
    def test_paper_formula(self):
        # Listing 3: |1000000 - 999971| / 1000000 = 2.9e-5
        assert simple_anomaly_score(1_000_000, 999_971, 1_000_000) == pytest.approx(2.9e-5)

    def test_zero_for_consistent(self):
        assert simple_anomaly_score(100, 100, 50) == 0.0

    def test_sign_irrelevant(self):
        assert simple_anomaly_score(100, 110, 10) == simple_anomaly_score(100, 90, 10)

    def test_zero_operations_clamped(self):
        assert simple_anomaly_score(100, 90, 0) == 10.0

    def test_invariant_check(self):
        check = InvariantCheck("cash", expected=100, observed=93, operations=7)
        assert check.drift == 7
        assert check.score == 1.0
        assert not check.consistent

    def test_anomaly_report(self):
        report = AnomalyReport(
            [
                InvariantCheck("a", 10, 10, 5),
                InvariantCheck("b", 10, 8, 5),
            ]
        )
        assert not report.passed
        assert report.worst().name == "b"
        assert report.total_score == pytest.approx(0.4)

    def test_empty_report_passes(self):
        report = AnomalyReport([])
        assert report.passed
        assert report.worst() is None


class TestSerializationGraph:
    def test_serial_history_is_serializable(self):
        graph = SerializationGraph()
        graph.record_read("t1", "x", 0)
        v1 = graph.record_write("t1", "x")
        graph.record_read("t2", "x", v1)
        graph.record_write("t2", "x")
        assert graph.is_serializable
        kinds = {(d.source, d.target, d.kind) for d in graph.dependencies()}
        assert ("t1", "t2", "WR") in kinds
        assert ("t1", "t2", "WW") in kinds

    def test_lost_update_creates_cycle(self):
        """Two transactions both read version 0 then both write: the
        classic lost-update interleaving yields RW edges both ways."""
        graph = SerializationGraph()
        graph.record_read("t1", "x", 0)
        graph.record_read("t2", "x", 0)
        graph.record_write("t1", "x")
        graph.record_write("t2", "x")
        assert not graph.is_serializable
        assert graph.find_cycles() == [["t1", "t2"]]

    def test_write_skew_cycle(self):
        """SI write skew: t1 reads x writes y, t2 reads y writes x."""
        graph = SerializationGraph()
        graph.record_read("t1", "x", 0)
        graph.record_read("t2", "y", 0)
        graph.record_write("t1", "y")
        graph.record_write("t2", "x")
        assert not graph.is_serializable

    def test_read_only_transactions_never_cycle(self):
        graph = SerializationGraph()
        writer_version = graph.record_write("w", "x")
        for reader in ("r1", "r2", "r3"):
            graph.record_read(reader, "x", writer_version)
        assert graph.is_serializable

    def test_rw_edge_direction(self):
        graph = SerializationGraph()
        graph.record_read("reader", "x", 0)
        graph.record_write("writer", "x")
        edges = graph.dependencies()
        assert any(
            e.source == "reader" and e.target == "writer" and e.kind == "RW"
            for e in edges
        )

    def test_initial_version_attribution_excluded(self):
        graph = SerializationGraph()
        graph.record_read("t1", "x", 0)
        assert graph.dependencies() == []

    def test_rejects_negative_version(self):
        with pytest.raises(ValueError):
            SerializationGraph().record_read("t", "x", -1)


class TestExecutionRecorder:
    def test_commit_publishes(self):
        recorder = ExecutionRecorder()
        recorder.begin("t1")
        recorder.on_read("t1", "x")
        recorder.on_write("t1", "x")
        recorder.commit("t1")
        assert "t1" in recorder.graph.transactions

    def test_abort_discards(self):
        recorder = ExecutionRecorder()
        recorder.begin("t1")
        recorder.on_write("t1", "x")
        recorder.abort("t1")
        assert recorder.graph.transactions == set()

    def test_double_begin_rejected(self):
        recorder = ExecutionRecorder()
        recorder.begin("t1")
        with pytest.raises(ValueError):
            recorder.begin("t1")

    def test_lost_update_detected_live(self):
        recorder = ExecutionRecorder()
        recorder.begin("t1")
        recorder.begin("t2")
        recorder.on_read("t1", "x")
        recorder.on_read("t2", "x")
        recorder.on_write("t1", "x")
        recorder.on_write("t2", "x")
        recorder.commit("t1")
        recorder.commit("t2")
        assert not recorder.graph.is_serializable

    def test_serialized_interleaving_clean(self):
        recorder = ExecutionRecorder()
        for txid in ("t1", "t2", "t3"):
            recorder.begin(txid)
            recorder.on_read(txid, "x")
            recorder.on_write(txid, "x")
            recorder.commit(txid)
        assert recorder.graph.is_serializable


class TestStalenessProbe:
    def test_fresh_store_never_stale(self):
        from repro.kvstore import InMemoryKVStore

        probe = StalenessProbe(InMemoryKVStore(), sleep=lambda _s: None)
        assert probe.stale_probability(0.0, samples=20) == 0.0

    def test_lagging_replica_is_stale_then_fresh(self):
        import random

        from repro.kvstore import ReadPreference, ReplicatedKVStore

        clock = [0.0]
        store = ReplicatedKVStore(
            replica_count=1,
            lag_seconds=1.0,
            read_preference=ReadPreference.REPLICA,
            rng=random.Random(1),
            clock=lambda: clock[0],
        )

        def advance(seconds):
            clock[0] += seconds

        probe = StalenessProbe(store, sleep=advance)
        curve = probe.curve([0.0, 0.5, 1.5], samples=10)
        assert curve[0][1] == 1.0  # read immediately: always stale
        assert curve[1][1] == 1.0  # before the lag: still stale
        assert curve[2][1] == 0.0  # past the lag: always fresh

    def test_rejects_bad_sample_count(self):
        from repro.kvstore import InMemoryKVStore

        with pytest.raises(ValueError):
            StalenessProbe(InMemoryKVStore()).stale_probability(0.0, samples=0)

    def test_injected_clock_measures_virtual_elapsed_time(self):
        import random

        from repro.kvstore import ReadPreference, ReplicatedKVStore
        from repro.sim.scheduler import SimClock

        clock = SimClock()
        store = ReplicatedKVStore(
            replica_count=1,
            lag_seconds=1.0,
            read_preference=ReadPreference.REPLICA,
            rng=random.Random(1),
            clock=clock.monotonic,
        )
        probe = StalenessProbe(store, clock=clock)
        fresh = probe.sample(1.5)
        assert not fresh.stale
        assert fresh.elapsed_s >= 1.5  # measured on the virtual clock
        stale = probe.sample(0.0)
        assert stale.stale
        assert stale.elapsed_s == 0.0

    def test_ambient_sim_clock_drives_the_default_probe(self):
        import time as time_module

        from repro.kvstore import InMemoryKVStore
        from repro.sim.clock import use_clock
        from repro.sim.scheduler import SimClock

        probe = StalenessProbe(InMemoryKVStore())  # constructed on wall time
        before = time_module.monotonic()
        with use_clock(SimClock()):
            # 100 waits of 2 s each: 200 virtual seconds, no real sleeping.
            assert probe.stale_probability(2.0, samples=100) == 0.0
        assert time_module.monotonic() - before < 1.0


class TestRecordingDB:
    def _setup(self, transactional: bool):
        from repro.bindings.kv import KVStoreDB
        from repro.bindings.txn import TxnDB
        from repro.core import Properties
        from repro.kvstore import InMemoryKVStore
        from repro.txn import ClientTransactionManager
        from repro.validation import ExecutionRecorder, RecordingDB

        recorder = ExecutionRecorder()
        if transactional:
            manager = ClientTransactionManager(InMemoryKVStore())
            inner = TxnDB(Properties(), manager=manager)
        else:
            inner = KVStoreDB(InMemoryKVStore(), Properties())
        return recorder, RecordingDB(inner, recorder)

    def test_wrapped_transaction_recorded_as_unit(self):
        recorder, db = self._setup(transactional=True)
        db.insert("t", "a", {"v": "1"})
        db.start()
        db.read("t", "a")
        db.update("t", "a", {"v": "2"})
        db.commit()
        assert len(recorder.graph.transactions) == 2  # insert + the txn
        assert recorder.graph.is_serializable

    def test_aborted_transaction_leaves_no_trace(self):
        recorder, db = self._setup(transactional=True)
        db.insert("t", "a", {"v": "1"})
        before = recorder.graph.transactions
        db.start()
        db.read("t", "a")
        db.update("t", "a", {"v": "2"})
        db.abort()
        assert recorder.graph.transactions == before

    def test_serial_cew_run_is_serializable(self):
        from repro.core import Client, ClosedEconomyWorkload, Properties
        from repro.measurements import Measurements

        recorder, db = self._setup(transactional=False)
        props = Properties(
            {"recordcount": "20", "operationcount": "100", "totalcash": "20000",
             "fieldcount": "1", "threadcount": "1", "seed": "4"}
        )
        workload = ClosedEconomyWorkload()
        measurements = Measurements()
        workload.init(props, measurements)
        client = Client(workload, lambda: db, props, measurements)
        client.load()
        result = client.run()
        assert result.validation.passed
        assert recorder.graph.is_serializable

    def test_hand_interleaved_lost_update_shows_cycle(self):
        """Drive the lost-update interleaving through two wrapped DBs."""
        from repro.bindings.kv import KVStoreDB
        from repro.core import Properties
        from repro.kvstore import InMemoryKVStore
        from repro.validation import ExecutionRecorder, RecordingDB

        store = InMemoryKVStore()
        store.put("t:x", {"n": "0"})
        recorder = ExecutionRecorder()
        db1 = RecordingDB(KVStoreDB(store, Properties()), recorder)
        db2 = RecordingDB(KVStoreDB(store, Properties()), recorder)
        db1.start(); db2.start()
        db1.read("t", "x"); db2.read("t", "x")
        db1.update("t", "x", {"n": "1"})
        db2.update("t", "x", {"n": "1"})
        db1.commit(); db2.commit()
        assert not recorder.graph.is_serializable
