"""SynthSpec validation, the scenario catalogue and spec files."""

import json
from pathlib import Path

import pytest

from repro.synth.models import RateCurve
from repro.synth.spec import (
    DEFAULT_MIX,
    SCENARIOS,
    SynthSpec,
    SynthSpecError,
    TenantSpec,
    load_synth_spec,
    scenario_names,
    synth_spec_from_dict,
)


def minimal(**overrides):
    values = {"name": "t", "duration_s": 60.0, "users": 100}
    values.update(overrides)
    return SynthSpec(**values)


class TestSynthSpecValidation:
    def test_minimal_spec_valid(self):
        spec = minimal()
        assert spec.binding == "txn"
        assert spec.tenants[0].name == "default"

    def test_rejects_bad_name(self):
        with pytest.raises(SynthSpecError, match="bad spec name"):
            minimal(name="has space")

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(SynthSpecError, match="duration_s"):
            minimal(duration_s=0.0)

    def test_rejects_unknown_binding(self):
        with pytest.raises(SynthSpecError, match="binding"):
            minimal(binding="http")

    def test_rejects_bad_theta(self):
        with pytest.raises(SynthSpecError, match="key_theta"):
            minimal(key_theta=1.5)

    def test_rejects_duplicate_tenants(self):
        with pytest.raises(SynthSpecError, match="duplicate tenant"):
            minimal(tenants=(TenantSpec(name="a"), TenantSpec(name="a")))

    def test_rejects_empty_tenant_slice(self):
        with pytest.raises(SynthSpecError, match="covers no records"):
            minimal(records=10, tenants=(
                TenantSpec(name="thin", keyspace=(0.0, 0.01)),))

    def test_rejects_low_total_cash(self):
        with pytest.raises(SynthSpecError, match="total_cash"):
            minimal(records=100, total_cash=50)

    def test_tenant_burst_requires_rate_limit(self):
        with pytest.raises(SynthSpecError, match="burst without rate_limit"):
            TenantSpec(name="b", burst=5.0).validate()

    def test_tenant_rejects_unknown_mix_op(self):
        with pytest.raises(SynthSpecError, match="unknown op"):
            TenantSpec(name="m", mix={"upsert": 1.0}).validate()

    def test_default_mix_is_churn_free(self):
        # A delete permanently removes a record from the synthesized key
        # window, so the default mix must not include churn ops.
        assert "delete" not in DEFAULT_MIX
        assert "insert" not in DEFAULT_MIX

    def test_expected_total_ops_flat(self):
        spec = minimal(curve=RateCurve(base_rate=10.0), duration_s=100.0)
        assert spec.expected_total_ops() == pytest.approx(1000.0, rel=1e-3)

    def test_with_overrides(self):
        spec = minimal(curve=RateCurve(base_rate=10.0))
        scaled = spec.with_overrides(binding="raw", duration_s=30.0, scale=2.0)
        assert scaled.binding == "raw"
        assert scaled.duration_s == 30.0
        assert scaled.curve.base_rate == 20.0
        # The original is untouched (specs are frozen).
        assert spec.binding == "txn" and spec.curve.base_rate == 10.0


class TestSpecFromDict:
    def test_round_trip_via_to_dict(self):
        for name in scenario_names():
            spec = SCENARIOS[name]
            rebuilt = synth_spec_from_dict(spec.to_dict(), source=name)
            assert rebuilt == spec

    def test_requires_name_duration_users(self):
        with pytest.raises(SynthSpecError, match="'name'"):
            synth_spec_from_dict({"duration_s": 1.0, "users": 1})
        with pytest.raises(SynthSpecError, match="'duration_s'"):
            synth_spec_from_dict({"name": "x", "users": 1})
        with pytest.raises(SynthSpecError, match="'users'"):
            synth_spec_from_dict({"name": "x", "duration_s": 1.0})

    def test_unknown_top_level_key(self):
        with pytest.raises(SynthSpecError, match="unknown keys.*'durations'"):
            synth_spec_from_dict(
                {"name": "x", "duration_s": 1.0, "users": 1, "durations": 2}
            )

    def test_unknown_nested_keys(self):
        base = {"name": "x", "duration_s": 1.0, "users": 1}
        with pytest.raises(SynthSpecError, match="arrival.*unknown keys"):
            synth_spec_from_dict({**base, "arrival": {"rate": 5}})
        with pytest.raises(SynthSpecError, match="keys.*unknown keys"):
            synth_spec_from_dict({**base, "keys": {"dist": "zipfian"}})
        with pytest.raises(SynthSpecError, match=r"tenants\[0\].*unknown keys"):
            synth_spec_from_dict({**base, "tenants": [{"quota": 1}]})
        with pytest.raises(SynthSpecError, match="assertions.*unknown keys"):
            synth_spec_from_dict({**base, "assertions": {"tol": 0.1}})

    def test_spikes_parsed(self):
        spec = synth_spec_from_dict(
            {
                "name": "spiky",
                "duration_s": 100.0,
                "users": 10,
                "arrival": {
                    "base_rate": 10.0,
                    "spikes": [{"at_s": 5.0, "peak_rate": 50.0}],
                },
            }
        )
        assert len(spec.curve.spikes) == 1
        assert spec.curve.spikes[0].peak_rate == 50.0


class TestLoadSynthSpec:
    def test_builtin_scenarios_resolve(self):
        assert scenario_names() == sorted(SCENARIOS)
        for name in scenario_names():
            assert load_synth_spec(name) is SCENARIOS[name]

    def test_unknown_name_lists_scenarios(self):
        with pytest.raises(SynthSpecError, match="no built-in scenario"):
            load_synth_spec("nope")

    def test_json_file(self, tmp_path):
        path = tmp_path / "mini.json"
        path.write_text(json.dumps(
            {"name": "mini", "duration_s": 10.0, "users": 5}))
        spec = load_synth_spec(path)
        assert spec.name == "mini"

    def test_toml_file(self, tmp_path):
        path = tmp_path / "mini.toml"
        path.write_text(
            'name = "mini"\nduration_s = 10.0\nusers = 5\n'
            '[arrival]\nbase_rate = 25.0\n'
        )
        spec = load_synth_spec(path)
        assert spec.curve.base_rate == 25.0

    def test_missing_file(self, tmp_path):
        with pytest.raises(SynthSpecError, match="does not exist"):
            load_synth_spec(tmp_path / "absent.toml")

    def test_committed_mega_campaign_loads(self):
        repo_root = Path(__file__).resolve().parents[2]
        spec = load_synth_spec(
            repo_root / "workloads" / "synth" / "million_user_campaign.toml"
        )
        assert spec.users == 1_000_000
        assert spec.binding == "raw"
        # The headline claim: the curve integrates to >= 10^7 operations.
        assert spec.expected_total_ops() >= 10_000_000
        # Memory must stay O(active_users), far below the population.
        assert spec.active_users <= 10_000
