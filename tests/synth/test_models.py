"""Rate curves, spike segments and arrival processes."""

import itertools
import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synth.models import (
    RateCurve,
    SpikeSegment,
    make_arrivals,
    paced_arrivals,
    poisson_arrivals,
)


def take_until(iterator, end_s):
    return list(itertools.takewhile(lambda t: t <= end_s, iterator))


class TestSpikeSegment:
    def test_trapezoid_shape(self):
        spike = SpikeSegment(at_s=100.0, peak_rate=50.0, ramp_s=10.0,
                             hold_s=20.0, decay_s=40.0)
        assert spike.rate_at(99.0) == 0.0
        assert spike.rate_at(105.0) == pytest.approx(25.0)
        assert spike.rate_at(110.0) == 50.0
        assert spike.rate_at(125.0) == 50.0
        assert spike.rate_at(150.0) == pytest.approx(25.0)
        assert spike.rate_at(170.0) == 0.0
        assert spike.end_s == 170.0

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            SpikeSegment(at_s=-1.0, peak_rate=10.0)
        with pytest.raises(ValueError):
            SpikeSegment(at_s=0.0, peak_rate=0.0)
        with pytest.raises(ValueError):
            SpikeSegment(at_s=0.0, peak_rate=10.0, ramp_s=-1.0)


class TestRateCurve:
    def test_flat_curve(self):
        curve = RateCurve(base_rate=100.0)
        assert curve.rate_at(0.0) == 100.0
        assert curve.rate_at(12345.0) == 100.0
        assert curve.max_rate() == 100.0
        assert curve.expected_ops(0.0, 10.0) == pytest.approx(1000.0)

    def test_diurnal_sine(self):
        curve = RateCurve(base_rate=100.0, diurnal_amplitude=0.5,
                          diurnal_period_s=100.0)
        assert curve.rate_at(0.0) == pytest.approx(100.0)
        assert curve.rate_at(25.0) == pytest.approx(150.0)
        assert curve.rate_at(75.0) == pytest.approx(50.0)
        # One full period integrates the sine away.
        assert curve.expected_ops(0.0, 100.0, samples=400) == pytest.approx(
            10_000.0, rel=1e-3
        )

    def test_spike_is_additive(self):
        curve = RateCurve(
            base_rate=10.0,
            spikes=(SpikeSegment(at_s=0.0, peak_rate=90.0, ramp_s=0.0,
                                 hold_s=10.0, decay_s=0.0),),
        )
        assert curve.rate_at(5.0) == 100.0
        assert curve.rate_at(20.0) == 10.0
        assert curve.max_rate() == 100.0

    def test_max_rate_bounds_rate_at(self):
        curve = RateCurve(
            base_rate=60.0,
            diurnal_amplitude=0.6,
            diurnal_period_s=600.0,
            spikes=(SpikeSegment(at_s=100.0, peak_rate=200.0),),
        )
        bound = curve.max_rate()
        for t in range(0, 700, 7):
            assert curve.rate_at(float(t)) <= bound + 1e-9

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            RateCurve(base_rate=0.0)
        with pytest.raises(ValueError):
            RateCurve(base_rate=10.0, diurnal_amplitude=1.0)
        with pytest.raises(ValueError):
            RateCurve(base_rate=10.0, diurnal_period_s=0.0)


class TestPacedArrivals:
    def test_flat_rate_is_even_pacing(self):
        curve = RateCurve(base_rate=10.0)
        arrivals = take_until(paced_arrivals(curve), 10.0)
        assert len(arrivals) == 100
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        assert all(gap == pytest.approx(0.1) for gap in gaps)

    def test_deterministic(self):
        curve = RateCurve(base_rate=30.0, diurnal_amplitude=0.4,
                          diurnal_period_s=60.0)
        first = take_until(paced_arrivals(curve), 120.0)
        second = take_until(paced_arrivals(curve), 120.0)
        assert first == second

    def test_tracks_curve_integral(self):
        curve = RateCurve(base_rate=50.0, diurnal_amplitude=0.6,
                          diurnal_period_s=300.0)
        arrivals = take_until(paced_arrivals(curve), 300.0)
        expected = curve.expected_ops(0.0, 300.0, samples=600)
        assert len(arrivals) == pytest.approx(expected, rel=0.01)

    def test_scale(self):
        curve = RateCurve(base_rate=10.0)
        # The boundary arrival may land a float ulp past the horizon.
        doubled = take_until(paced_arrivals(curve, scale=2.0), 10.0 + 1e-9)
        assert len(doubled) == 200

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            next(paced_arrivals(RateCurve(base_rate=1.0), scale=0.0))


class TestPoissonArrivals:
    def test_seed_deterministic(self):
        curve = RateCurve(base_rate=40.0, diurnal_amplitude=0.3,
                          diurnal_period_s=120.0)
        first = take_until(poisson_arrivals(curve, random.Random(7)), 60.0)
        second = take_until(poisson_arrivals(curve, random.Random(7)), 60.0)
        assert first == second
        third = take_until(poisson_arrivals(curve, random.Random(8)), 60.0)
        assert first != third

    def test_count_tracks_integral(self):
        curve = RateCurve(base_rate=100.0)
        counts = [
            len(take_until(poisson_arrivals(curve, random.Random(seed)), 100.0))
            for seed in range(5)
        ]
        # 10_000 expected; 5-sigma is ~500.
        for count in counts:
            assert abs(count - 10_000) < 500

    def test_monotone_increasing(self):
        curve = RateCurve(
            base_rate=20.0,
            spikes=(SpikeSegment(at_s=5.0, peak_rate=100.0, ramp_s=1.0,
                                 hold_s=2.0, decay_s=3.0),),
        )
        arrivals = take_until(poisson_arrivals(curve, random.Random(3)), 20.0)
        assert arrivals == sorted(arrivals)
        assert len(arrivals) == len(set(arrivals))


class TestMakeArrivals:
    def test_dispatch(self):
        curve = RateCurve(base_rate=10.0)
        paced = take_until(make_arrivals("paced", curve, random.Random(0)), 5.0)
        assert len(paced) == 50
        poisson = take_until(make_arrivals("poisson", curve, random.Random(0)), 5.0)
        assert poisson  # nonempty, stochastic count

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown arrival kind"):
            make_arrivals("burst", RateCurve(base_rate=1.0), random.Random(0))


class TestArrivalRateProperty:
    """Satellite property: achieved arrival rate stays within tolerance."""

    @settings(max_examples=15, deadline=None)
    @given(
        base=st.floats(min_value=20.0, max_value=200.0),
        amplitude=st.floats(min_value=0.0, max_value=0.8),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_poisson_rate_within_tolerance(self, base, amplitude, seed):
        curve = RateCurve(base_rate=base, diurnal_amplitude=amplitude,
                          diurnal_period_s=200.0)
        horizon = 200.0
        arrivals = take_until(
            poisson_arrivals(curve, random.Random(seed)), horizon
        )
        expected = curve.expected_ops(0.0, horizon, samples=400)
        # 6-sigma band around the Poisson mean.
        assert abs(len(arrivals) - expected) < 6.0 * math.sqrt(expected) + 1

    @settings(max_examples=15, deadline=None)
    @given(
        base=st.floats(min_value=20.0, max_value=200.0),
        amplitude=st.floats(min_value=0.0, max_value=0.8),
    )
    def test_paced_rate_within_tolerance(self, base, amplitude):
        curve = RateCurve(base_rate=base, diurnal_amplitude=amplitude,
                          diurnal_period_s=200.0)
        horizon = 200.0
        arrivals = take_until(paced_arrivals(curve), horizon)
        expected = curve.expected_ops(0.0, horizon, samples=400)
        assert len(arrivals) == pytest.approx(expected, rel=0.02)
