"""Synthesis campaigns and the ``ycsbt synth`` sub-command."""

import dataclasses
import json

import pytest

import repro.synth.campaign as campaign_module
from repro.core.cli import main
from repro.synth.campaign import (
    SynthCampaignResult,
    run_synth_campaign,
    write_synth_violation_trace,
)
from repro.synth.engine import AssertionOutcome, SynthRunResult
from repro.synth.models import RateCurve
from repro.synth.spec import SynthSpec, scenario_names


def tiny_spec(name="tiny", **overrides):
    values = {
        "name": name,
        "duration_s": 30.0,
        "users": 500,
        "active_users": 128,
        "records": 200,
        "binding": "raw",
        "curve": RateCurve(base_rate=20.0),
    }
    values.update(overrides)
    return SynthSpec(**values)


def fake_result(passed, scenario="steady", binding="raw", seed=9):
    outcome = AssertionOutcome(
        name="rate-conformance", passed=passed,
        detail="fabricated for the artifact test",
    )
    return SynthRunResult(
        scenario=scenario,
        binding=binding,
        seed=seed,
        operations=100,
        failed_operations=0,
        throttled_operations=0,
        gamma=0.0,
        validation_passed=True,
        assertions=[outcome],
        arrivals_by_bucket=[50, 50],
        executed_by_bucket=[50, 50],
        target_by_bucket=[50.0, 50.0],
        tenant_offered={"default": 100},
        tenant_admitted={"default": 100},
        tenant_throttled={"default": 0},
        peak_user_states=10,
        distinct_users=42,
        virtual_time_s=30.0,
        wall_time_s=0.1,
        counters={},
    )


class TestCampaign:
    def test_sweep_shape_and_summary(self):
        spec = tiny_spec()
        result = run_synth_campaign([spec], seeds=[0, 1], bindings=["raw", "txn"])
        assert len(result.runs) == 4
        assert not result.violations
        assert {run.binding for run in result.runs} == {"raw", "txn"}
        assert "tiny: 4 runs, 0 violations" in result.summary()

    def test_spec_objects_names_and_callbacks(self):
        seen = []
        result = run_synth_campaign(
            [tiny_spec()], seeds=[3], on_result=seen.append
        )
        assert len(seen) == len(result.runs) == 1
        # bindings=None uses the spec's own binding.
        assert result.runs[0].binding == "raw"

    def test_violation_writes_artifact(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            campaign_module, "run_synth",
            lambda spec, binding=None, seed=0: fake_result(passed=False, seed=seed),
        )
        result = run_synth_campaign([tiny_spec()], seeds=[9], out_dir=tmp_path)
        assert len(result.violations) == 1
        assert len(result.artifacts) == 1
        payload = json.loads(result.artifacts[0].read_text())
        assert payload["kind"] == "ycsbt-synth-violation"
        assert payload["seed"] == 9
        assert "--start-seed 9" in payload["replay"]["command"]
        assert payload["assertions"][0]["passed"] is False

    def test_no_artifact_when_passing(self, tmp_path):
        result = run_synth_campaign([tiny_spec()], seeds=[0], out_dir=tmp_path)
        assert not result.violations
        assert not result.artifacts
        assert not list(tmp_path.glob("synth-violation-*.json"))

    def test_trace_includes_builtin_spec(self, tmp_path):
        path = write_synth_violation_trace(fake_result(passed=False), tmp_path)
        payload = json.loads(path.read_text())
        # "steady" is a built-in scenario, so the full spec rides along
        # for replay without access to the original process.
        assert payload["spec"]["name"] == "steady"


class TestSynthCommand:
    def test_list_scenarios(self, capsys):
        assert main(["synth", "--list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_spec_file_run(self, tmp_path, capsys):
        path = tmp_path / "mini.json"
        path.write_text(json.dumps({
            "name": "mini",
            "duration_s": 20.0,
            "users": 200,
            "records": 100,
            "binding": "raw",
            "arrival": {"base_rate": 15.0},
            "assertions": {"min_bucket_expected": 0},
        }))
        exit_code = main([
            "synth", "--spec", str(path), "--seeds", "2",
            "--out", str(tmp_path / "artifacts"),
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert captured.err.count("seed=") == 2
        assert "mini: 2 runs, 0 violations" in captured.out

    def test_scenario_with_duration_override(self, capsys):
        exit_code = main([
            "synth", "--scenario", "steady", "--db", "raw",
            "--duration", "20", "--seeds", "1",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "steady: 1 runs" in captured.out

    def test_violation_fails_command(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setattr(
            campaign_module, "run_synth",
            lambda spec, binding=None, seed=0: fake_result(
                passed=False, scenario=spec.name, binding=binding or spec.binding,
                seed=seed,
            ),
        )
        exit_code = main([
            "synth", "--scenario", "steady", "--seeds", "1",
            "--out", str(tmp_path),
        ])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "violation trace:" in captured.out
        assert "rate-conformance" in captured.err

    def test_rejects_bad_seed_count(self):
        with pytest.raises(SystemExit):
            main(["synth", "--seeds", "0"])
