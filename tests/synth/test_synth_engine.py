"""The synthesis engine: determinism, assertions, memory bounds."""

import dataclasses

import pytest

from repro.synth.engine import run_synth
from repro.synth.models import RateCurve
from repro.synth.spec import SynthSpec, TenantSpec


def quick_spec(**overrides):
    """A small, fast campaign (seconds of virtual time, < 1 s wall)."""
    values = {
        "name": "quick",
        "duration_s": 60.0,
        "users": 2_000,
        "active_users": 256,
        "records": 400,
        "binding": "raw",
        "curve": RateCurve(base_rate=30.0),
    }
    values.update(overrides)
    return SynthSpec(**values)


def result_payload(result):
    """Everything seed-determined (wall time is harness noise)."""
    payload = dataclasses.asdict(result)
    payload.pop("wall_time_s")
    return payload


class TestDeterminism:
    def test_same_seed_byte_identical(self):
        spec = quick_spec()
        first = result_payload(run_synth(spec, seed=3))
        second = result_payload(run_synth(spec, seed=3))
        assert first == second

    def test_different_seeds_differ(self):
        spec = quick_spec()
        first = result_payload(run_synth(spec, seed=3))
        second = result_payload(run_synth(spec, seed=4))
        assert first != second

    def test_poisson_arrivals_seed_stable(self):
        spec = quick_spec(arrival_kind="poisson")
        first = result_payload(run_synth(spec, seed=11))
        second = result_payload(run_synth(spec, seed=11))
        assert first == second


class TestAssertions:
    def test_quick_campaign_conforms(self):
        result = run_synth(quick_spec(), seed=0)
        assert result.passed and not result.violation
        assert {a.name for a in result.assertions} >= {
            "rate-conformance", "zero-gamma", "bounded-user-state",
        }
        assert result.gamma == 0.0
        assert result.validation_passed
        assert result.failed_operations == 0

    def test_txn_binding_zero_gamma(self):
        result = run_synth(quick_spec(binding="txn"), seed=1)
        assert result.passed
        assert result.gamma == 0.0

    def test_rate_conformance_measures_offered_load(self):
        # Conformance is on *offered* arrivals, so a tight tenant ceiling
        # throttles execution without failing conformance — the ceiling
        # gets its own assertion instead.
        spec = quick_spec(
            tenants=(TenantSpec(name="capped", rate_limit=3.0, burst=3.0),),
        )
        result = run_synth(spec, seed=0)
        assert result.throttled_operations > 0
        assert result.operations < sum(result.arrivals_by_bucket)
        conformance = [a for a in result.assertions
                       if a.name == "rate-conformance"]
        assert conformance and conformance[0].passed

    def test_ceiling_respected_when_limited(self):
        spec = quick_spec(
            tenants=(
                TenantSpec(name="open", weight=0.8),
                TenantSpec(name="capped", weight=0.2, rate_limit=2.0,
                           burst=2.0),
            ),
        )
        result = run_synth(spec, seed=2)
        ceiling = [a for a in result.assertions
                   if a.name == "rate-ceiling:capped"]
        assert ceiling and all(a.passed for a in ceiling)
        assert result.tenant_throttled["capped"] > 0
        assert result.tenant_throttled["open"] == 0

    def test_churn_mix_stays_closed(self):
        # Deletes move balances to escrow, so even a churn-heavy tenant
        # keeps the economy closed — it just pays with NOT_FOUND failures
        # as the fixed key window hollows out (why DEFAULT_MIX is
        # churn-free).
        spec = quick_spec(
            tenants=(TenantSpec(name="churn",
                                mix={"read": 0.5, "delete": 0.5}),),
        )
        result = run_synth(spec, seed=0)
        assert result.gamma == 0.0 and result.validation_passed
        assert result.failed_operations > 0


class TestMemoryBound:
    def test_resident_users_capped(self):
        spec = quick_spec(users=5_000, active_users=64)
        result = run_synth(spec, seed=0)
        assert result.peak_user_states <= 64
        # Far more distinct users showed up than were ever resident.
        assert result.distinct_users > 64

    def test_bounded_user_state_assertion(self):
        result = run_synth(quick_spec(users=5_000, active_users=64), seed=0)
        bounded = [a for a in result.assertions if a.name == "bounded-user-state"]
        assert bounded and bounded[0].passed


class TestHistograms:
    def test_hdr_payloads_attached(self):
        result = run_synth(quick_spec(), seed=0)
        assert result.histograms
        for operation, payload in result.histograms.items():
            assert payload["type"] == "hdrhistogram"
            assert payload["operation"] == operation
            assert payload["count"] > 0


class TestDrift:
    def test_drift_changes_key_stream(self):
        static = quick_spec(name="still")
        drifting = quick_spec(name="drifty", drift_period_s=10.0)
        a = run_synth(static, seed=5)
        b = run_synth(drifting, seed=5)
        # Same seed, same arrivals — only the rank->key mapping rotates.
        assert a.operations == b.operations
        assert result_payload(a) != result_payload(b)
        assert b.passed
