"""Node behaviour: leader logging, follower apply, roles, /repl dispatch."""

import pytest

from repro.kvstore.base import VersionedValue
from repro.replication import (
    LeaderStoreAdapter,
    NodeRole,
    NotLeaderError,
    ReplicationNode,
)


def make_leader(name="leader", term=1):
    clock = [0.0]
    node = ReplicationNode(name, clock=lambda: clock[0])
    node.promote(term)
    return node, clock


def make_follower(name="follower", term=1, leader="leader"):
    clock = [0.0]
    node = ReplicationNode(name, clock=lambda: clock[0])
    node.demote(term, leader)
    return node, clock


def ship_all(leader, follower):
    records, frontier, last_seq, term = leader.records_since(follower.applied_seq)
    return follower.append_records(records, frontier, last_seq, term, leader.name)


class TestLeaderWritePath:
    def test_every_write_is_logged_with_contiguous_seq(self):
        node, _ = make_leader()
        node.leader_put("a", {"f": "1"})
        node.leader_put_if_version("b", {"f": "2"}, None)
        node.leader_delete("a")
        records = node.log.snapshot()
        assert [r.seq for r in records] == [1, 2, 3]
        assert records[2].value is None  # tombstone

    def test_failed_conditional_writes_are_not_logged(self):
        node, _ = make_leader()
        node.leader_put("a", {"f": "1"})
        assert node.leader_put_if_version("a", {"f": "x"}, 99) is None
        assert node.leader_delete_if_version("a", 99) is None
        assert node.leader_delete("missing") is False
        assert node.log.last_seq == 1

    def test_tombstones_carry_monotonic_versions(self):
        node, _ = make_leader()
        version = node.leader_put("a", {"f": "1"})
        node.leader_put("a", {"f": "2"})
        node.leader_delete("a")
        tombstone = node.log.snapshot()[-1]
        assert tombstone.version == version + 2  # removed_version + 1, never 0

    def test_followers_refuse_client_writes(self):
        node, _ = make_follower()
        with pytest.raises(NotLeaderError):
            node.leader_put("a", {})

    def test_put_versioned_is_logged_exactly(self):
        node, _ = make_leader()
        assert node.leader_put_versioned("m", VersionedValue({"f": "v"}, 41)) is True
        record = node.log.snapshot()[-1]
        assert (record.version, record.value) == (41, {"f": "v"})


class TestFollowerApply:
    def test_apply_mirrors_values_and_versions(self):
        leader, _ = make_leader()
        follower, _ = make_follower()
        leader.leader_put("a", {"f": "1"})
        leader.leader_put("a", {"f": "2"})
        response = ship_all(leader, follower)
        assert response["ok"] is True
        mirrored = follower.store.get_with_meta("a")
        expected = leader.store.get_with_meta("a")
        assert mirrored == expected  # value AND version (ETag) identical

    def test_apply_is_idempotent(self):
        leader, _ = make_leader()
        follower, _ = make_follower()
        leader.leader_put("a", {"f": "1"})
        records, frontier, last_seq, term = leader.records_since(0)
        follower.append_records(records, frontier, last_seq, term, "leader")
        again = follower.append_records(records, frontier, last_seq, term, "leader")
        assert again == {"ok": True, "applied_seq": 1, "term": 1}
        assert follower.store.get("a") == {"f": "1"}

    def test_gap_is_nacked_with_rewind_position(self):
        leader, _ = make_leader()
        follower, _ = make_follower()
        for index in range(3):
            leader.leader_put(f"k{index}", {})
        records, frontier, last_seq, term = leader.records_since(0)
        response = follower.append_records(records[2:], frontier, last_seq, term, "leader")
        assert response == {"ok": False, "reason": "gap", "applied_seq": 0, "term": 1}

    def test_stale_term_is_rejected(self):
        leader, _ = make_leader(term=1)
        follower, _ = make_follower(term=5)
        leader.leader_put("a", {})
        response = ship_all(leader, follower)
        assert response["ok"] is False
        assert response["reason"] == "stale-term"

    def test_higher_term_steps_a_leader_down(self):
        old_leader, _ = make_leader("old", term=1)
        new_leader, _ = make_leader("new", term=2)
        new_leader.leader_put("a", {"f": "new"})
        response = ship_all(new_leader, old_leader)
        # the old leader's log was empty, so the new history applies cleanly
        assert response["ok"] is True
        assert old_leader.role is NodeRole.FOLLOWER
        assert old_leader.term == 2

    def test_delete_replicates_as_tombstone(self):
        leader, _ = make_leader()
        follower, _ = make_follower()
        leader.leader_put("a", {"f": "1"})
        leader.leader_delete("a")
        ship_all(leader, follower)
        assert follower.store.get("a") is None

    def test_frontier_only_advances_when_caught_up(self):
        leader, lclock = make_leader()
        follower, fclock = make_follower()
        leader.leader_put("a", {})
        leader.leader_put("b", {})
        lclock[0] = fclock[0] = 5.0
        records, frontier, last_seq, term = leader.records_since(0)
        # Ship only the first record but the full batch's cut point: the
        # follower holds a prefix and must NOT look fresh.
        follower.append_records(records[:1], frontier, last_seq, term, "leader")
        assert follower.status().frontier_ts is None
        assert follower.staleness_s() is None
        follower.append_records(records[1:], frontier, last_seq, term, "leader")
        assert follower.status().frontier_ts == 5.0
        fclock[0] = 7.0
        assert follower.staleness_s() == pytest.approx(2.0)


class TestRolesAndStatus:
    def test_leader_is_always_fresh(self):
        node, _ = make_leader()
        assert node.staleness_s() == 0.0

    def test_promotion_requires_higher_term(self):
        node, _ = make_follower(term=3)
        with pytest.raises(ValueError):
            node.promote(3)
        node.promote(4)
        assert node.role is NodeRole.LEADER

    def test_resync_replaces_divergent_state(self):
        node, _ = make_follower()
        stale_leader, _ = make_leader("stale", term=1)
        stale_leader.leader_put("lost", {"f": "x"})
        ship_all(stale_leader, node)
        new_leader, _ = make_leader("new", term=2)
        new_leader.leader_put("kept", {"f": "y"})
        node.resync_from(new_leader.log.snapshot(), 2, "new")
        assert node.store.get("lost") is None
        assert node.store.get("kept") == {"f": "y"}
        assert node.log.snapshot() == new_leader.log.snapshot()


class TestHandleRepl:
    def test_status_append_since_round_trip(self):
        leader, _ = make_leader()
        follower, _ = make_follower()
        leader.leader_put("a", {"f": "1"})
        status, payload = leader.handle_repl("since", {"seq": 0, "limit": None})
        assert status == 200
        status, response = follower.handle_repl(
            "append",
            {
                "records": payload["records"],
                "frontier_ts": payload["frontier_ts"],
                "leader_last_seq": payload["leader_last_seq"],
                "term": payload["term"],
                "leader": "leader",
            },
        )
        assert status == 200 and response["applied_seq"] == 1
        status, doc = follower.handle_repl("status", {})
        assert status == 200 and doc["applied_seq"] == 1

    def test_nacks_are_409(self):
        follower, _ = make_follower(term=9)
        status, response = follower.handle_repl(
            "append",
            {"records": [], "frontier_ts": 0.0, "leader_last_seq": 0,
             "term": 1, "leader": "old"},
        )
        assert status == 409 and response["reason"] == "stale-term"

    def test_unknown_verb_is_404(self):
        node, _ = make_leader()
        status, _ = node.handle_repl("nonsense", {})
        assert status == 404


class TestLeaderStoreAdapter:
    def test_adapter_logs_every_write_kind(self):
        node, _ = make_leader()
        adapter = LeaderStoreAdapter(node)
        adapter.put("a", {"f": "1"})
        adapter.put_if_version("b", {"f": "2"}, None)
        adapter.put_batch([("c", {"f": "3"}), ("d", {"f": "4"})])
        adapter.delete("a")
        assert node.log.last_seq == 5
        assert adapter.get("b") == {"f": "2"}
        assert adapter.size() == 3

    def test_adapter_refuses_writes_after_demotion(self):
        node, _ = make_leader()
        adapter = LeaderStoreAdapter(node)
        adapter.put("a", {})
        node.demote(2, "other")
        with pytest.raises(NotLeaderError):
            adapter.put("b", {})
        assert adapter.get("a") == {}  # reads still serve
