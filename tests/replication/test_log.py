"""Replication log unit tests: sequencing, slicing, wire format."""

import pytest

from repro.replication import ReplicationLog, ReplicationRecord


def make_record(seq, term=1, key="k", value=None, version=1):
    if value is None:
        value = {"f": str(seq)}
    return ReplicationRecord(seq, term, key, value, version, stamped_at=float(seq))


class TestReplicationLog:
    def test_append_assigns_contiguous_seqs_from_one(self):
        log = ReplicationLog()
        first = log.append(1, "a", {"f": "1"}, 1, 0.0)
        second = log.append(1, "b", {"f": "2"}, 1, 0.1)
        assert (first.seq, second.seq) == (1, 2)
        assert log.last_seq == 2

    def test_since_returns_strict_suffix(self):
        log = ReplicationLog()
        for index in range(5):
            log.append(1, f"k{index}", {}, 1, 0.0)
        assert [r.seq for r in log.since(2)] == [3, 4, 5]
        assert [r.seq for r in log.since(2, limit=2)] == [3, 4]
        assert log.since(5) == []
        assert [r.seq for r in log.since(0)] == [1, 2, 3, 4, 5]

    def test_append_record_rejects_gaps_and_replays(self):
        log = ReplicationLog()
        log.append_record(make_record(1))
        with pytest.raises(ValueError):
            log.append_record(make_record(3))
        with pytest.raises(ValueError):
            log.append_record(make_record(1))
        log.append_record(make_record(2))
        assert log.last_seq == 2

    def test_record_at(self):
        log = ReplicationLog()
        log.append(1, "a", {"f": "x"}, 1, 0.0)
        assert log.record_at(1).key == "a"
        assert log.record_at(0) is None
        assert log.record_at(2) is None

    def test_tombstones_round_trip_the_wire(self):
        record = ReplicationRecord(7, 2, "gone", None, 4, 12.5)
        assert ReplicationRecord.from_wire(record.to_wire()) == record

    def test_puts_round_trip_the_wire(self):
        record = make_record(3, term=2, key="kéy", version=9)
        assert ReplicationRecord.from_wire(record.to_wire()) == record

    def test_last_term_tracks_regimes(self):
        log = ReplicationLog()
        assert log.last_term == 0
        log.append(1, "a", {}, 1, 0.0)
        log.append(3, "b", {}, 1, 0.0)
        assert log.last_term == 3

    def test_clear(self):
        log = ReplicationLog()
        log.append(1, "a", {}, 1, 0.0)
        log.clear()
        assert log.last_seq == 0
        assert len(log) == 0
