"""The consistency_frontier experiment: shape, monotonicity, spec wiring."""

import pytest

from repro.experiments.runners import (
    RUNNERS,
    SpecValidationError,
    run_consistency_frontier,
)
from repro.experiments.spec import builtin_spec

LAGS = (5, 20, 80, 160, 280)


@pytest.fixture(scope="module")
def frontier():
    return run_consistency_frontier(seed=800, lag_ms=LAGS)


class TestFrontierShape:
    def test_one_series_per_level_one_point_per_lag(self, frontier):
        assert [series.label for series in frontier.series] == [
            "strong", "read_your_writes", "bounded_staleness",
        ]
        for series in frontier.series:
            assert series.xs() == [float(lag) for lag in LAGS]

    def test_strong_pins_anomaly_zero_at_every_lag(self, frontier):
        strong = frontier.series_by_label("strong")
        for point in strong.points:
            assert point.anomaly_score == 0.0
            assert point.extra["follower_read_fraction"] == 0.0
            assert point.extra["bounded_violations"] == 0

    @pytest.mark.parametrize("level", ["read_your_writes", "bounded_staleness"])
    def test_anomaly_grows_monotonically_with_lag(self, frontier, level):
        scores = frontier.series_by_label(level).anomaly_scores()
        assert scores == sorted(scores)
        assert scores[0] > 0.0  # lagged followers leak staleness immediately
        assert scores[-1] > scores[0]

    def test_promised_guarantees_cost_zero_violations(self, frontier):
        for point in frontier.series_by_label("read_your_writes").points:
            assert point.extra["ryw_violations"] == 0
            assert point.extra["monotonic_violations"] == 0
        for point in frontier.series_by_label("bounded_staleness").points:
            assert point.extra["bounded_violations"] == 0

    def test_relaxed_levels_offload_the_leader(self, frontier):
        for level in ("read_your_writes", "bounded_staleness"):
            for point in frontier.series_by_label(level).points:
                assert point.extra["follower_read_fraction"] > 0.5


class TestSpecWiring:
    def test_runner_is_registered_deterministic(self):
        info = RUNNERS["consistency_frontier"]
        assert info.deterministic
        assert info.engine == "sim"
        assert info.x_label == "replication lag (ms)"

    def test_builtin_spec_validates_and_stays_inside_the_bound(self):
        spec = builtin_spec("consistency_frontier")
        assert spec.deterministic
        bound = spec.params["staleness_bound_ms"]
        # lag beyond the bound routes reads back to the leader and the
        # anomaly curve would bend down: the sweep must stay at/below it
        assert all(lag <= bound for lag in spec.params["lag_ms"])

    def test_param_validation_rejects_bad_cells(self):
        with pytest.raises(SpecValidationError):
            run_consistency_frontier(lag_ms=(0,))
        with pytest.raises(SpecValidationError):
            run_consistency_frontier(levels=("eventual",))
        with pytest.raises(SpecValidationError):
            run_consistency_frontier(staleness_bound_ms=-5)
        with pytest.raises(SpecValidationError):
            run_consistency_frontier(sessions=0)

    def test_same_seed_reproduces_the_frontier_exactly(self, frontier):
        again = run_consistency_frontier(seed=800, lag_ms=LAGS)
        for first, second in zip(frontier.series, again.series):
            assert [p.anomaly_score for p in first.points] == [
                p.anomaly_score for p in second.points
            ]
            assert [p.throughput for p in first.points] == [
                p.throughput for p in second.points
            ]
