"""ReplicaRoutedStore: session admission, level routing, failover retry."""

import random

import pytest

from repro.kvstore.base import StoreUnavailable, VersionedValue
from repro.replication import (
    ConsistencyLevel,
    InProcessReplicaSet,
    LeaderStoreAdapter,
    ReplicaHandle,
    ReplicaRoutedStore,
    ReplicaSession,
    ReplicationNode,
    StaticReplicaSet,
)


def make_set(clock=None, **kwargs):
    cell = [0.0]
    tick = clock if clock is not None else (lambda: cell[0])
    replica_set = InProcessReplicaSet(clock=tick, **kwargs)
    return replica_set, cell


class TestReplicaSession:
    def test_fresh_key_admits_anything(self):
        session = ReplicaSession()
        assert session.admits("k", None)
        assert session.admits("k", VersionedValue({}, 3))

    def test_own_write_sets_the_floor(self):
        session = ReplicaSession()
        session.note_write("k", 5)
        assert not session.admits("k", VersionedValue({}, 4))
        assert not session.admits("k", None)
        assert session.admits("k", VersionedValue({}, 5))
        assert session.admits("k", VersionedValue({}, 6))

    def test_observations_are_monotonic(self):
        session = ReplicaSession()
        session.note_observed("k", VersionedValue({}, 3))
        assert not session.admits("k", VersionedValue({}, 2))
        assert session.admits("k", VersionedValue({}, 3))

    def test_deleted_keys_are_pinned_to_the_leader(self):
        session = ReplicaSession()
        session.note_write("k", 5)
        session.note_delete("k")
        # version counters restart after delete; order is gone, pin wins
        assert not session.admits("k", None)
        assert not session.admits("k", VersionedValue({}, 1))
        session.note_write("k", 1)  # re-created by this session
        assert not session.admits("k", VersionedValue({}, 1))  # stays pinned

    def test_observed_disappearance_pins_too(self):
        session = ReplicaSession()
        session.note_observed("k", VersionedValue({}, 2))
        session.note_observed("k", None)  # someone else deleted it
        assert not session.admits("k", VersionedValue({}, 9))


class TestRoutingLevels:
    def test_strong_reads_only_the_leader(self):
        replica_set, _ = make_set()
        routed = replica_set.routed(ConsistencyLevel.STRONG)
        routed.put("k", {"f": "1"})
        assert routed.get("k") == {"f": "1"}
        counters = routed.counters()
        assert counters["REPL-LEADER-READS"] == 1
        assert "REPL-FOLLOWER-READS" not in counters

    def test_ryw_falls_back_until_follower_catches_up(self):
        replica_set, _ = make_set()
        routed = replica_set.routed(ConsistencyLevel.READ_YOUR_WRITES)
        routed.put("k", {"f": "1"})
        assert routed.get("k") == {"f": "1"}  # follower stale -> leader
        assert routed.counters()["REPL-FALLBACK-SESSION"] == 1
        replica_set.flush()
        assert routed.get("k") == {"f": "1"}  # now served by the follower
        assert routed.counters()["REPL-FOLLOWER-READS"] == 1

    def test_ryw_admits_unseen_keys_from_any_follower(self):
        replica_set, _ = make_set()
        strong = replica_set.routed(ConsistencyLevel.STRONG)
        strong.put("other", {"f": "x"})
        ryw = replica_set.routed(ConsistencyLevel.READ_YOUR_WRITES)
        # this session never touched "other": a stale follower answer
        # (absent key) violates nothing
        assert ryw.get("other") is None
        assert ryw.counters()["REPL-FOLLOWER-READS"] == 1

    def test_bounded_staleness_routes_by_frontier_age(self):
        replica_set, cell = make_set()
        routed = replica_set.routed(
            ConsistencyLevel.BOUNDED_STALENESS, staleness_bound_s=1.0
        )
        routed.put("k", {"f": "old"})
        replica_set.flush()  # frontier at t=0
        routed.put("k", {"f": "new"})  # not shipped
        cell[0] = 0.5  # follower 0.5s stale, bound 1.0 -> follower serves
        assert routed.get("k") == {"f": "old"}
        assert routed.counters()["REPL-FOLLOWER-READS"] == 1
        cell[0] = 2.0  # beyond the bound -> leader
        assert routed.get("k") == {"f": "new"}
        assert routed.counters()["REPL-FALLBACK-STALE"] == 1

    def test_bounded_never_serves_a_follower_that_never_heard(self):
        replica_set, _ = make_set()
        routed = replica_set.routed(
            ConsistencyLevel.BOUNDED_STALENESS, staleness_bound_s=100.0
        )
        routed.put("k", {"f": "1"})
        # no ship yet: unknown staleness reads as unbounded, not fresh
        assert routed.get("k") == {"f": "1"}
        assert routed.counters()["REPL-FALLBACK-STALE"] == 1

    def test_scans_and_size_always_use_the_leader(self):
        replica_set, _ = make_set()
        routed = replica_set.routed(ConsistencyLevel.BOUNDED_STALENESS)
        routed.put("a", {"f": "1"})
        routed.put("b", {"f": "2"})
        assert [key for key, _ in routed.scan("a", 5)] == ["a", "b"]
        assert routed.size() == 2
        assert list(routed.keys()) == ["a", "b"]

    def test_rejects_negative_bound(self):
        replica_set, _ = make_set()
        with pytest.raises(ValueError):
            replica_set.routed(
                ConsistencyLevel.BOUNDED_STALENESS, staleness_bound_s=-1
            )


class _FailingOnce:
    """A leader store stand-in that dies once, then a new handle works."""

    def __init__(self):
        self.calls = 0

    def get_with_meta(self, key):
        self.calls += 1
        raise StoreUnavailable("leader crashed")


class TestFailoverRetry:
    def test_leader_failure_triggers_refresh_and_one_retry(self):
        old = ReplicationNode("old")
        old.promote(1)
        new = ReplicationNode("new")
        new.promote(2)
        new.leader_put("k", {"f": "survivor"})
        failing = _FailingOnce()
        view = StaticReplicaSet(
            ReplicaHandle("old", failing, old), [ReplicaHandle("f", new.store, new)]
        )
        original_refresh = view.refresh

        def refresh():
            view.set_leader(ReplicaHandle("new", LeaderStoreAdapter(new), new))
            original_refresh()

        view.refresh = refresh
        routed = ReplicaRoutedStore(view, ConsistencyLevel.STRONG, rng=random.Random(0))
        assert routed.get("k") == {"f": "survivor"}
        assert failing.calls == 1
        assert routed.counters()["REPL-LEADER-FAILOVERS"] == 1
