"""Property tests: prefix invariant, apply idempotency, anti-entropy.

Random interleavings of leader writes and partial/duplicated log ships
can never make a follower hold anything but a prefix of the leader's
log, and anti-entropy from any lag position is idempotent.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.replication import ReplicationNode, anti_entropy

KEYS = [f"k{index}" for index in range(4)]

# Leader-side ops: puts, deletes, conditional deletes.
write_op = st.one_of(
    st.tuples(st.just("put"), st.sampled_from(KEYS), st.integers(0, 9)),
    st.tuples(st.just("delete"), st.sampled_from(KEYS)),
)

# One step of the generated schedule: a leader write, or a (possibly
# partial, possibly duplicated) ship of up to `limit` records to one of
# two followers.
step = st.one_of(
    st.tuples(st.just("write"), write_op),
    st.tuples(st.just("ship"), st.integers(0, 1), st.integers(1, 5)),
    st.tuples(st.just("reship"), st.integers(0, 1), st.integers(1, 5)),
)


def make_pair(follower_count=2):
    leader = ReplicationNode("leader", clock=lambda: 0.0)
    leader.promote(1)
    followers = []
    for index in range(follower_count):
        node = ReplicationNode(f"f{index}", clock=lambda: 0.0)
        node.demote(1, "leader")
        followers.append(node)
    return leader, followers


def apply_write(leader, op):
    if op[0] == "put":
        leader.leader_put(op[1], {"v": str(op[2])})
    else:
        leader.leader_delete(op[1])


def ship(leader, follower, limit, rewind=0):
    """Ship up to ``limit`` records starting ``rewind`` back (a re-send)."""
    start = max(0, follower.applied_seq - rewind)
    records, frontier, last_seq, term = leader.records_since(start, limit=limit)
    follower.append_records(records, frontier, last_seq, term, leader.name)


def assert_prefix(leader, follower):
    leader_log = leader.log.snapshot()
    follower_log = follower.log.snapshot()
    assert follower_log == leader_log[: len(follower_log)]


class TestPrefixInvariant:
    @given(st.lists(step, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_followers_always_hold_a_leader_log_prefix(self, schedule):
        leader, followers = make_pair()
        for action in schedule:
            if action[0] == "write":
                apply_write(leader, action[1])
            elif action[0] == "ship":
                ship(leader, followers[action[1]], limit=action[2])
            else:  # reship: duplicate delivery of already-applied records
                ship(leader, followers[action[1]], limit=action[2], rewind=2)
            for follower in followers:
                assert_prefix(leader, follower)

    @given(st.lists(write_op, min_size=1, max_size=40), st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_fully_shipped_follower_mirrors_the_leader_exactly(self, ops, limit):
        leader, followers = make_pair(follower_count=1)
        follower = followers[0]
        for op in ops:
            apply_write(leader, op)
        while follower.applied_seq < leader.log.last_seq:
            before = follower.applied_seq
            ship(leader, follower, limit=limit)
            assert follower.applied_seq > before  # progress every round
        for key in KEYS:
            assert follower.store.get_with_meta(key) == leader.store.get_with_meta(key)


class TestAntiEntropy:
    @given(st.lists(write_op, max_size=40), st.integers(0, 40), st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_anti_entropy_is_idempotent(self, ops, pre_shipped, batch):
        leader, followers = make_pair(follower_count=1)
        follower = followers[0]
        for op in ops:
            apply_write(leader, op)
        # Put the follower at an arbitrary lag position first.
        ship(leader, follower, limit=pre_shipped)
        moved = anti_entropy(leader, follower, batch=batch)
        assert moved == leader.log.last_seq - min(pre_shipped, leader.log.last_seq)
        state = [follower.store.get_with_meta(key) for key in KEYS]
        assert anti_entropy(leader, follower, batch=batch) == 0  # second pass: no-op
        assert [follower.store.get_with_meta(key) for key in KEYS] == state
        assert_prefix(leader, follower)
        assert follower.applied_seq == leader.log.last_seq
