"""The checker itself must catch planted violations (tests of the oracle)."""

from repro.replication import History


def write(history, session, key, at):
    marker = history.next_marker()
    history.note_write(session, key, marker, at)
    return marker


class TestCleanHistories:
    def test_empty_history_is_clean(self):
        report = History().check(bound_s=0.0)
        assert report.violation_count == 0
        assert report.anomaly_score == 0.0

    def test_perfectly_fresh_reads_are_clean_under_the_strong_check(self):
        history = History()
        m1 = write(history, "s1", "k", at=1.0)
        history.note_read("s1", "k", m1, at=2.0, source="leader")
        m2 = write(history, "s2", "k", at=3.0)
        history.note_read("s1", "k", m2, at=4.0, source="leader")
        report = history.check(bound_s=0.0)
        assert report.violation_count == 0
        assert report.stale_reads == 0
        assert report.reads_by_source == {"leader": 2}


class TestPlantedViolations:
    def test_missing_own_write_is_a_ryw_violation(self):
        history = History()
        m1 = write(history, "s1", "k", at=1.0)
        write(history, "s1", "k", at=2.0)  # s1's newer write
        history.note_read("s1", "k", m1, at=3.0, source="follower")
        report = history.check()
        assert len(report.ryw_violations) == 1
        assert report.ryw_violations[0]["source"] == "follower"

    def test_other_sessions_writes_do_not_trigger_ryw(self):
        history = History()
        m1 = write(history, "s1", "k", at=1.0)
        write(history, "s2", "k", at=2.0)  # someone else's write
        history.note_read("s1", "k", m1, at=3.0, source="follower")
        report = history.check()
        assert report.ryw_violations == []
        assert report.stale_reads == 1  # still counts as stale

    def test_going_backwards_is_a_monotonic_violation(self):
        history = History()
        m1 = write(history, "w", "k", at=1.0)
        m2 = write(history, "w", "k", at=2.0)
        history.note_read("r", "k", m2, at=3.0, source="follower")
        history.note_read("r", "k", m1, at=4.0, source="follower")
        report = history.check()
        assert len(report.monotonic_violations) == 1

    def test_observed_absence_after_a_value_is_a_monotonic_violation(self):
        history = History()
        m1 = write(history, "w", "k", at=1.0)
        history.note_read("r", "k", m1, at=2.0, source="follower")
        history.note_read("r", "k", None, at=3.0, source="follower")
        report = history.check()
        assert len(report.monotonic_violations) == 1

    def test_bounded_staleness_flags_only_beyond_the_bound(self):
        history = History()
        m1 = write(history, "w", "k", at=1.0)
        write(history, "w", "k", at=5.0)
        # read at 5.3 with bound 0.5: horizon 4.8, write@5.0 not yet owed
        history.note_read("r", "k", m1, at=5.3, source="follower")
        assert history.check(bound_s=0.5).bounded_violations == []
        # read at 6.0: horizon 5.5 > 5.0, the newer write is owed
        history.note_read("r", "k", m1, at=6.0, source="follower")
        report = history.check(bound_s=0.5)
        assert len(report.bounded_violations) == 1
        assert report.bounded_violations[0]["bound_s"] == 0.5

    def test_bound_zero_is_the_strong_check(self):
        history = History()
        m1 = write(history, "w", "k", at=1.0)
        write(history, "w", "k", at=2.0)
        history.note_read("r", "k", m1, at=3.0, source="follower")
        assert len(history.check(bound_s=0.0).bounded_violations) == 1
        assert history.check(bound_s=None).bounded_violations == []

    def test_anomaly_score_is_the_stale_fraction(self):
        history = History()
        m1 = write(history, "w", "k", at=1.0)
        m2 = write(history, "w", "k", at=2.0)
        history.note_read("r", "k", m2, at=3.0, source="leader")  # fresh
        history.note_read("r", "k", m1, at=4.0, source="follower")  # stale
        history.note_read("r", "other", None, at=5.0, source="follower")  # no writes
        report = history.check()
        assert report.stale_reads == 1
        assert report.anomaly_score == 1 / 3
