"""End-to-end over the wire: real HTTP servers, kill-the-leader, rejoin.

Wall-clock tests (threads + sockets), kept small; the heavy seeded
campaign lives behind ``ycsbt replication`` and the CI smoke job.
"""

import pytest

from repro.kvstore.base import StoreUnavailable
from repro.replication import ConsistencyLevel, ReplicationCluster


@pytest.fixture
def cluster():
    with ReplicationCluster(
        follower_count=2, lease_duration_s=0.4, ship_interval_s=0.02
    ) as running:
        yield running


class TestWireBasics:
    def test_writes_replicate_to_every_follower(self, cluster):
        routed = cluster.routed(ConsistencyLevel.STRONG)
        for index in range(10):
            routed.put(f"key{index}", {"f": str(index)})
        cluster.wait_caught_up()
        for name in ("node1", "node2"):
            node = cluster.nodes[name]
            assert node.applied_seq == 10
            assert node.store.get("key7") == {"f": "7"}

    def test_follower_servers_reject_client_writes(self, cluster):
        follower_client = cluster._clients["node1"]
        with pytest.raises(StoreUnavailable):
            follower_client.put("nope", {"f": "x"})

    def test_ryw_reads_work_over_the_wire(self, cluster):
        routed = cluster.routed(ConsistencyLevel.READ_YOUR_WRITES)
        routed.put("k", {"f": "mine"})
        assert routed.get("k") == {"f": "mine"}  # leader fallback or follower
        cluster.wait_caught_up()
        assert routed.get("k") == {"f": "mine"}


class TestFailover:
    def test_kill_leader_failover_and_rejoin(self, cluster):
        routed = cluster.routed(ConsistencyLevel.STRONG)
        for index in range(20):
            routed.put(f"key{index}", {"f": str(index)})
        cluster.wait_caught_up()

        dead = cluster.kill_leader()
        assert dead == "node0"
        result = cluster.failover(clean=True)
        assert result["leader"] in ("node1", "node2")
        assert result["term"] == 2
        assert result["lost_records"] == 0  # clean drain of the durable log

        # The same routed handle keeps working: its view follows the lease,
        # so the very next operation already lands on the new leader.
        routed.put("after", {"f": "failover"})
        assert routed.get("after") == {"f": "failover"}

        rejoined = cluster.rejoin("node0")
        assert rejoined["mode"] in ("catch-up", "resync")
        cluster.wait_caught_up()
        leader_log = cluster.leader_node.log.snapshot()
        for name, node in cluster.nodes.items():
            if node is not cluster.leader_node:
                assert node.log.snapshot() == leader_log

    def test_unclean_failover_reports_lost_records(self, cluster):
        routed = cluster.routed(ConsistencyLevel.STRONG)
        for index in range(5):
            routed.put(f"key{index}", {"f": str(index)})
        cluster.wait_caught_up()
        # Stop shipping, write more, then lose the leader *and* its disk.
        cluster.shipper.stop()
        cluster.shipper = None
        for index in range(5, 9):
            routed.put(f"key{index}", {"f": str(index)})
        cluster.servers["node0"].mark_crashed()
        result = cluster.failover(clean=False)
        assert result["lost_records"] == 4
        # The acknowledged-but-lost suffix is gone; the prefix survived.
        survivor = cluster.leader_node
        assert survivor.log.last_seq == 5
