"""Lease-table rules: grant, renew, expiry, hand-over, term fencing."""

import pytest

from repro.replication import LeaseError, LeaseTable


def make_table(duration=1.0):
    clock = [0.0]
    return LeaseTable(duration, clock=lambda: clock[0]), clock


class TestLeaseTable:
    def test_grant_and_hold(self):
        table, _ = make_table()
        lease = table.grant("a")
        assert (lease.leader, lease.term) == ("a", 1)
        assert table.holder_alive()

    def test_renew_extends_only_for_holder(self):
        table, clock = make_table(duration=1.0)
        table.grant("a")
        clock[0] = 0.5
        renewed = table.renew("a")
        assert renewed.expires_at == pytest.approx(1.5)
        with pytest.raises(LeaseError):
            table.renew("b")

    def test_expired_lease_cannot_renew(self):
        table, clock = make_table(duration=1.0)
        table.grant("a")
        clock[0] = 1.1
        assert not table.holder_alive()
        with pytest.raises(LeaseError):
            table.renew("a")

    def test_acquire_requires_expiry_and_bumps_term(self):
        table, clock = make_table(duration=1.0)
        table.grant("a")
        with pytest.raises(LeaseError):
            table.acquire("b")  # still held
        clock[0] = 2.0
        lease = table.acquire("b")
        assert (lease.leader, lease.term) == ("b", 2)

    def test_forced_grant_also_bumps_term(self):
        table, _ = make_table()
        table.grant("a")
        lease = table.grant("b")  # control-plane hand-over fences the old regime
        assert lease.term == 2

    def test_remaining_s(self):
        table, clock = make_table(duration=1.0)
        assert table.remaining_s() == 0.0
        table.grant("a")
        clock[0] = 0.25
        assert table.remaining_s() == pytest.approx(0.75)
        clock[0] = 5.0
        assert table.remaining_s() == 0.0

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            LeaseTable(0.0)
