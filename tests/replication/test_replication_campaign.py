"""Replication campaign: kill the leader mid-CEW, fail over, re-validate."""

import json

import pytest

from repro.replication.campaign import (
    ReplicationRunResult,
    run_replication,
    run_replication_campaign,
    write_replication_violation_trace,
)

#: Small enough to keep one cycle around a second, big enough that the
#: degraded half actually runs through the promoted leader.
FAST_PROPERTIES = {
    "recordcount": "20",
    "operationcount": "80",
}


def test_unknown_level_rejected():
    with pytest.raises(ValueError, match="unknown consistency level"):
        run_replication(level="eventual")


def test_strong_survives_a_leader_kill():
    """The tentpole promise over the wire: kill the leader mid-campaign,
    fail over on the lease, and the economy still balances."""
    result = run_replication(level="strong", properties=FAST_PROPERTIES, seed=0)
    assert result.killed_leader == "node0"
    assert result.new_leader in ("node1", "node2")
    assert result.term == 2
    assert result.lost_records == 0  # clean drain of the durable log
    assert result.degraded_operations > 0
    assert result.rejoin_mode in ("catch-up", "resync")
    assert result.logs_converged
    assert result.gated
    assert not result.violation, result.summary_line()
    assert result.post_gamma == 0.0
    assert "VIOLATION" not in result.summary_line()


def test_read_your_writes_balances_too():
    result = run_replication(
        level="read_your_writes", properties=FAST_PROPERTIES, seed=1
    )
    assert not result.violation, result.summary_line()
    assert result.post_gamma == 0.0
    # The relaxed level actually used its followers.
    assert result.counters.get("REPL-FOLLOWER-READS", 0) > 0


def test_fault_free_run_skips_the_kill():
    result = run_replication(
        level="strong", properties=FAST_PROPERTIES, seed=2, kill=False
    )
    assert result.killed_leader is None
    assert result.term == 1
    assert not result.violation, result.summary_line()
    assert result.post_gamma == 0.0


def test_violation_trace_is_replayable_json(tmp_path):
    result = run_replication(level="strong", properties=FAST_PROPERTIES, seed=3)
    path = write_replication_violation_trace(result, tmp_path)
    trace = json.loads(path.read_text(encoding="utf-8"))
    assert trace["level"] == "strong"
    assert trace["seed"] == 3
    assert trace["failover"]["killed_leader"] == "node0"
    assert trace["failover"]["lost_records"] == 0
    assert "gamma" in trace["post_failover"]
    assert trace["properties"]["operationcount"] == "80"
    assert trace["replay"]["command"].startswith("ycsbt replication")


@pytest.mark.slow
def test_bounded_staleness_is_the_expected_leaky_baseline():
    """The control: read-modify-writes over legally stale follower reads
    lose money, and the campaign reports rather than gates it.  One seed
    is not guaranteed to leak, so sweep a few and require at least one."""
    campaign = run_replication_campaign(
        seeds=range(3),
        levels=("bounded_staleness",),
        properties=FAST_PROPERTIES,
    )
    assert len(campaign.runs) == 3
    leaked = [run for run in campaign.runs if run.post_gamma > 0.0]
    assert leaked, campaign.summary()
    assert campaign.gated_violations == []
    # Whatever it leaked, the protocol itself converged everywhere.
    assert all(run.logs_converged for run in campaign.runs)


@pytest.mark.slow
def test_campaign_sweeps_and_writes_artifacts(tmp_path):
    seen: list[ReplicationRunResult] = []
    campaign = run_replication_campaign(
        seeds=[0],
        levels=("strong", "read_your_writes"),
        properties=FAST_PROPERTIES,
        out_dir=tmp_path,
        on_result=seen.append,
    )
    assert len(campaign.runs) == len(seen) == 2
    assert campaign.gated_violations == []
    for artifact in campaign.artifacts:
        assert artifact.exists()
    assert "strong" in campaign.summary()


@pytest.mark.slow
def test_cli_replication_command_exits_clean(tmp_path, capsys):
    from repro.core.cli import main

    code = main(
        [
            "replication",
            "--seeds", "1",
            "--level", "strong",
            "--out", str(tmp_path),
            "-p", "operationcount=80",
            "-p", "recordcount=20",
        ]
    )
    captured = capsys.readouterr()
    assert code == 0, captured.err
    assert "strong: 1 runs, 1 leader kills" in captured.out
