"""The consistency-conformance suite (the PR-8 tentpole).

Deterministic virtual-time probe runs through the real replication
protocol — leader node, log shipper task, routed clients — checked
against the exact-history oracle.  Asserts the per-level guarantee
matrix, the seed-stability of the anomaly score, and that every
guarantee survives the two replication crash schedules.
"""

import pytest

from repro.replication import ConsistencyLevel, run_probe

SEED = 1234
LEVELS = [
    ConsistencyLevel.STRONG,
    ConsistencyLevel.READ_YOUR_WRITES,
    ConsistencyLevel.BOUNDED_STALENESS,
]
# Both replication crashpoints, hit at their Nth crossing during the run
# phase.  mid_log_ship kills the shipper itself; mid_follower_apply kills
# a follower mid-apply and the shipper routes around the corpse.
CRASH_SCHEDULES = [
    pytest.param({"repl.mid_log_ship": 3}, id="mid-log-ship"),
    pytest.param({"repl.mid_follower_apply": 5}, id="mid-follower-apply"),
]


def assert_level_guarantees(result):
    """The per-level contract every probe run must honour.

    strong              every guarantee, anomaly 0, leader-only reads
    read_your_writes    session guarantees (RYW + monotonic), no freshness
    bounded_staleness   the freshness bound; sessions are NOT protected
                        (routing is by frontier age alone, so a session
                        may legally miss its own just-issued write)
    """
    report = result.report
    if result.level == "strong":
        assert report.ryw_violations == []
        assert report.monotonic_violations == []
        assert report.bounded_violations == []  # bound 0: perfect freshness
        assert report.anomaly_score == 0.0
        assert report.reads_by_source.get("follower", 0) == 0
    elif result.level == "read_your_writes":
        assert report.ryw_violations == []
        assert report.monotonic_violations == []
    elif result.level == "bounded_staleness":
        assert report.bounded_violations == []  # never staler than the bound


class TestFaultFreeRuns:
    @pytest.mark.parametrize("level", LEVELS, ids=[l.value for l in LEVELS])
    def test_level_guarantees_hold(self, level):
        result = run_probe(SEED, level)
        assert_level_guarantees(result)
        assert not result.shipper_crashed
        assert result.dead_followers == []
        assert result.followers_prefix_ok
        assert result.followers_caught_up

    def test_strong_scores_zero_and_lagged_followers_score_positive(self):
        strong = run_probe(SEED, ConsistencyLevel.STRONG)
        assert strong.report.anomaly_score == 0.0
        lagged = run_probe(
            SEED, ConsistencyLevel.BOUNDED_STALENESS,
            ship_interval_s=0.1, staleness_bound_s=0.5,
        )
        assert lagged.report.anomaly_score > 0.0
        assert lagged.follower_read_fraction > 0.5  # lag tolerated, not hidden
        assert lagged.report.bounded_violations == []

    def test_relaxed_levels_actually_offload_the_leader(self):
        strong = run_probe(SEED, ConsistencyLevel.STRONG)
        ryw = run_probe(SEED, ConsistencyLevel.READ_YOUR_WRITES)
        assert strong.follower_read_fraction == 0.0
        assert ryw.follower_read_fraction > 0.5

    @pytest.mark.parametrize("level", LEVELS, ids=[l.value for l in LEVELS])
    def test_same_seed_same_history(self, level):
        first = run_probe(SEED, level)
        second = run_probe(SEED, level)
        assert first.report.to_dict() == second.report.to_dict()
        assert first.counters == second.counters
        assert first.leader_log_len == second.leader_log_len

    def test_different_seeds_diverge(self):
        first = run_probe(1, ConsistencyLevel.READ_YOUR_WRITES)
        second = run_probe(2, ConsistencyLevel.READ_YOUR_WRITES)
        assert first.report.to_dict() != second.report.to_dict()


class TestCrashSchedules:
    @pytest.mark.parametrize("level", LEVELS, ids=[l.value for l in LEVELS])
    @pytest.mark.parametrize("schedule", CRASH_SCHEDULES)
    def test_guarantees_survive_crashes(self, level, schedule):
        result = run_probe(SEED, level, crash_schedule=schedule)
        assert_level_guarantees(result)
        # The schedule actually fired somewhere.
        assert result.shipper_crashed or result.dead_followers

    @pytest.mark.parametrize("schedule", CRASH_SCHEDULES)
    def test_recovery_converges_after_crash(self, schedule):
        result = run_probe(
            SEED, ConsistencyLevel.READ_YOUR_WRITES, crash_schedule=schedule
        )
        assert result.repaired
        assert result.followers_prefix_ok  # never diverged, only lagged
        assert result.followers_caught_up  # anti-entropy closed the gap

    @pytest.mark.parametrize("schedule", CRASH_SCHEDULES)
    def test_crashed_runs_are_deterministic_too(self, schedule):
        first = run_probe(SEED, ConsistencyLevel.BOUNDED_STALENESS,
                          crash_schedule=schedule)
        second = run_probe(SEED, ConsistencyLevel.BOUNDED_STALENESS,
                           crash_schedule=schedule)
        assert first.report.to_dict() == second.report.to_dict()
        assert first.dead_followers == second.dead_followers
        assert first.shipper_crashed == second.shipper_crashed

    def test_dead_follower_does_not_stop_the_others(self):
        result = run_probe(
            SEED, ConsistencyLevel.READ_YOUR_WRITES,
            crash_schedule={"repl.mid_follower_apply": 5},
        )
        assert result.dead_followers  # one died...
        assert not result.shipper_crashed  # ...but shipping continued

    def test_without_repair_the_gap_is_visible(self):
        result = run_probe(
            SEED, ConsistencyLevel.READ_YOUR_WRITES,
            crash_schedule={"repl.mid_follower_apply": 5}, repair=False,
        )
        assert not result.repaired
        assert result.followers_prefix_ok  # prefix property holds regardless
        assert not result.followers_caught_up  # the dead follower still lags


class TestLagSensitivity:
    def test_anomaly_grows_with_lag_under_a_fixed_bound(self):
        """The frontier claim in miniature: more lag, more stale reads."""
        bound = 0.3
        lags = [0.005, 0.04, 0.25]
        scores = [
            run_probe(SEED, ConsistencyLevel.BOUNDED_STALENESS,
                      ship_interval_s=lag, staleness_bound_s=bound,
                      ).report.anomaly_score
            for lag in lags
        ]
        assert scores == sorted(scores)
        assert scores[-1] > scores[0]

    def test_probe_rejects_zero_ship_interval(self):
        # ambient_sleep(0) would spin forever in virtual time
        with pytest.raises(ValueError):
            run_probe(SEED, ConsistencyLevel.STRONG, ship_interval_s=0.0)
