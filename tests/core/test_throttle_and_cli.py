"""Throttle pacing and the command-line interface."""

import json

import pytest

from repro.core.cli import build_parser, main
from repro.core.throttle import Throttle


class TestThrottle:
    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            Throttle(0)

    def test_paces_to_target(self):
        clock = [0.0]
        sleeps = []

        def fake_sleep(seconds):
            sleeps.append(seconds)
            clock[0] += seconds

        throttle = Throttle(10, clock=lambda: clock[0], sleep=fake_sleep)
        for _ in range(5):
            throttle.wait_for_turn()
        # 5 ops at 10/s: ~0.4s of sleeping after the free first op.
        assert sum(sleeps) == pytest.approx(0.4, abs=0.01)

    def test_catches_up_after_slow_operation(self):
        clock = [0.0]
        sleeps = []

        def fake_sleep(seconds):
            sleeps.append(seconds)
            clock[0] += seconds

        throttle = Throttle(10, clock=lambda: clock[0], sleep=fake_sleep)
        throttle.wait_for_turn()
        clock[0] += 1.0  # one op took a full second (10 ops worth)
        for _ in range(5):
            throttle.wait_for_turn()
        # The thread is behind schedule; no sleeping until it catches up.
        assert sum(sleeps) == 0


class TestCliParser:
    def test_phase_arguments(self):
        args = build_parser().parse_args(
            ["run", "-db", "memory", "-P", "file.properties", "-threads", "8",
             "-p", "a=1", "-p", "b=2"]
        )
        assert args.command == "run"
        assert args.db == "memory"
        assert args.threads == 8
        assert args.property == ["a=1", "b=2"]

    def test_experiment_arguments(self):
        args = build_parser().parse_args(["experiment", "fig4", "--full"])
        assert args.name == "fig4"
        assert args.full

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["destroy"])

    def test_bad_property_override_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["run", "-db", "basic", "-p", "not-a-pair"])


class TestCliExecution:
    def _cew_args(self, phase, extra=()):
        return [
            phase,
            "-db", "memory",
            "-p", "workload=closed_economy",
            "-p", "recordcount=30",
            "-p", "operationcount=100",
            "-p", "totalcash=30000",
            "-p", "fieldcount=1",
            "-p", "seed=4",
            "-threads", "1",
            *extra,
        ]

    def test_bench_round_trip_text(self, capsys):
        code = main(self._cew_args("bench"))
        output = capsys.readouterr().out
        assert code == 0
        assert "[TOTAL CASH], 30000" in output
        assert "[OVERALL], Throughput(ops/sec)," in output
        assert "Database validation passed" in output

    def test_bench_json_export(self, capsys):
        code = main(self._cew_args("bench", ["--export", "json"]))
        document = json.loads(capsys.readouterr().out)
        assert code == 0
        assert document["overall"]["operations"] == 100
        assert document["validation"]["passed"] is True

    def test_property_file_loading(self, tmp_path, capsys):
        workload_file = tmp_path / "cew.properties"
        workload_file.write_text(
            "workload=closed_economy\nrecordcount=10\noperationcount=20\n"
            "totalcash=10000\nfieldcount=1\nseed=1\n"
        )
        code = main(["bench", "-db", "memory", "-P", str(workload_file)])
        assert code == 0
        assert "[TOTAL CASH], 10000" in capsys.readouterr().out

    def test_core_workload_runs(self, capsys):
        code = main(
            ["bench", "-db", "memory", "-p", "workload=core",
             "-p", "recordcount=20", "-p", "operationcount=50", "-p", "seed=2"]
        )
        assert code == 0
        assert "[READ]" in capsys.readouterr().out

    def test_java_workload_name_alias(self, capsys):
        code = main(
            ["bench", "-db", "memory",
             "-p", "workload=com.yahoo.ycsb.workloads.ClosedEconomyWorkload",
             "-p", "recordcount=10", "-p", "operationcount=20",
             "-p", "totalcash=10000", "-p", "fieldcount=1", "-p", "seed=1"]
        )
        assert code == 0
        assert "[ANOMALY SCORE]" in capsys.readouterr().out

    def test_unknown_workload_fails(self):
        with pytest.raises(SystemExit):
            main(["bench", "-db", "memory", "-p", "workload=telepathy"])

    def test_validation_failure_sets_exit_code(self, capsys):
        # Load, then corrupt by running 'run' against a *different*
        # (empty) namespace so validation cannot find the money.
        code = main(
            ["run", "-db", "memory",
             "-p", "workload=closed_economy",
             "-p", "recordcount=10", "-p", "operationcount=10",
             "-p", "totalcash=10000", "-p", "fieldcount=1",
             "-p", "memory.namespace=empty-ns", "-p", "seed=1"]
        )
        assert code == 1
        assert "Validation failed" in capsys.readouterr().out
