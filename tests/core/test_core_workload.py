"""CoreWorkload configuration and operation behaviour."""

import pytest

from repro.bindings import MemoryDB
from repro.core import CoreWorkload, Properties
from repro.core.workload import WorkloadError
from repro.measurements import Measurements


def make_workload(**overrides):
    base = {"recordcount": "100", "operationcount": "100", "seed": "3"}
    base.update({key: str(value) for key, value in overrides.items()})
    workload = CoreWorkload()
    workload.init(Properties(base), Measurements())
    return workload


def load_and_run(workload, operations=200):
    db = MemoryDB(workload.properties)
    state = workload.init_thread(0, 1)
    for _ in range(workload.record_count):
        assert workload.do_insert(db, state)
    executed = []
    for _ in range(operations):
        name = workload.do_transaction(db, state)
        executed.append(name)
    return db, executed


class TestConfiguration:
    def test_defaults(self):
        workload = make_workload()
        assert workload.table == "usertable"
        assert workload.field_count == 10
        assert workload.read_all_fields is True

    def test_rejects_zero_records(self):
        with pytest.raises(WorkloadError):
            make_workload(recordcount=0)

    def test_rejects_unknown_distribution(self):
        with pytest.raises(WorkloadError):
            make_workload(requestdistribution="gaussian")

    def test_rejects_unknown_field_length_distribution(self):
        with pytest.raises(WorkloadError):
            make_workload(fieldlengthdistribution="cauchy")

    def test_rejects_all_zero_proportions(self):
        with pytest.raises(WorkloadError):
            make_workload(readproportion=0, updateproportion=0)

    @pytest.mark.parametrize(
        "distribution",
        ["uniform", "zipfian", "latest", "hotspot", "sequential", "exponential"],
    )
    def test_all_request_distributions_construct_and_run(self, distribution):
        workload = make_workload(requestdistribution=distribution)
        _, executed = load_and_run(workload, operations=50)
        assert all(name is not None for name in executed)

    def test_operation_mix_respected(self):
        workload = make_workload(
            readproportion=0.5, updateproportion=0.5, operationcount=1000
        )
        _, executed = load_and_run(workload, operations=1000)
        reads = executed.count("READ")
        assert 350 < reads < 650

    def test_ordered_insert_keys(self):
        workload = make_workload(insertorder="ordered", zeropadding=8)
        assert workload.build_key_name(5) == "user00000005"

    def test_hashed_insert_keys_spread(self):
        workload = make_workload()  # hashed is the default
        assert workload.build_key_name(0) != "user0"


class TestValueGeneration:
    def test_build_values_covers_all_fields(self, rng):
        workload = make_workload(fieldcount=4, fieldlength=8)
        values = workload.build_values(rng)
        assert sorted(values) == ["field0", "field1", "field2", "field3"]
        assert all(len(value) == 8 for value in values.values())

    def test_build_update_single_field_by_default(self, rng):
        workload = make_workload(fieldcount=4)
        assert len(workload.build_update(rng)) == 1

    def test_build_update_all_fields_when_requested(self, rng):
        workload = make_workload(fieldcount=4, writeallfields="true")
        assert len(workload.build_update(rng)) == 4

    def test_uniform_field_lengths(self, rng):
        workload = make_workload(fieldlengthdistribution="uniform", fieldlength=10)
        lengths = {len(workload.build_values(rng)["field0"]) for _ in range(100)}
        assert lengths <= set(range(1, 11))
        assert len(lengths) > 2


class TestOperationsAgainstStore:
    def test_load_phase_inserts_exactly_recordcount(self):
        workload = make_workload(recordcount=50)
        db, _ = load_and_run(workload, operations=0)
        assert db.store.size() == 50

    def test_reads_hit_existing_records(self):
        workload = make_workload(readproportion=1.0, updateproportion=0.0)
        _, executed = load_and_run(workload)
        assert set(executed) == {"READ"}

    def test_scan_operations(self):
        workload = make_workload(
            readproportion=0.0,
            updateproportion=0.0,
            scanproportion=1.0,
            maxscanlength=10,
        )
        _, executed = load_and_run(workload, operations=30)
        assert set(executed) == {"SCAN"}

    def test_rmw_records_separate_measurement(self):
        workload = make_workload(
            readproportion=0.0, updateproportion=0.0, readmodifywriteproportion=1.0
        )
        load_and_run(workload, operations=20)
        assert workload.measurements.summary_for("READ-MODIFY-WRITE").count == 20

    def test_inserts_extend_keyspace_and_are_readable(self):
        workload = make_workload(
            readproportion=0.5, updateproportion=0.0, insertproportion=0.5
        )
        _, executed = load_and_run(workload, operations=200)
        failed = [name for name in executed if name is None]
        assert not failed

    def test_delete_proportion(self):
        workload = make_workload(
            readproportion=0.5, updateproportion=0.0, deleteproportion=0.5
        )
        db, executed = load_and_run(workload, operations=100)
        deletes = executed.count("DELETE")
        assert deletes > 10
        assert db.store.size() < 100

    def test_failed_operation_returns_none(self):
        workload = make_workload(readproportion=1.0, updateproportion=0.0)
        db = MemoryDB(workload.properties)  # empty store: reads miss
        state = workload.init_thread(0, 1)
        assert workload.do_transaction(db, state) is None


class TestDeterminism:
    def test_same_seed_same_keys(self):
        first = make_workload(seed=99)
        second = make_workload(seed=99)
        keys_a = [first.next_key_number() for _ in range(50)]
        keys_b = [second.next_key_number() for _ in range(50)]
        assert keys_a == keys_b

    def test_different_seed_differs(self):
        first = make_workload(seed=1)
        second = make_workload(seed=2)
        keys_a = [first.next_key_number() for _ in range(50)]
        keys_b = [second.next_key_number() for _ in range(50)]
        assert keys_a != keys_b
