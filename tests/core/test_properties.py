"""Property-file parsing and typed access."""

import pytest

from repro.core import Properties, load_properties, parse_properties


class TestParsing:
    def test_basic_pairs(self):
        assert parse_properties("a=1\nb=2\n") == {"a": "1", "b": "2"}

    def test_colon_separator(self):
        assert parse_properties("key: value\n") == {"key": "value"}

    def test_comments_and_blanks(self):
        text = "# comment\n! also comment\n\nkey=value\n"
        assert parse_properties(text) == {"key": "value"}

    def test_whitespace_stripped(self):
        assert parse_properties("  key  =  value  \n") == {"key": "value"}

    def test_later_wins(self):
        assert parse_properties("k=1\nk=2\n") == {"k": "2"}

    def test_line_continuation(self):
        text = "key=first \\\n    second\n"
        assert parse_properties(text) == {"key": "first second"}

    def test_value_with_equals(self):
        assert parse_properties("url=http://host?a=b\n") == {"url": "http://host?a=b"}

    def test_key_only_line(self):
        assert parse_properties("flag\n") == {"flag": ""}

    def test_listing2_file(self):
        """The paper's Listing 2 parses into the expected configuration."""
        text = """\
recordcount=10000
operationcount=1000000
workload=com.yahoo.ycsb.workloads.ClosedEconomyWorkload
totalcash=100000000
readproportion=0.9
readmodifywriteproportion=0.1
requestdistribution=zipfian
fieldcount=1
fieldlength=100
writeallfields=true
readallfields=true
histogram.buckets=0
"""
        pairs = parse_properties(text)
        assert pairs["recordcount"] == "10000"
        assert pairs["requestdistribution"] == "zipfian"
        assert pairs["histogram.buckets"] == "0"

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "workload.properties"
        path.write_text("recordcount=42\n")
        properties = load_properties(path)
        assert properties.get_int("recordcount") == 42


class TestTypedAccess:
    def test_get_str(self):
        properties = Properties({"k": "v"})
        assert properties.get_str("k") == "v"
        assert properties.get_str("missing", "default") == "default"

    def test_get_int(self):
        properties = Properties({"n": "17"})
        assert properties.get_int("n") == 17
        assert properties.get_int("missing", 5) == 5

    def test_get_int_rejects_garbage(self):
        with pytest.raises(ValueError, match="n"):
            Properties({"n": "seventeen"}).get_int("n")

    def test_get_float(self):
        properties = Properties({"x": "0.9"})
        assert properties.get_float("x") == pytest.approx(0.9)
        with pytest.raises(ValueError):
            Properties({"x": "nope"}).get_float("x")

    def test_get_bool_variants(self):
        for word in ("true", "Yes", "ON", "1"):
            assert Properties({"b": word}).get_bool("b") is True
        for word in ("false", "No", "off", "0"):
            assert Properties({"b": word}).get_bool("b") is False

    def test_get_bool_rejects_garbage(self):
        with pytest.raises(ValueError):
            Properties({"b": "maybe"}).get_bool("b")

    def test_empty_value_falls_to_default(self):
        properties = Properties({"n": ""})
        assert properties.get_int("n", 7) == 7
        assert properties.get_bool("n", True) is True

    def test_get_list(self):
        properties = Properties({"hosts": "a, b , c"})
        assert properties.get_list("hosts") == ["a", "b", "c"]
        assert properties.get_list("missing", ["x"]) == ["x"]

    def test_require(self):
        assert Properties({"k": "v"}).require("k") == "v"
        with pytest.raises(KeyError, match="required"):
            Properties().require("missing")

    def test_set_stringifies(self):
        properties = Properties()
        properties.set("threads", 16)
        assert properties.get("threads") == "16"

    def test_merged_does_not_mutate(self):
        base = Properties({"a": "1"})
        merged = base.merged({"a": "2", "b": "3"})
        assert base.get("a") == "1"
        assert merged.get("a") == "2"
        assert merged.get("b") == "3"

    def test_mapping_surface(self):
        properties = Properties({"a": "1", "b": "2"})
        assert "a" in properties
        assert len(properties) == 2
        assert sorted(properties) == ["a", "b"]
        assert properties.as_dict() == {"a": "1", "b": "2"}

    def test_equality(self):
        assert Properties({"a": "1"}) == Properties({"a": "1"})
        assert Properties({"a": "1"}) != Properties({"a": "2"})
