"""Retry policy: backoff math, classification, budgets, the store wrapper."""

import random

import pytest

from repro.core import Properties
from repro.core.retry import (
    DEFAULT_RETRYABLE,
    RetryPolicy,
    RetryingStore,
    collect_counters,
)
from repro.kvstore import (
    FaultInjectingStore,
    FaultProfile,
    InMemoryKVStore,
    RateLimitExceeded,
    StoreUnavailable,
    TransientStoreError,
)


def noop_sleep(seconds):
    pass


def make_policy(**kwargs):
    kwargs.setdefault("rng", random.Random(7))
    kwargs.setdefault("sleep", noop_sleep)
    return RetryPolicy(**kwargs)


class Flaky:
    """Callable that fails ``failures`` times, then returns ``value``."""

    def __init__(self, failures, exc=TransientStoreError("boom"), value="ok"):
        self.remaining = failures
        self.exc = exc
        self.value = value
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise self.exc
        return self.value


class TestPolicyBasics:
    def test_success_after_transient_failures(self):
        policy = make_policy(max_attempts=4)
        flaky = Flaky(failures=2)
        assert policy.call(flaky) == "ok"
        assert flaky.calls == 3
        assert policy.stats.retries == 2
        assert policy.stats.exhausted == 0

    def test_non_retryable_raises_immediately(self):
        policy = make_policy(max_attempts=4)
        flaky = Flaky(failures=5, exc=ValueError("not transient"))
        with pytest.raises(ValueError):
            policy.call(flaky)
        assert flaky.calls == 1
        assert policy.stats.retries == 0

    def test_exhaustion_reraises_last_error(self):
        policy = make_policy(max_attempts=3)
        flaky = Flaky(failures=10)
        with pytest.raises(TransientStoreError):
            policy.call(flaky)
        assert flaky.calls == 3
        assert policy.stats.retries == 2
        assert policy.stats.exhausted == 1

    def test_max_attempts_one_never_retries(self):
        policy = make_policy(max_attempts=1)
        with pytest.raises(TransientStoreError):
            policy.call(Flaky(failures=1))
        assert policy.stats.retries == 0
        assert policy.stats.exhausted == 1

    @pytest.mark.parametrize("exc_type", DEFAULT_RETRYABLE)
    def test_default_classification(self, exc_type):
        policy = make_policy(max_attempts=2)
        assert policy.call(Flaky(failures=1, exc=exc_type("x"))) == "ok"

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


class TestBackoff:
    def test_full_jitter_within_cap(self):
        policy = make_policy(base_delay_s=0.010, max_delay_s=0.100, multiplier=2.0)
        for retry_number in range(10):
            cap = min(0.100, 0.010 * 2**retry_number)
            for _ in range(50):
                assert 0.0 <= policy.backoff_s(retry_number) <= cap

    def test_cap_doubles_then_saturates(self):
        # With a huge sample max, the observed max tracks the cap curve.
        policy = make_policy(base_delay_s=0.010, max_delay_s=0.040)
        samples = [max(policy.backoff_s(5) for _ in range(200)) for _ in range(3)]
        assert all(0.035 < sample <= 0.040 for sample in samples)

    def test_zero_base_means_no_sleeping(self):
        slept = []
        policy = RetryPolicy(
            max_attempts=5, base_delay_s=0.0, max_delay_s=0.0, sleep=slept.append
        )
        assert policy.call(Flaky(failures=3)) == "ok"
        assert slept == []

    def test_seeded_schedule_is_deterministic(self):
        first = RetryPolicy(rng=random.Random(11))
        second = RetryPolicy(rng=random.Random(11))
        assert [first.backoff_s(i) for i in range(8)] == [
            second.backoff_s(i) for i in range(8)
        ]


class TestDeadline:
    def test_deadline_stops_retrying(self):
        clock = {"now": 0.0}

        def fake_clock():
            return clock["now"]

        def fake_sleep(seconds):
            clock["now"] += seconds

        policy = RetryPolicy(
            max_attempts=100,
            base_delay_s=0.050,
            max_delay_s=0.050,
            deadline_s=0.120,
            rng=random.Random(5),
            sleep=fake_sleep,
            clock=fake_clock,
        )
        flaky = Flaky(failures=1000)
        with pytest.raises(TransientStoreError):
            policy.call(flaky)
        # Never slept past the deadline, and gave up long before the
        # attempt budget.
        assert clock["now"] <= 0.120
        assert flaky.calls < 100
        assert policy.stats.deadline_exceeded == 1


class TestFromProperties:
    def test_disabled_by_default(self):
        assert RetryPolicy.from_properties(Properties()) is None

    def test_disabled_when_single_attempt(self):
        assert (
            RetryPolicy.from_properties(Properties({"retry.max_attempts": "1"})) is None
        )

    def test_configured(self):
        policy = RetryPolicy.from_properties(
            Properties(
                {
                    "retry.max_attempts": "6",
                    "retry.base_delay_ms": "2",
                    "retry.max_delay_ms": "80",
                    "retry.deadline_ms": "500",
                    "retry.seed": "9",
                }
            )
        )
        assert policy.max_attempts == 6
        assert policy.base_delay_s == pytest.approx(0.002)
        assert policy.max_delay_s == pytest.approx(0.080)
        assert policy.deadline_s == pytest.approx(0.500)

    def test_seed_makes_backoff_deterministic(self):
        def schedule(policy):
            return [policy.backoff_s(i) for i in range(6)]

        properties = Properties({"retry.max_attempts": "8", "retry.seed": "123"})
        first = schedule(RetryPolicy.from_properties(properties))
        second = schedule(RetryPolicy.from_properties(properties))
        assert first == second
        other = schedule(
            RetryPolicy.from_properties(
                Properties({"retry.max_attempts": "8", "retry.seed": "124"})
            )
        )
        assert first != other

    def test_explicit_rng_wins_over_seed_property(self):
        properties = Properties({"retry.max_attempts": "8", "retry.seed": "123"})
        injected = RetryPolicy.from_properties(properties, rng=random.Random(7))
        reference = RetryPolicy(max_attempts=8, rng=random.Random(7))
        assert [injected.backoff_s(i) for i in range(6)] == [
            reference.backoff_s(i) for i in range(6)
        ]


class TestRetryingStore:
    def make_stack(self, profile, seed=0, **policy_kwargs):
        inner = InMemoryKVStore()
        faulty = FaultInjectingStore(inner, profile=profile, seed=seed, sleep=noop_sleep)
        policy_kwargs.setdefault("max_attempts", 8)
        store = RetryingStore(faulty, make_policy(**policy_kwargs))
        return inner, faulty, store

    def test_absorbs_transient_errors(self):
        inner, faulty, store = self.make_stack(FaultProfile(error_rate=0.4))
        for i in range(100):
            store.put(f"k{i}", {"f": str(i)})
        assert inner.size() == 100
        assert store.retry_stats.retries > 0
        assert store.retry_stats.exhausted == 0

    def test_reads_retried_too(self):
        inner, faulty, store = self.make_stack(FaultProfile(error_rate=0.4))
        inner.put("k", {"f": "1"})
        for _ in range(50):
            assert store.get("k") == {"f": "1"}

    def test_collect_counters_walks_the_chain(self):
        inner, faulty, store = self.make_stack(FaultProfile(error_rate=0.4))
        for i in range(50):
            store.put(f"k{i}", {"f": "1"})
        totals = collect_counters(store)
        assert totals["RETRIES"] == store.retry_stats.retries > 0
        assert totals["FAULTS-TRANSIENT"] == faulty.stats.transient_errors > 0
        assert totals["RETRY-EXHAUSTED"] == 0

    def test_collect_counters_on_plain_store(self):
        assert collect_counters(InMemoryKVStore()) == {}
