"""``workload.seed``: one knob replays the whole request/injection stack."""

import random

from repro.bindings.stores import MemoryDB, wrap_store
from repro.core.core_workload import CoreWorkload
from repro.core.properties import Properties
from repro.core.workload import Workload
from repro.kvstore.faults import FaultInjectingStore
from repro.kvstore.memory import InMemoryKVStore


def key_stream(properties, draws=200):
    workload = CoreWorkload()
    workload.init(Properties(properties))
    return [workload.next_key_number() for _ in range(draws)]


class TestWorkloadSeedThreading:
    def test_workload_seed_replays_key_stream(self):
        base = {"recordcount": "1000", "requestdistribution": "zipfian"}
        first = key_stream({**base, "workload.seed": "77"})
        second = key_stream({**base, "workload.seed": "77"})
        third = key_stream({**base, "workload.seed": "78"})
        assert first == second
        assert first != third

    def test_workload_seed_wins_over_legacy_seed(self):
        base = {"recordcount": "1000", "requestdistribution": "uniform"}
        combined = key_stream({**base, "seed": "1", "workload.seed": "99"})
        workload_only = key_stream({**base, "workload.seed": "99"})
        legacy_only = key_stream({**base, "seed": "1"})
        assert combined == workload_only
        assert combined != legacy_only

    def test_legacy_seed_still_replays(self):
        base = {"recordcount": "500", "requestdistribution": "hotspot"}
        assert key_stream({**base, "seed": "5"}) == key_stream({**base, "seed": "5"})

    def test_every_request_distribution_is_seeded(self):
        for distribution in ("uniform", "zipfian", "latest", "hotspot",
                             "sequential", "exponential"):
            base = {
                "recordcount": "400",
                "requestdistribution": distribution,
                "workload.seed": "11",
            }
            assert key_stream(base, draws=100) == key_stream(base, draws=100), (
                f"{distribution} is not replayable from workload.seed"
            )

    def test_thread_rng_derived_from_workload_seed(self):
        workload = Workload()
        workload.init(Properties({"workload.seed": "5"}), None)
        first = workload.init_thread(0, 4)
        second = workload.init_thread(0, 4)
        other_thread = workload.init_thread(1, 4)
        assert isinstance(first, random.Random)
        assert first.random() == second.random()
        assert first.random() != other_thread.random()


def fault_outcomes(extra, puts=60):
    """True/False per put: did the injected fault layer fail the write?

    Retries are disabled so the raw fault sequence is observable; the
    fault draws are a pure function of the effective ``fault.seed``.
    """
    props = Properties({
        "fault.torn_write_rate": "0.5",
        "retry.max_attempts": "1",
        **extra,
    })
    wrapped = wrap_store(InMemoryKVStore(), props)
    results = []
    for i in range(puts):
        try:
            wrapped.put("k", {"f": str(i)})
            results.append(True)
        except Exception:
            results.append(False)
    return results


class TestLayerSeedFanOut:
    def test_fault_layer_engaged(self):
        properties = Properties({
            "workload.seed": "40",
            "fault.torn_write_rate": "0.5",
            "retry.max_attempts": "1",
        })
        store = wrap_store(InMemoryKVStore(), properties)
        assert isinstance(store, FaultInjectingStore)

    def test_fault_seed_derived_from_workload_seed(self):
        assert fault_outcomes({"workload.seed": "40"}) == fault_outcomes(
            {"workload.seed": "40"}
        )
        assert fault_outcomes({"workload.seed": "40"}) != fault_outcomes(
            {"workload.seed": "41"}
        )

    def test_derived_seed_matches_fan_out_offset(self):
        # The fault layer derives workload.seed + 1 when fault.seed is unset.
        derived = fault_outcomes({"workload.seed": "40"})
        explicit = fault_outcomes({"fault.seed": "41"})
        assert derived == explicit

    def test_explicit_layer_seed_wins(self):
        pinned = fault_outcomes({"fault.seed": "123", "workload.seed": "1"})
        pinned_other_base = fault_outcomes({"fault.seed": "123", "workload.seed": "2"})
        assert pinned == pinned_other_base
