"""Closed Economy Workload: money conservation and the anomaly score."""

import pytest

from repro.bindings import MemoryDB
from repro.core import BALANCE_FIELD, ClosedEconomyWorkload, Properties
from repro.core.workload import WorkloadError
from repro.measurements import Measurements


def make_cew(**overrides):
    base = {
        "recordcount": "50",
        "operationcount": "100",
        "totalcash": "50000",
        "readproportion": "0.9",
        "readmodifywriteproportion": "0.1",
        "requestdistribution": "zipfian",
        "fieldcount": "1",
        "seed": "5",
    }
    base.update({key: str(value) for key, value in overrides.items()})
    workload = ClosedEconomyWorkload()
    workload.init(Properties(base), Measurements())
    return workload



def do_op(workload, db, state):
    """Execute one CEW operation and settle it, as the client would."""
    operation = workload.do_transaction(db, state)
    workload.finish_transaction(db, state, operation, committed=operation is not None)
    return operation

def load(workload):
    db = MemoryDB(workload.properties)
    state = workload.init_thread(0, 1)
    for _ in range(workload.record_count):
        assert workload.do_insert(db, state)
    return db, state


class TestConfiguration:
    def test_default_total_cash_thousand_per_account(self):
        workload = make_cew(totalcash="")
        assert workload.total_cash == 50 * 1000

    def test_rejects_insufficient_cash(self):
        with pytest.raises(WorkloadError):
            make_cew(totalcash=10)

    def test_single_balance_field(self):
        workload = make_cew()
        assert workload.field_names == [BALANCE_FIELD]


class TestLoadPhase:
    def test_loaded_sum_is_exactly_total_cash(self):
        workload = make_cew(totalcash=50007)  # does not divide evenly
        db, _ = load(workload)
        _, rows = db.scan("usertable", "", 1000)
        total = sum(int(fields[BALANCE_FIELD]) for _, fields in rows)
        assert total == 50007
        assert len(rows) == 50

    def test_remainder_spread_over_first_accounts(self):
        workload = make_cew(totalcash=50003)
        assert workload.initial_balance_for(0) == 1001
        assert workload.initial_balance_for(2) == 1001
        assert workload.initial_balance_for(3) == 1000

    def test_insert_start_offset(self):
        workload = make_cew(insertstart=100, totalcash=50003)
        assert workload.initial_balance_for(100) == 1001
        assert workload.initial_balance_for(103) == 1000


class TestOperationsPreserveInvariant:
    """Serially, every operation keeps accounts + escrow == totalcash."""

    def check_invariant(self, workload, db):
        _, rows = db.scan("usertable", "", 10_000)
        total = sum(int(fields[BALANCE_FIELD]) for _, fields in rows)
        assert total + workload.escrow.amount == workload.total_cash

    @pytest.mark.parametrize(
        "mix",
        [
            {"readproportion": 1.0, "readmodifywriteproportion": 0.0},
            {"readproportion": 0.0, "readmodifywriteproportion": 1.0},
            {
                "readproportion": 0.0,
                "readmodifywriteproportion": 0.0,
                "updateproportion": 1.0,
            },
            {
                "readproportion": 0.0,
                "readmodifywriteproportion": 0.0,
                "scanproportion": 1.0,
                "maxscanlength": 10,
            },
            {
                "readproportion": 0.25,
                "readmodifywriteproportion": 0.25,
                "updateproportion": 0.2,
                "insertproportion": 0.15,
                "deleteproportion": 0.15,
            },
        ],
    )
    def test_serial_mix_preserves_money(self, mix):
        workload = make_cew(**mix)
        db, state = load(workload)
        for _ in range(300):
            do_op(workload, db, state)
        self.check_invariant(workload, db)

    def test_delete_banks_balance_into_escrow(self):
        workload = make_cew(
            readproportion=0.0, readmodifywriteproportion=0.0, deleteproportion=1.0
        )
        db, state = load(workload)
        before = workload.escrow.amount
        assert do_op(workload, db, state) == "DELETE"
        assert workload.escrow.amount > before
        self.check_invariant(workload, db)

    def test_update_grants_at_most_one_dollar_from_escrow(self):
        workload = make_cew(
            readproportion=0.0, readmodifywriteproportion=0.0, updateproportion=1.0
        )
        db, state = load(workload)
        workload.escrow.deposit(5)  # out-of-band seed money for the test
        assert do_op(workload, db, state) == "UPDATE"
        assert workload.escrow.amount == 4
        # The granted dollar moved from escrow into an account.
        _, rows = db.scan("usertable", "", 1000)
        total = sum(int(fields[BALANCE_FIELD]) for _, fields in rows)
        assert total == workload.total_cash + 1

    def test_rmw_never_makes_balance_negative(self):
        workload = make_cew(
            recordcount=2,
            totalcash=2,  # every account has $1
            readproportion=0.0,
            readmodifywriteproportion=1.0,
            requestdistribution="uniform",
        )
        db, state = load(workload)
        for _ in range(100):
            do_op(workload, db, state)
        _, rows = db.scan("usertable", "", 10)
        assert all(int(fields[BALANCE_FIELD]) >= 0 for _, fields in rows)
        self.check_invariant(workload, db)


class TestValidation:
    def test_consistent_database_passes(self):
        workload = make_cew()
        db, state = load(workload)
        for _ in range(100):
            do_op(workload, db, state)
        result = workload.validate(db)
        assert result.passed
        assert result.anomaly_score == 0.0
        fields = dict(result.fields)
        assert fields["TOTAL CASH"] == workload.total_cash
        assert fields["COUNTED CASH"] == workload.total_cash
        assert fields["ACTUAL OPERATIONS"] == 100

    def test_corruption_detected_and_scored(self):
        workload = make_cew()
        db, state = load(workload)
        for _ in range(100):
            do_op(workload, db, state)
        # Corrupt one account by $7 behind the workload's back.
        key, fields = db.scan("usertable", "", 1)[1][0]
        db.update("usertable", key, {BALANCE_FIELD: str(int(fields[BALANCE_FIELD]) - 7)})
        result = workload.validate(db)
        assert not result.passed
        assert result.anomaly_score == pytest.approx(7 / 100)

    def test_anomaly_score_formula(self):
        """gamma = |S_initial - S_final| / n, the paper's definition."""
        workload = make_cew()
        db, state = load(workload)
        for _ in range(40):
            do_op(workload, db, state)
        key = db.scan("usertable", "", 1)[1][0][0]
        db.update("usertable", key, {BALANCE_FIELD: "0"})
        result = workload.validate(db)
        _, rows = db.scan("usertable", "", 1000)
        counted = sum(int(f[BALANCE_FIELD]) for _, f in rows) + workload.escrow.amount
        assert result.anomaly_score == pytest.approx(
            abs(workload.total_cash - counted) / 40
        )

    def test_escrow_counted_as_cash(self):
        workload = make_cew(
            readproportion=0.0, readmodifywriteproportion=0.0, deleteproportion=1.0
        )
        db, state = load(workload)
        for _ in range(10):
            do_op(workload, db, state)
        assert workload.escrow.amount > 0
        assert workload.validate(db).passed

    def test_validation_pages_through_large_tables(self):
        workload = make_cew(recordcount=2500, totalcash=2500000)
        db, _ = load(workload)
        result = workload.validate(db)
        assert result.passed


class TestBalanceCodec:
    def test_round_trip(self):
        workload = make_cew()
        assert workload.parse_balance(workload.encode_balance(123)) == 123

    def test_parse_garbage(self):
        workload = make_cew()
        assert workload.parse_balance(None) is None
        assert workload.parse_balance({}) is None
        assert workload.parse_balance({BALANCE_FIELD: "x"}) is None
