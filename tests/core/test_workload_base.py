"""Workload base class defaults and the validation-result contract."""

import pytest

from repro.core import DB, Properties, ValidationResult, Workload
from repro.measurements import Measurements


class TestWorkloadDefaults:
    def test_validate_is_noop_by_default(self):
        """The YCSB backward-compatibility contract: workloads without a
        validation stage behave exactly as under plain YCSB."""
        workload = Workload()
        workload.init(Properties())
        assert workload.validate(DB()) is None

    def test_finish_transaction_is_noop_by_default(self):
        workload = Workload()
        workload.init(Properties())
        workload.finish_transaction(DB(), object(), "READ", True)  # no raise

    def test_do_methods_abstract(self):
        workload = Workload()
        with pytest.raises(NotImplementedError):
            workload.do_insert(DB(), None)
        with pytest.raises(NotImplementedError):
            workload.do_transaction(DB(), None)

    def test_init_stores_properties_and_measurements(self):
        workload = Workload()
        properties = Properties({"a": "1"})
        measurements = Measurements()
        workload.init(properties, measurements)
        assert workload.properties is properties
        assert workload.measurements is measurements

    def test_stop_request(self):
        workload = Workload()
        assert not workload.stop_requested
        workload.request_stop()
        assert workload.stop_requested

    def test_thread_rngs_seeded_distinctly(self):
        workload = Workload()
        workload.init(Properties({"seed": "5"}))
        rng_a = workload.init_thread(0, 2)
        rng_b = workload.init_thread(1, 2)
        assert [rng_a.random() for _ in range(5)] != [rng_b.random() for _ in range(5)]

    def test_thread_rngs_reproducible(self):
        first = Workload()
        first.init(Properties({"seed": "5"}))
        second = Workload()
        second.init(Properties({"seed": "5"}))
        assert (
            first.init_thread(3, 8).random() == second.init_thread(3, 8).random()
        )

    def test_unseeded_rngs_differ_across_runs(self):
        workload = Workload()
        workload.init(Properties())
        assert (
            workload.init_thread(0, 1).random()
            != workload.init_thread(0, 1).random()
        )

    def test_default_batch_insert_loops(self):
        calls = []

        class CountingWorkload(Workload):
            def do_insert(self, db, state):
                calls.append(1)
                return len(calls) != 2  # second insert fails

        workload = CountingWorkload()
        workload.init(Properties())
        inserted = workload.do_batch_insert(DB(), None, 3)
        assert len(calls) == 3
        assert inserted == 2


class TestValidationResult:
    def test_defaults(self):
        result = ValidationResult(passed=True)
        assert result.fields == []
        assert result.anomaly_score is None

    def test_fields_ordered(self):
        result = ValidationResult(
            passed=False, fields=[("B", 1), ("A", 2)], anomaly_score=0.5
        )
        assert [name for name, _ in result.fields] == ["B", "A"]
