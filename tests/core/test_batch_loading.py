"""Bulk loading (YCSB++-style batch inserts)."""

import pytest

from repro.bindings import MemoryDB, TxnDB
from repro.bindings.kv import KVStoreDB
from repro.core import Client, ClosedEconomyWorkload, CoreWorkload, Properties
from repro.core import status as st
from repro.core.db import DB
from repro.kvstore import InMemoryKVStore
from repro.kvstore.lsm import LSMKVStore
from repro.measurements import Measurements


class TestDbBatchInsert:
    def test_default_loops_insert(self):
        db = MemoryDB(Properties())
        result = db.batch_insert("t", [("a", {"v": "1"}), ("b", {"v": "2"})])
        assert result.ok
        assert db.read("t", "a")[1] == {"v": "1"}
        assert db.read("t", "b")[1] == {"v": "2"}

    def test_default_reports_first_failure(self):
        db = MemoryDB(Properties())
        db.insert("t", "dup", {})
        result = db.batch_insert("t", [("x", {}), ("dup", {}), ("y", {})])
        assert not result.ok
        # Failure semantics of the loop fallback: earlier records land.
        assert db.read("t", "x")[0].ok

    def test_lsm_bulk_path(self, tmp_path):
        store = LSMKVStore(tmp_path)
        db = KVStoreDB(store, Properties())
        records = [(f"k{i:03d}", {"v": str(i)}) for i in range(200)]
        assert db.batch_insert("t", records).ok
        assert store.size() == 200
        assert db.read("t", "k007")[1] == {"v": "7"}
        store.close()

    def test_lsm_put_batch_is_atomic_under_lock(self, tmp_path):
        store = LSMKVStore(tmp_path)
        versions = store.put_batch([("a", {"v": "1"}), ("b", {"v": "2"})])
        assert versions == sorted(versions)
        assert store.get("a") == {"v": "1"}
        store.close()

    def test_txn_batch_is_one_transaction(self):
        from repro.txn import ClientTransactionManager

        manager = ClientTransactionManager(InMemoryKVStore())
        db = TxnDB(Properties(), manager=manager)
        before = manager.stats.begun
        assert db.batch_insert("t", [(f"k{i}", {"v": "x"}) for i in range(50)]).ok
        assert manager.stats.begun == before + 1  # one txn for all fifty

    def test_measured_db_records_batch_series(self):
        from repro.core import MeasuredDB

        measurements = Measurements()
        db = MeasuredDB(MemoryDB(Properties()), measurements)
        db.batch_insert("t", [("a", {}), ("b", {})])
        assert measurements.summary_for("BATCH-INSERT").count == 1


class TestClientBatchLoading:
    def _run_load(self, batchsize, recordcount=500):
        properties = Properties(
            {
                "recordcount": str(recordcount),
                "totalcash": str(recordcount * 1000),
                "fieldcount": "1",
                "threadcount": "4",
                "batchsize": str(batchsize),
                "seed": "3",
            }
        )
        workload = ClosedEconomyWorkload()
        measurements = Measurements()
        workload.init(properties, measurements)
        client = Client(workload, lambda: MemoryDB(properties), properties, measurements)
        return client.load(), measurements

    def test_batched_load_inserts_everything(self):
        result, measurements = self._run_load(batchsize=64)
        assert result.operations == 500
        assert result.failed_operations == 0
        assert result.validation.passed  # exact totalcash despite batching
        assert measurements.summary_for("BATCH-INSERT").count >= 500 // 64

    def test_batchsize_one_uses_single_inserts(self):
        result, measurements = self._run_load(batchsize=1)
        assert result.operations == 500
        assert measurements.summary_for("BATCH-INSERT").count == 0
        assert measurements.summary_for("INSERT").count == 500

    def test_core_workload_batches(self):
        properties = Properties(
            {"recordcount": "300", "fieldcount": "2", "threadcount": "2",
             "batchsize": "50", "seed": "4"}
        )
        workload = CoreWorkload()
        measurements = Measurements()
        workload.init(properties, measurements)
        client = Client(workload, lambda: MemoryDB(properties), properties, measurements)
        result = client.load()
        assert result.operations == 300
        assert result.failed_operations == 0


class TestThroughputSeriesWiring:
    def test_series_absent_by_default(self):
        properties = Properties(
            {"recordcount": "20", "operationcount": "30", "totalcash": "20000",
             "fieldcount": "1", "seed": "2"}
        )
        workload = ClosedEconomyWorkload()
        measurements = Measurements()
        workload.init(properties, measurements)
        client = Client(workload, lambda: MemoryDB(properties), properties, measurements)
        client.load()
        assert client.run().throughput_series is None

    def test_series_present_when_requested(self):
        properties = Properties(
            {"recordcount": "20", "operationcount": "200", "totalcash": "20000",
             "fieldcount": "1", "status.interval": "0.01", "seed": "2"}
        )
        workload = ClosedEconomyWorkload()
        measurements = Measurements()
        workload.init(properties, measurements)
        client = Client(workload, lambda: MemoryDB(properties), properties, measurements)
        client.load()
        result = client.run()
        series = result.throughput_series
        assert series is not None
        assert series.total_operations() == 200
