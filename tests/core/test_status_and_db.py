"""Status codes, the DB base class, MeasuredDB, and create_db."""

import pytest

from repro.core import DB, MeasuredDB, Properties, create_db
from repro.core import status as st
from repro.core.status import ALL_STATUSES, from_name
from repro.measurements import Measurements


class TestStatus:
    def test_ok(self):
        assert st.OK.ok
        assert st.OK.code == 0

    def test_failures_not_ok(self):
        for status in (st.ERROR, st.NOT_FOUND, st.CONFLICT, st.TIMEOUT):
            assert not status.ok

    def test_retryable_classification(self):
        assert st.CONFLICT.is_retryable()
        assert st.RATE_LIMITED.is_retryable()
        assert not st.NOT_FOUND.is_retryable()
        assert not st.BAD_REQUEST.is_retryable()

    def test_with_message(self):
        detailed = st.ERROR.with_message("disk on fire")
        assert detailed.code == st.ERROR.code
        assert "disk on fire" in str(detailed)

    def test_lookup_by_name(self):
        assert from_name("CONFLICT") is st.CONFLICT
        with pytest.raises(KeyError):
            from_name("NOPE")

    def test_all_statuses_unique_codes(self):
        codes = [status.code for status in ALL_STATUSES.values()]
        assert len(codes) == len(set(codes))


class TestDBDefaults:
    def test_crud_not_implemented(self):
        db = DB()
        assert db.read("t", "k")[0] is st.NOT_IMPLEMENTED
        assert db.scan("t", "k", 1)[0] is st.NOT_IMPLEMENTED
        assert db.update("t", "k", {}) is st.NOT_IMPLEMENTED
        assert db.insert("t", "k", {}) is st.NOT_IMPLEMENTED
        assert db.delete("t", "k") is st.NOT_IMPLEMENTED

    def test_transaction_methods_are_noops(self):
        """The YCSB+T backward-compatibility contract (§IV-A)."""
        db = DB()
        assert db.start().ok
        assert db.commit().ok
        assert db.abort().ok


class _RecordingDB(DB):
    def __init__(self):
        super().__init__()
        self.calls = []

    def read(self, table, key, fields=None):
        self.calls.append(("read", key))
        return st.OK, {"f": "v"}

    def update(self, table, key, values):
        self.calls.append(("update", key))
        return st.OK


class TestMeasuredDB:
    def test_records_operation_latency_and_status(self):
        measurements = Measurements()
        db = MeasuredDB(_RecordingDB(), measurements)
        db.read("t", "k")
        summary = measurements.summary_for("READ")
        assert summary.count == 1
        assert summary.return_codes == {"OK": 1}

    def test_tx_series_only_inside_transaction(self):
        measurements = Measurements()
        db = MeasuredDB(_RecordingDB(), measurements)
        db.read("t", "outside")
        db.start()
        db.read("t", "inside")
        db.commit()
        db.read("t", "outside-again")
        assert measurements.summary_for("READ").count == 3
        assert measurements.summary_for("TX-READ").count == 1
        assert measurements.summary_for("START").count == 1
        assert measurements.summary_for("COMMIT").count == 1

    def test_abort_closes_transaction_window(self):
        measurements = Measurements()
        db = MeasuredDB(_RecordingDB(), measurements)
        db.start()
        db.abort()
        db.update("t", "k", {})
        assert measurements.summary_for("TX-UPDATE").count == 0
        assert measurements.summary_for("ABORT").count == 1

    def test_inner_called(self):
        inner = _RecordingDB()
        db = MeasuredDB(inner, Measurements())
        db.read("t", "k")
        db.update("t", "k", {"f": "v"})
        assert inner.calls == [("read", "k"), ("update", "k")]


class TestCreateDb:
    def test_alias(self):
        db = create_db("memory", Properties())
        from repro.bindings import MemoryDB

        assert isinstance(db, MemoryDB)

    def test_dotted_path(self):
        db = create_db("repro.bindings.basic.BasicDB", Properties())
        from repro.bindings import BasicDB

        assert isinstance(db, BasicDB)

    def test_unknown_alias_raises(self):
        with pytest.raises(ValueError, match="unknown DB binding"):
            create_db("nonsense")

    def test_missing_class_raises(self):
        with pytest.raises(ValueError, match="has no class"):
            create_db("repro.bindings.basic.Missing")

    def test_non_db_class_rejected(self):
        with pytest.raises(TypeError):
            create_db("repro.core.properties.Properties")
