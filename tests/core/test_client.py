"""Client (workload executor) tests: phases, wrapping, validation stage."""

import pytest

from repro.bindings import MemoryDB, TxnDB
from repro.core import Client, ClosedEconomyWorkload, CoreWorkload, Properties
from repro.measurements import Measurements


def make_setup(workload_class=ClosedEconomyWorkload, db="memory", **overrides):
    base = {
        "recordcount": "40",
        "operationcount": "200",
        "totalcash": "40000",
        "readproportion": "0.8",
        "readmodifywriteproportion": "0.2",
        "fieldcount": "1",
        "threadcount": "2",
        "seed": "9",
    }
    base.update({key: str(value) for key, value in overrides.items()})
    properties = Properties(base)
    measurements = Measurements()
    workload = workload_class()
    workload.init(properties, measurements)
    factory = (lambda: TxnDB(properties)) if db == "txn" else (lambda: MemoryDB(properties))
    return Client(workload, factory, properties, measurements), workload


class TestLoadPhase:
    def test_inserts_recordcount_records(self):
        client, workload = make_setup()
        result = client.load()
        assert result.phase == "load"
        assert result.operations == 40
        assert result.failed_operations == 0
        assert result.measurements.summary_for("INSERT").count == 40

    def test_load_wrapped_in_transactions(self):
        client, _ = make_setup()
        result = client.load()
        assert result.measurements.summary_for("START").count == 40
        assert result.measurements.summary_for("COMMIT").count == 40

    def test_load_validates(self):
        client, _ = make_setup()
        result = client.load()
        assert result.validation is not None
        assert result.validation.passed

    def test_explicit_count_overrides_properties(self):
        client, _ = make_setup()
        assert client.load(10).operations == 10


class TestRunPhase:
    def test_executes_operationcount(self):
        client, _ = make_setup()
        client.load()
        result = client.run()
        assert result.operations == 200
        assert result.thread_count == 2
        assert result.run_time_ms > 0
        assert result.throughput > 0

    def test_tx_series_recorded(self):
        client, _ = make_setup()
        client.load()
        result = client.run()
        summaries = result.measurements.summaries()
        assert summaries["START"].count == 240  # 40 loads + 200 ops
        tx_read = summaries.get("TX-READ")
        assert tx_read is not None and tx_read.count > 0
        # The client-level wrapper series exists for each executed op type.
        assert "TX-READMODIFYWRITE" in summaries

    def test_validation_stage_runs_after_phase(self):
        client, _ = make_setup(threadcount=1)
        client.load()
        result = client.run()
        assert result.validation is not None
        assert result.validation.passed  # single thread: no anomalies
        assert result.anomaly_score == 0.0

    def test_transactional_run_aborts_show_as_failures(self):
        client, _ = make_setup(db="txn", threadcount=4)
        client.load()
        result = client.run()
        assert result.operations == 200
        assert result.validation.passed  # conflicts abort; money safe

    def test_errors_surface_in_result(self):
        class ExplodingWorkload(CoreWorkload):
            def do_transaction(self, db, thread_state):
                raise RuntimeError("workload bug")

        client, _ = make_setup(workload_class=ExplodingWorkload)
        client.load()
        result = client.run()
        assert result.errors
        assert "workload bug" in result.errors[0]

    def test_target_throttling_slows_run(self):
        client, _ = make_setup(target="100", operationcount="50", threadcount=1)
        client.load()
        result = client.run()
        # 50 ops at 100 ops/s should take roughly half a second.
        assert result.run_time_ms > 300

    def test_stop_request_halts_early(self):
        class StoppingWorkload(ClosedEconomyWorkload):
            def do_transaction(self, db, thread_state):
                result = super().do_transaction(db, thread_state)
                if self.operations_executed >= 20:
                    self.request_stop()
                return result

        client, workload = make_setup(workload_class=StoppingWorkload, operationcount=10_000)
        client.load()
        result = client.run()
        assert result.operations < 10_000


class TestReport:
    def test_report_carries_validation_and_throughput(self):
        client, _ = make_setup()
        client.load()
        result = client.run()
        report = result.report()
        assert report.operations == 200
        assert dict(report.validation)["TOTAL CASH"] == 40000
        assert report.throughput == pytest.approx(result.throughput)
