"""Client (workload executor) tests: phases, wrapping, validation stage."""

import io
import threading
import time

import pytest

from repro.bindings import MemoryDB, TxnDB, registry
from repro.core import Client, ClosedEconomyWorkload, CoreWorkload, Properties
from repro.core import client as client_module
from repro.core import status as st
from repro.measurements import Measurements, TextExporter


def make_setup(workload_class=ClosedEconomyWorkload, db="memory", **overrides):
    base = {
        "recordcount": "40",
        "operationcount": "200",
        "totalcash": "40000",
        "readproportion": "0.8",
        "readmodifywriteproportion": "0.2",
        "fieldcount": "1",
        "threadcount": "2",
        "seed": "9",
    }
    base.update({key: str(value) for key, value in overrides.items()})
    properties = Properties(base)
    measurements = Measurements()
    workload = workload_class()
    workload.init(properties, measurements)
    factory = (lambda: TxnDB(properties)) if db == "txn" else (lambda: MemoryDB(properties))
    return Client(workload, factory, properties, measurements), workload


class TestLoadPhase:
    def test_inserts_recordcount_records(self):
        client, workload = make_setup()
        result = client.load()
        assert result.phase == "load"
        assert result.operations == 40
        assert result.failed_operations == 0
        assert result.measurements.summary_for("INSERT").count == 40

    def test_load_wrapped_in_transactions(self):
        client, _ = make_setup()
        result = client.load()
        assert result.measurements.summary_for("START").count == 40
        assert result.measurements.summary_for("COMMIT").count == 40

    def test_load_validates(self):
        client, _ = make_setup()
        result = client.load()
        assert result.validation is not None
        assert result.validation.passed

    def test_explicit_count_overrides_properties(self):
        client, _ = make_setup()
        assert client.load(10).operations == 10


class TestRunPhase:
    def test_executes_operationcount(self):
        client, _ = make_setup()
        client.load()
        result = client.run()
        assert result.operations == 200
        assert result.thread_count == 2
        assert result.run_time_ms > 0
        assert result.throughput > 0

    def test_tx_series_recorded(self):
        client, _ = make_setup()
        client.load()
        result = client.run()
        summaries = result.measurements.summaries()
        assert summaries["START"].count == 240  # 40 loads + 200 ops
        tx_read = summaries.get("TX-READ")
        assert tx_read is not None and tx_read.count > 0
        # The client-level wrapper series exists for each executed op type.
        assert "TX-READMODIFYWRITE" in summaries

    def test_validation_stage_runs_after_phase(self):
        client, _ = make_setup(threadcount=1)
        client.load()
        result = client.run()
        assert result.validation is not None
        assert result.validation.passed  # single thread: no anomalies
        assert result.anomaly_score == 0.0

    def test_transactional_run_aborts_show_as_failures(self):
        client, _ = make_setup(db="txn", threadcount=4)
        client.load()
        result = client.run()
        assert result.operations == 200
        assert result.validation.passed  # conflicts abort; money safe

    def test_errors_surface_in_result(self):
        class ExplodingWorkload(CoreWorkload):
            def do_transaction(self, db, thread_state):
                raise RuntimeError("workload bug")

        client, _ = make_setup(workload_class=ExplodingWorkload)
        client.load()
        result = client.run()
        assert result.errors
        assert "workload bug" in result.errors[0]

    def test_target_throttling_slows_run(self):
        client, _ = make_setup(target="100", operationcount="50", threadcount=1)
        client.load()
        result = client.run()
        # 50 ops at 100 ops/s should take roughly half a second.
        assert result.run_time_ms > 300

    def test_stop_request_halts_early(self):
        class StoppingWorkload(ClosedEconomyWorkload):
            def do_transaction(self, db, thread_state):
                result = super().do_transaction(db, thread_state)
                if self.operations_executed >= 20:
                    self.request_stop()
                return result

        client, workload = make_setup(workload_class=StoppingWorkload, operationcount=10_000)
        client.load()
        result = client.run()
        assert result.operations < 10_000


class TestReport:
    def test_report_carries_validation_and_throughput(self):
        client, _ = make_setup()
        client.load()
        result = client.run()
        report = result.report()
        assert report.operations == 200
        assert dict(report.validation)["TOTAL CASH"] == 40000
        assert report.throughput == pytest.approx(result.throughput)


class TestBatchLoadThrottling:
    """Regression: the batched load path used to skip the throttle entirely,
    so ``target`` was silently ignored whenever ``batchsize > 1``."""

    def _throttled_load(self, monkeypatch, batchsize):
        clock = [0.0]
        sleeps = []
        real_throttle = client_module.Throttle

        def fake_sleep(seconds):
            sleeps.append(seconds)
            clock[0] += seconds

        def fake_throttle(ops_per_second, **_ignored_clock_kwargs):
            return real_throttle(
                ops_per_second, clock=lambda: clock[0], sleep=fake_sleep
            )

        monkeypatch.setattr(client_module, "Throttle", fake_throttle)
        properties = Properties(
            {
                "recordcount": "200",
                "totalcash": "200000",
                "fieldcount": "1",
                "threadcount": "1",
                "batchsize": str(batchsize),
                "target": "1000",
                "seed": "5",
            }
        )
        workload = ClosedEconomyWorkload()
        measurements = Measurements()
        workload.init(properties, measurements)
        client = Client(workload, lambda: MemoryDB(properties), properties, measurements)
        return client.load(), sleeps

    def test_batched_load_respects_target_under_fake_clock(self, monkeypatch):
        result, sleeps = self._throttled_load(monkeypatch, batchsize=50)
        assert result.operations == 200
        assert result.failed_operations == 0
        # 200 records at 1000 ops/s in batches of 50: the first batch is
        # free (it starts the pacer), the remaining 150 slots cost 1 ms
        # each of simulated sleeping.
        assert sum(sleeps) == pytest.approx(0.150, abs=0.005)

    def test_single_insert_path_pacing_unchanged(self, monkeypatch):
        result, sleeps = self._throttled_load(monkeypatch, batchsize=1)
        assert result.operations == 200
        assert sum(sleeps) == pytest.approx(0.199, abs=0.005)


class TestPhaseClock:
    """Regression: ``started_at`` used to be stamped after the main thread
    returned from ``barrier.wait()``; worker progress before the main
    thread was rescheduled inflated the reported throughput."""

    def test_run_time_covers_all_recorded_samples(self, monkeypatch):
        real_barrier = threading.Barrier

        class LaggyBarrier(real_barrier):
            """Releases everyone, then delays only the main thread —
            a deterministic stand-in for unlucky scheduling."""

            def wait(self, timeout=None):
                index = super().wait(timeout)
                if threading.current_thread() is threading.main_thread():
                    time.sleep(0.08)
                return index

        monkeypatch.setattr(client_module.threading, "Barrier", LaggyBarrier)

        class SlowInsertDB(MemoryDB):
            def insert(self, table, key, values):
                time.sleep(0.002)
                return super().insert(table, key, values)

        properties = Properties(
            {
                "recordcount": "30",
                "totalcash": "30000",
                "fieldcount": "1",
                "threadcount": "1",
                "measurementtype": "raw",
                "seed": "8",
            }
        )
        workload = ClosedEconomyWorkload()
        measurements = Measurements(measurement_type="raw")
        workload.init(properties, measurements)
        client = Client(workload, lambda: SlowInsertDB(properties), properties, measurements)
        result = client.load()
        assert result.operations == 30
        insert = result.measurements.summary_for("INSERT")
        # One worker thread: the phase cannot have finished faster than
        # the sum of the latencies it recorded.
        assert result.run_time_ms * 1000 >= insert.total_us


class TestBatchSeriesAccounting:
    """Regression: the batch path recorded ``claimed`` into the throughput
    series before the batch committed, counting failed/aborted inserts."""

    def _load(self, db_class):
        properties = Properties(
            {
                "recordcount": "100",
                "totalcash": "100000",
                "fieldcount": "1",
                "threadcount": "2",
                "batchsize": "25",
                "status.interval": "0.01",
                "seed": "6",
            }
        )
        workload = ClosedEconomyWorkload()
        measurements = Measurements()
        workload.init(properties, measurements)
        client = Client(workload, lambda: db_class(properties), properties, measurements)
        return client.load()

    def test_committed_batches_enter_the_series(self):
        result = self._load(MemoryDB)
        assert result.failed_operations == 0
        assert result.throughput_series.total_operations() == 100

    def test_aborted_batches_stay_out_of_the_series(self):
        class FailingCommitDB(MemoryDB):
            def commit(self):
                return st.ERROR

        result = self._load(FailingCommitDB)
        assert result.operations == 100
        assert result.failed_operations == 100
        assert result.throughput_series.total_operations() == 0


class TestStatusThread:
    def _run(self, status, sink=None):
        properties = Properties(
            {
                "recordcount": "30",
                "operationcount": "300",
                "totalcash": "30000",
                "fieldcount": "1",
                "threadcount": "1",
                "seed": "2",
            }
        )
        if status:
            properties.set("status", "true")
            properties.set("status.interval", "0.02")
        workload = ClosedEconomyWorkload()
        measurements = Measurements()
        workload.init(properties, measurements)
        client = Client(
            workload, lambda: MemoryDB(properties), properties, measurements,
            status_sink=sink,
        )
        client.load()
        return client.run()

    def test_status_emits_interval_lines_and_snapshots(self):
        sink = io.StringIO()
        result = self._run(True, sink)
        output = sink.getvalue()
        assert "[run]" in output
        assert "current ops/sec" in output
        assert result.status_snapshots  # the final flush at minimum
        assert sum(s.interval_operations for s in result.status_snapshots) == 300
        assert result.report().intervals == result.status_snapshots

    def test_status_does_not_perturb_report_structure(self):
        with_status = self._run(True, io.StringIO())
        registry.reset()  # fresh shared store: make the two runs comparable
        without = self._run(False)

        def skeleton(report_text):
            # Keep "[SECTION], Metric" and drop the (timing-dependent) value.
            return [line.rsplit(",", 1)[0] for line in report_text.splitlines()]

        assert skeleton(TextExporter().export(with_status.report())) == skeleton(
            TextExporter().export(without.report())
        )
        assert without.status_snapshots == []
        assert without.throughput_series is None
