"""Anomaly-targeting workloads (§VII future work) and isolation levels."""

import pytest

from repro.bindings.kv import KVStoreDB
from repro.bindings.txn import TxnDB
from repro.core import Client, Properties
from repro.core.workload import WorkloadError
from repro.kvstore import ConstantLatency, InMemoryKVStore, LatencyInjectingStore
from repro.measurements import Measurements
from repro.txn import ClientTransactionManager
from repro.workloads import LostUpdateWorkload, ReadSkewWorkload, WriteSkewWorkload


def run_workload(workload_class, mode, operations=2500, threads=8, latency_s=0.0003, seed=5):
    properties = Properties(
        {
            "recordcount": "8",
            "paircount": "8",
            "operationcount": str(operations),
            "threadcount": str(threads),
            "seed": str(seed),
        }
    )
    backing = InMemoryKVStore()
    store = LatencyInjectingStore(backing, ConstantLatency(latency_s))
    workload = workload_class()
    measurements = Measurements()
    workload.init(properties, measurements)
    if mode == "raw":
        load_factory = lambda: KVStoreDB(backing)  # noqa: E731
        run_factory = lambda: KVStoreDB(store)  # noqa: E731
    else:
        fast = ClientTransactionManager(backing)
        slow = ClientTransactionManager(store, isolation=mode)
        load_factory = lambda: TxnDB(properties, manager=fast)  # noqa: E731
        run_factory = lambda: TxnDB(properties, manager=slow)  # noqa: E731
    Client(workload, load_factory, properties, Measurements()).load()
    return Client(workload, run_factory, properties, measurements).run()


class TestLostUpdateWorkload:
    def test_serial_execution_is_exact(self):
        result = run_workload(LostUpdateWorkload, "raw", operations=500, threads=1)
        assert result.validation.passed
        assert result.validation.anomaly_score == 0.0

    def test_raw_concurrency_loses_updates(self):
        result = run_workload(LostUpdateWorkload, "raw")
        assert result.validation.anomaly_score > 0
        fields = dict(result.validation.fields)
        assert fields["LOST UPDATES"] > 0
        assert fields["STORED SUM"] < fields["COMMITTED INCREMENTS"]

    def test_snapshot_isolation_prevents_lost_updates(self):
        result = run_workload(LostUpdateWorkload, "snapshot")
        assert result.validation.passed
        assert result.validation.anomaly_score == 0.0
        assert result.failed_operations > 0  # conflicts aborted instead

    def test_accounting_matches_commits_not_attempts(self):
        result = run_workload(LostUpdateWorkload, "snapshot", operations=800)
        fields = dict(result.validation.fields)
        assert fields["COMMITTED INCREMENTS"] == 800 - result.failed_operations

    def test_rejects_bad_configuration(self):
        workload = LostUpdateWorkload()
        with pytest.raises(WorkloadError):
            workload.init(Properties({"recordcount": "0"}))
        with pytest.raises(WorkloadError):
            workload.init(Properties({"requestdistribution": "pareto"}))


class TestWriteSkewWorkload:
    def test_serial_execution_never_violates(self):
        result = run_workload(WriteSkewWorkload, "raw", operations=500, threads=1)
        assert result.validation.passed

    def test_snapshot_isolation_permits_write_skew(self):
        """SI's defining anomaly: disjoint writes based on overlapping reads."""
        result = run_workload(WriteSkewWorkload, "snapshot")
        assert result.validation.anomaly_score > 0
        fields = dict(result.validation.fields)
        assert fields["OBSERVED CONSTRAINT VIOLATIONS"] > 0

    def test_serializable_prevents_write_skew(self):
        result = run_workload(WriteSkewWorkload, "serializable")
        assert result.validation.passed
        assert result.validation.anomaly_score == 0.0
        assert result.failed_operations > 0  # validation aborts did the work

    def test_rejects_bad_configuration(self):
        with pytest.raises(WorkloadError):
            WriteSkewWorkload().init(Properties({"paircount": "0"}))


class TestReadSkewWorkload:
    def test_serial_execution_reads_clean(self):
        result = run_workload(ReadSkewWorkload, "raw", operations=500, threads=1)
        assert result.validation.passed
        assert dict(result.validation.fields)["FRACTURED READS"] == 0

    def test_raw_concurrency_fractures_reads(self):
        result = run_workload(ReadSkewWorkload, "raw")
        fields = dict(result.validation.fields)
        assert fields["FRACTURED READS"] > 0
        assert result.validation.anomaly_score > 0

    def test_snapshot_reads_never_fracture(self):
        result = run_workload(ReadSkewWorkload, "snapshot")
        fields = dict(result.validation.fields)
        assert fields["FRACTURED READS"] == 0
        assert fields["DURABLE MISMATCHES"] == 0
        assert result.validation.passed

    def test_rejects_bad_configuration(self):
        with pytest.raises(WorkloadError):
            ReadSkewWorkload().init(Properties({"paircount": "0"}))
        with pytest.raises(WorkloadError):
            ReadSkewWorkload().init(Properties({"readproportion": "1.5"}))


class TestSerializableIsolationMode:
    def test_unknown_isolation_rejected(self):
        with pytest.raises(ValueError):
            ClientTransactionManager(InMemoryKVStore(), isolation="chaos")

    def test_write_skew_pair_scenario_deterministic(self):
        """The two-doctors schedule, hand-interleaved."""
        from repro.txn import TransactionConflict

        for isolation, expect_skew in (("snapshot", True), ("serializable", False)):
            manager = ClientTransactionManager(InMemoryKVStore(), isolation=isolation)
            manager.run(lambda tx: tx.write("x", {"v": "1"}))
            manager.run(lambda tx: tx.write("y", {"v": "1"}))
            t1 = manager.begin()
            t2 = manager.begin()
            # Both read both records, then write disjoint records.
            assert t1.read("x")["v"] == "1" and t1.read("y")["v"] == "1"
            assert t2.read("x")["v"] == "1" and t2.read("y")["v"] == "1"
            t1.write("x", {"v": "0"})
            t2.write("y", {"v": "0"})
            t1.commit()
            if expect_skew:
                t2.commit()  # SI lets this through: write skew
                with manager.transaction() as tx:
                    assert tx.read("x")["v"] == "0" and tx.read("y")["v"] == "0"
            else:
                with pytest.raises(TransactionConflict):
                    t2.commit()
                with manager.transaction() as tx:
                    assert int(tx.read("x")["v"]) + int(tx.read("y")["v"]) >= 1

    def test_serializable_read_of_changed_key_aborts(self):
        from repro.txn import TransactionConflict

        manager = ClientTransactionManager(InMemoryKVStore(), isolation="serializable")
        manager.run(lambda tx: tx.write("a", {"v": "1"}))
        manager.run(lambda tx: tx.write("b", {"v": "1"}))
        t1 = manager.begin()
        t1.read("a")
        manager.run(lambda tx: tx.write("a", {"v": "2"}))  # invalidates t1's read
        t1.write("b", {"v": "9"})
        with pytest.raises(TransactionConflict):
            t1.commit()

    def test_serializable_read_of_absent_key_validated(self):
        from repro.txn import TransactionConflict

        manager = ClientTransactionManager(InMemoryKVStore(), isolation="serializable")
        manager.run(lambda tx: tx.write("b", {"v": "1"}))
        t1 = manager.begin()
        assert t1.read("ghost") is None
        manager.run(lambda tx: tx.write("ghost", {"v": "born"}))
        t1.write("b", {"v": "2"})
        with pytest.raises(TransactionConflict):
            t1.commit()

    def test_rewritten_reads_not_double_validated(self):
        manager = ClientTransactionManager(InMemoryKVStore(), isolation="serializable")
        manager.run(lambda tx: tx.write("k", {"n": "0"}))
        # Plain read-modify-write of the same key must still commit.
        def body(tx):
            value = int(tx.read("k")["n"])
            tx.write("k", {"n": str(value + 1)})

        manager.run(body)
        with manager.transaction() as tx:
            assert tx.read("k") == {"n": "1"}

    def test_read_only_transactions_never_validated_away(self):
        manager = ClientTransactionManager(InMemoryKVStore(), isolation="serializable")
        manager.run(lambda tx: tx.write("k", {"n": "0"}))
        t1 = manager.begin()
        t1.read("k")
        manager.run(lambda tx: tx.write("k", {"n": "1"}))
        t1.commit()  # read-only: one consistent snapshot is serializable


class TestCliIntegration:
    @pytest.mark.parametrize("alias", ["lost_update", "write_skew", "read_skew"])
    def test_workloads_run_from_cli(self, alias, capsys):
        from repro.core.cli import main

        # Serializable isolation: under the default snapshot level the
        # write_skew workload can legitimately detect its anomaly (exit 1),
        # which makes a code==0 assertion racy under load.
        code = main(
            ["bench", "-db", "txn",
             "-p", f"workload={alias}",
             "-p", "recordcount=4", "-p", "paircount=4",
             "-p", "operationcount=100", "-p", "seed=2",
             "-p", f"txn.namespace=cli-{alias}",
             "-p", "txn.isolation=serializable",
             "-threads", "2"]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "[ANOMALY SCORE]," in output
