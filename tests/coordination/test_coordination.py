"""Multi-client coordination: state machine, HTTP protocol, full flow."""

import threading

import pytest

from repro.coordination import (
    CoordinationError,
    CoordinationServer,
    CoordinationState,
    CoordinatorClient,
)


class TestCoordinationState:
    def test_registration_assigns_stable_indices(self):
        state = CoordinationState(2)
        assert state.register("a") == 0
        assert state.register("b") == 1
        assert state.register("a") == 0  # idempotent
        assert state.registered_clients() == ["a", "b"]

    def test_over_registration_rejected(self):
        state = CoordinationState(1)
        state.register("a")
        with pytest.raises(ValueError):
            state.register("b")

    def test_rejects_zero_clients(self):
        with pytest.raises(ValueError):
            CoordinationState(0)

    def test_barrier_releases_at_quorum(self):
        state = CoordinationState(2)
        state.register("a")
        state.register("b")
        assert state.arrive("go", "a") is False
        assert state.barrier_status("go") == (False, 1)
        assert state.arrive("go", "b") is True
        assert state.barrier_status("go") == (True, 2)

    def test_barrier_requires_registration(self):
        state = CoordinationState(1)
        with pytest.raises(KeyError):
            state.arrive("go", "stranger")

    def test_barriers_independent(self):
        state = CoordinationState(1)
        state.register("a")
        state.arrive("one", "a")
        assert state.barrier_status("two") == (False, 0)

    def test_summary_aggregates(self):
        state = CoordinationState(2)
        state.submit_report({"client": "a", "operations": 100, "throughput": 50.0,
                             "failed_operations": 1, "anomaly_score": 0.0})
        state.submit_report({"client": "b", "operations": 200, "throughput": 70.0,
                             "failed_operations": 0, "anomaly_score": 0.5})
        summary = state.summary()
        assert summary["reports"] == 2
        assert summary["total_operations"] == 300
        assert summary["total_throughput"] == pytest.approx(120.0)
        assert summary["total_failed_operations"] == 1
        assert summary["max_anomaly_score"] == 0.5

    def test_summary_without_scores(self):
        state = CoordinationState(1)
        state.submit_report({"client": "a", "operations": 1, "throughput": 1.0})
        assert state.summary()["max_anomaly_score"] is None


class TestHttpProtocol:
    @pytest.fixture
    def server(self):
        with CoordinationServer(expected_clients=2) as running:
            yield running

    def test_register_and_barrier_roundtrip(self, server):
        first = CoordinatorClient(server.address, client_id="c1", sleep=lambda _s: None)
        second = CoordinatorClient(server.address, client_id="c2", sleep=lambda _s: None)
        assert first.register() == (0, 2)
        assert second.register() == (1, 2)

        released = []

        def arrive(client):
            client.wait_barrier("start", timeout_s=10)
            released.append(client.client_id)

        threads = [
            threading.Thread(target=arrive, args=(client,))
            for client in (first, second)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=15)
        assert sorted(released) == ["c1", "c2"]

    def test_unregistered_barrier_is_an_error(self, server):
        stranger = CoordinatorClient(server.address, client_id="ghost")
        with pytest.raises(CoordinationError):
            stranger.wait_barrier("start")

    def test_unreachable_coordinator(self):
        client = CoordinatorClient(("127.0.0.1", 1), timeout_s=0.2)
        with pytest.raises(CoordinationError):
            client.register()

    def test_summary_over_http(self, server):
        client = CoordinatorClient(server.address, client_id="c1")
        client.register()
        server.state.submit_report({"client": "c1", "operations": 7, "throughput": 3.0})
        summary = client.summary()
        assert summary["total_operations"] == 7


class TestKeyspaceSlicing:
    def test_even_partition(self):
        slices = [CoordinatorClient.keyspace_slice(i, 4, 100) for i in range(4)]
        assert slices == [(0, 25), (25, 25), (50, 25), (75, 25)]

    def test_remainder_spread(self):
        slices = [CoordinatorClient.keyspace_slice(i, 3, 100) for i in range(3)]
        assert slices == [(0, 34), (34, 33), (67, 33)]
        assert sum(count for _, count in slices) == 100
        # Contiguous and exhaustive.
        cursor = 0
        for start, count in slices:
            assert start == cursor
            cursor += count
        assert cursor == 100

    def test_bad_index_rejected(self):
        with pytest.raises(ValueError):
            CoordinatorClient.keyspace_slice(3, 3, 100)


class TestCoordinatedBenchmark:
    def test_two_in_process_clients_share_one_benchmark(self):
        """Two 'client processes' (threads here) load disjoint slices of
        one store and run concurrently, coordinated by barriers."""
        from repro.bindings import MemoryDB
        from repro.core import Client, ClosedEconomyWorkload, Properties
        from repro.measurements import Measurements

        record_count = 100
        with CoordinationServer(expected_clients=2) as server:
            results = {}
            errors = []

            def one_client(name):
                try:
                    coordinator = CoordinatorClient(server.address, client_id=name)
                    index, expected = coordinator.register()
                    start, count = CoordinatorClient.keyspace_slice(
                        index, expected, record_count
                    )
                    properties = Properties(
                        {
                            "recordcount": str(record_count),
                            "insertstart": str(start),
                            "insertcount": str(count),
                            "operationcount": "300",
                            "totalcash": str(record_count * 1000),
                            "fieldcount": "1",
                            "threadcount": "2",
                            "memory.namespace": "coordinated",
                            "insertorder": "ordered",
                            "seed": "6",
                        }
                    )
                    workload = ClosedEconomyWorkload()
                    measurements = Measurements()
                    workload.init(properties, measurements)
                    client = Client(
                        workload, lambda: MemoryDB(properties), properties, measurements
                    )
                    coordinator.wait_barrier("load-start", timeout_s=30)
                    client.load(count)
                    coordinator.wait_barrier("run-start", timeout_s=30)
                    result = client.run()
                    coordinator.submit_result("run", result)
                    results[name] = result
                except Exception as exc:  # noqa: BLE001
                    errors.append(f"{name}: {exc!r}")

            threads = [
                threading.Thread(target=one_client, args=(f"proc-{i}",))
                for i in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert not errors, errors

            summary = server.state.summary()
            assert summary["reports"] == 2
            assert summary["total_operations"] == 600
            # The two loaders produced the complete, disjoint key space.
            from repro.bindings import registry  # noqa: PLC0415

            store = MemoryDB(
                Properties({"memory.namespace": "coordinated"})
            ).store
            assert store.size() == record_count
