"""Unit and property tests for the repetition-statistics module."""

import math
import random
import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.stats import (
    T_TABLE_95,
    SampleStats,
    merge,
    percentile,
    summarize,
    t_critical_95,
)
from repro.measurements.histogram import nearest_rank


class TestTTable:
    def test_known_critical_values(self):
        """Spot checks against the standard two-sided 95 % t table."""
        assert t_critical_95(1) == 12.706
        assert t_critical_95(2) == 4.303
        assert t_critical_95(5) == 2.571
        assert t_critical_95(10) == 2.228
        assert t_critical_95(30) == 2.042
        assert t_critical_95(120) == 1.980

    def test_limit_is_normal_z(self):
        assert t_critical_95(121) == 1.960
        assert t_critical_95(10_000) == 1.960

    def test_between_rows_is_conservative(self):
        """df between tabulated rows uses the next lower df (wider CI)."""
        assert t_critical_95(35) == T_TABLE_95[30]
        assert t_critical_95(100) == T_TABLE_95[60]

    def test_monotone_decreasing(self):
        values = [t_critical_95(df) for df in range(1, 200)]
        assert all(b <= a for a, b in zip(values, values[1:]))

    def test_rejects_zero_df(self):
        with pytest.raises(ValueError):
            t_critical_95(0)


class TestSummarize:
    def test_matches_statistics_module(self):
        values = [3.0, 1.5, 4.25, 0.5, 2.0]
        stats = summarize(values)
        assert stats.n == 5
        assert stats.mean == pytest.approx(statistics.fmean(values))
        assert stats.stddev == pytest.approx(statistics.stdev(values))
        assert stats.min == 0.5
        assert stats.max == 4.25

    def test_single_value_has_no_variance_information(self):
        stats = summarize([7.0])
        assert stats.n == 1
        assert stats.stddev is None
        assert stats.ci95 is None
        assert stats.ci95_interval is None

    def test_constant_sample_zero_width_ci(self):
        stats = summarize([5.0] * 4)
        assert stats.stddev == 0.0
        assert stats.ci95 == 0.0
        assert stats.ci95_interval == (5.0, 5.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_ci_formula(self):
        """ci95 = t(n-1) * s / sqrt(n), verified by hand for n=3."""
        stats = summarize([10.0, 12.0, 14.0])
        expected = 4.303 * statistics.stdev([10.0, 12.0, 14.0]) / math.sqrt(3)
        assert stats.ci95 == pytest.approx(expected)


class TestCiShrinksWithN:
    def test_ci_width_shrinks_like_inverse_sqrt_n(self):
        """On seeded gaussian data, CI half-width ~ 1/sqrt(N).

        Uses matched t factors to isolate the 1/sqrt(N) term; the sample
        stddev converges, so width(4N)/width(N) -> 1/2 up to noise.
        """
        rng = random.Random(424242)
        small_n, big_n = 30, 480  # factor 16 => width ratio ~ 1/4
        big = [rng.gauss(100.0, 10.0) for _ in range(big_n)]
        small = big[:small_n]
        width_small = summarize(small).ci95
        width_big = summarize(big).ci95
        ratio = width_big / width_small
        expected = math.sqrt(small_n / big_n)  # 0.25
        # stddev estimates differ between the windows; allow 30 % slack.
        assert ratio == pytest.approx(expected, rel=0.30)

    def test_more_repetitions_narrow_the_interval(self):
        rng = random.Random(7)
        values = [rng.gauss(50.0, 5.0) for _ in range(256)]
        widths = [summarize(values[:n]).ci95 for n in (4, 16, 64, 256)]
        assert all(b < a for a, b in zip(widths, widths[1:]))


class TestMerge:
    def test_merge_equals_pooled_computation(self):
        xs = [1.0, 2.5, 3.25]
        ys = [10.0, 11.5, 9.75, 12.0]
        merged = merge(summarize(xs), summarize(ys))
        pooled = summarize(xs + ys)
        assert merged.n == pooled.n
        assert merged.mean == pytest.approx(pooled.mean)
        assert merged.m2 == pytest.approx(pooled.m2)
        assert merged.min == pooled.min
        assert merged.max == pooled.max

    @settings(max_examples=200, deadline=None)
    @given(
        xs=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1
        ),
        ys=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1
        ),
    )
    def test_merge_equals_pooled_property(self, xs, ys):
        merged = merge(summarize(xs), summarize(ys))
        pooled = summarize(xs + ys)
        assert merged.n == pooled.n
        assert merged.mean == pytest.approx(pooled.mean, rel=1e-9, abs=1e-6)
        assert merged.m2 == pytest.approx(pooled.m2, rel=1e-6, abs=1e-3)
        assert merged.min == pooled.min
        assert merged.max == pooled.max

    def test_merge_with_empty_side(self):
        stats = summarize([1.0, 2.0])
        empty = SampleStats(n=0, mean=0.0, m2=0.0, min=math.inf, max=-math.inf)
        assert merge(stats, empty) is stats
        assert merge(empty, stats) is stats

    def test_merge_is_associative_enough(self):
        a, b, c = [1.0, 2.0], [30.0, 31.0, 29.0], [5.5]
        left = merge(merge(summarize(a), summarize(b)), summarize(c))
        right = merge(summarize(a), merge(summarize(b), summarize(c)))
        assert left.mean == pytest.approx(right.mean)
        assert left.m2 == pytest.approx(right.m2)


class TestPercentileNearestRank:
    def test_interacts_with_measurement_nearest_rank(self):
        """The stats percentile and the histogram layer agree on ranks."""
        values = list(range(1, 11))  # 1..10
        for fraction in (0.5, 0.90, 0.95, 0.99, 1.0):
            rank = nearest_rank(fraction, len(values))
            assert percentile(values, fraction) == float(values[rank - 1])

    def test_p95_of_ten_samples_is_the_tenth(self):
        # ceil(0.95 * 10) = 10: the regression the measurement layer
        # fixed in PR 2 (round() would pick the 9th).
        assert percentile(list(range(1, 11)), 0.95) == 10.0

    def test_unsorted_input(self):
        assert percentile([9.0, 1.0, 5.0], 0.5) == 5.0

    @settings(max_examples=100, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=-1e9, max_value=1e9, allow_nan=False), min_size=1
        ),
        fraction=st.floats(min_value=0.01, max_value=1.0),
    )
    def test_percentile_is_a_member_and_bounded(self, values, fraction):
        result = percentile(values, fraction)
        assert result in [float(v) for v in values]
        assert min(values) <= result <= max(values)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1.0], 0.0)
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)
