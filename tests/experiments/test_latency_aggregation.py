"""Per-repetition HDR latency aggregation and its BENCH serialisation."""

import json

import pytest

from repro.experiments.aggregate import aggregate_results
from repro.experiments.bench import (
    render_aggregate_text,
    render_bench_document,
)
from repro.experiments.spec import ExperimentSpec
from repro.harness.results import ExperimentResult, Point, Series
from repro.measurements.hdr import HdrHistogramMeasurement


def histogram_payload(operation, latencies_us):
    histogram = HdrHistogramMeasurement(operation)
    for value in latencies_us:
        histogram.measure(value)
    return histogram.to_dict()


def make_result(histogram_latencies, label="cell"):
    """One fake repetition with a single-point series and histograms."""
    return ExperimentResult(
        experiment="fake",
        description="latency aggregation fixture",
        series=[Series(label=label, points=[Point(x=1.0, throughput=100.0)])],
        histograms={
            operation: histogram_payload(operation, latencies)
            for operation, latencies in histogram_latencies.items()
        },
    )


def spec():
    return ExperimentSpec(name="fake-latency", runner="cew", repetitions=3)


class TestLatencyAggregation:
    def test_pooled_percentiles_match_merged_histogram(self):
        reps = [
            make_result({"READ": [100] * 98 + [1000, 2000]}),
            make_result({"READ": [120] * 98 + [1100, 2200]}),
            make_result({"READ": [110] * 98 + [1050, 2100]}),
        ]
        aggregate = aggregate_results(spec(), [1, 2, 3], reps)
        entry = aggregate.latency["READ"]
        assert entry.count == 300
        merged = HdrHistogramMeasurement.from_dict(reps[0].histograms["READ"])
        for rep in reps[1:]:
            merged.merge_from(
                HdrHistogramMeasurement.from_dict(rep.histograms["READ"])
            )
        assert entry.p99_us == merged.percentile_us(0.99)
        assert entry.p50_us == merged.percentile_us(0.50)
        assert entry.max_us == float(merged.summary().max_us)

    def test_per_rep_ci_band_on_p99(self):
        reps = [
            make_result({"UPDATE": [100] * 98 + [900, 900]}),
            make_result({"UPDATE": [100] * 98 + [1000, 1000]}),
            make_result({"UPDATE": [100] * 98 + [1100, 1100]}),
        ]
        aggregate = aggregate_results(spec(), [1, 2, 3], reps)
        entry = aggregate.latency["UPDATE"]
        assert len(entry.p99_per_rep.values) == 3
        assert entry.p99_per_rep.stats.ci95 is not None
        assert entry.p99_per_rep.stats.ci95 > 0
        assert len(entry.mean_per_rep.values) == 3
        assert len(entry.p95_per_rep.values) == 3

    def test_structural_mismatch_raises(self):
        reps = [
            make_result({"READ": [100]}),
            make_result({"READ": [100], "UPDATE": [200]}),
            make_result({"READ": [100]}),
        ]
        with pytest.raises(ValueError, match="structurally identical"):
            aggregate_results(spec(), [1, 2, 3], reps)

    def test_no_histograms_no_latency(self):
        reps = [make_result({}) for _ in range(3)]
        aggregate = aggregate_results(spec(), [1, 2, 3], reps)
        assert aggregate.latency == {}


class TestBenchLatencySection:
    def aggregate(self, with_histograms):
        latencies = {"READ": [100, 200, 300]} if with_histograms else {}
        reps = [make_result(latencies) for _ in range(3)]
        return aggregate_results(spec(), [1, 2, 3], reps)

    def test_latency_key_present_only_with_histograms(self):
        with_latency = render_bench_document(self.aggregate(True))
        without = render_bench_document(self.aggregate(False))
        assert "latency" in with_latency
        assert "latency" not in without
        payload = with_latency["latency"]["READ"]
        assert payload["count"] == 9
        assert set(payload) == {
            "count", "mean_us", "p50_us", "p95_us", "p99_us", "max_us",
            "mean_per_rep", "p95_per_rep", "p99_per_rep",
        }
        assert payload["p99_per_rep"]["n"] == 3

    def test_latency_section_is_json_safe(self):
        document = render_bench_document(self.aggregate(True))
        json.dumps(document, sort_keys=True)

    def test_text_report_has_latency_block(self):
        text = render_aggregate_text(self.aggregate(True))
        assert "latency (us, pooled across repetitions)" in text
        assert "READ" in text
        assert "latency (us" not in render_aggregate_text(self.aggregate(False))
