"""The ``ycsbt exp`` sub-command: run, diff, list."""

import json

import pytest

from repro.core.cli import main


def run_tiny_spec(tmp_path, out_dir, name="tinycli", seed=77, scale=1.0, reps=2):
    """Write a tiny JSON spec, run it with --out, return the BENCH path."""
    spec_path = tmp_path / f"{name}.json"
    spec_path.write_text(
        json.dumps(
            {
                "name": name,
                "runner": "cew",
                "repetitions": reps,
                "seed": seed,
                "params": {
                    "binding": "txn",
                    "schedule": "baseline",
                    "thread_counts": [2],
                    "properties": {"recordcount": "24", "operationcount": "240"},
                },
            }
        ),
        encoding="utf-8",
    )
    exit_code = main(["exp", "run", str(spec_path), "--out", str(out_dir)])
    assert exit_code == 0
    bench = out_dir / f"BENCH_{name}.json"
    if scale != 1.0:
        document = json.loads(bench.read_text(encoding="utf-8"))
        for series in document["series"]:
            for point in series["points"]:
                payload = point["metrics"]["throughput"]
                payload["values"] = [v * scale for v in payload["values"]]
                payload["mean"] = sum(payload["values"]) / len(payload["values"])
                payload["min"] = min(payload["values"])
                payload["max"] = max(payload["values"])
        bench.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
    return bench


class TestExpRun:
    def test_builtin_spec_text_report(self, capsys):
        exit_code = main(["exp", "run", "ci_smoke", "--reps", "2"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "ci_smoke" in captured.out
        assert "±" in captured.out  # CI column present
        assert captured.err.count("repetition") == 2

    def test_json_output_is_schema_v2(self, capsys):
        exit_code = main(
            ["exp", "run", "ci_smoke", "--reps", "2", "--json"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        document = json.loads(captured.out)
        assert document["schema"] == "ycsbt-bench/2"
        assert document["repetitions"] == 2
        assert document["deterministic"] is True

    def test_out_writes_bench_file(self, tmp_path, capsys):
        bench = run_tiny_spec(tmp_path, tmp_path / "results")
        capsys.readouterr()
        assert bench.exists()
        document = json.loads(bench.read_text(encoding="utf-8"))
        assert document["experiment"] == "tinycli"

    def test_cli_output_is_byte_identical_across_runs(self, tmp_path, capsys):
        first = run_tiny_spec(tmp_path, tmp_path / "a")
        second = run_tiny_spec(tmp_path, tmp_path / "b")
        capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()

    def test_seed_override_changes_output(self, tmp_path, capsys):
        first = run_tiny_spec(tmp_path, tmp_path / "a")
        second = run_tiny_spec(tmp_path, tmp_path / "b", name="tinycli", seed=500)
        capsys.readouterr()
        assert first.read_bytes() != second.read_bytes()

    def test_unknown_spec_is_actionable_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["exp", "run", "not_a_spec"])
        assert "spec error" in str(excinfo.value)
        assert "built-ins" in str(excinfo.value)

    def test_invalid_spec_file_fails_before_running(self, tmp_path):
        spec_path = tmp_path / "bad.json"
        spec_path.write_text(
            json.dumps({"name": "bad", "runner": "cew",
                        "params": {"binding": "mongo"}}),
            encoding="utf-8",
        )
        with pytest.raises(SystemExit) as excinfo:
            main(["exp", "run", str(spec_path)])
        assert "unknown binding" in str(excinfo.value)

    def test_zero_reps_rejected(self):
        with pytest.raises(SystemExit, match="--reps must be >= 1"):
            main(["exp", "run", "ci_smoke", "--reps", "0"])


class TestExpDiff:
    def test_identical_trajectories_pass(self, tmp_path, capsys):
        bench = run_tiny_spec(tmp_path, tmp_path / "a")
        capsys.readouterr()  # drop the run report
        exit_code = main(["exp", "diff", str(bench), str(bench)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "PASS" in captured.out

    def test_injected_slowdown_fails_with_exit_1(self, tmp_path, capsys):
        # 5 repetitions: the CI is tight enough that -40% is significant.
        baseline = run_tiny_spec(tmp_path, tmp_path / "a", reps=5)
        slowed = run_tiny_spec(tmp_path, tmp_path / "b", scale=0.60, reps=5)
        capsys.readouterr()  # drop the run reports
        exit_code = main(["exp", "diff", str(baseline), str(slowed)])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "REGRESSION" in captured.out
        assert "FAIL" in captured.out

    def test_json_diff_payload(self, tmp_path, capsys):
        bench = run_tiny_spec(tmp_path, tmp_path / "a")
        capsys.readouterr()  # drop the run report
        exit_code = main(["exp", "diff", str(bench), str(bench), "--json"])
        captured = capsys.readouterr()
        assert exit_code == 0
        payload = json.loads(captured.out)
        assert payload["passed"] is True
        assert payload["experiment"] == "tinycli"

    def test_missing_file_is_actionable(self, tmp_path):
        with pytest.raises(SystemExit, match="no BENCH file"):
            main(
                ["exp", "diff", str(tmp_path / "nope.json"),
                 str(tmp_path / "nope.json")]
            )

    def test_diff_reads_committed_v1_golden(self, tmp_path, capsys):
        """Backward compatibility at the CLI level: v1 vs v1 diffs cleanly."""
        from pathlib import Path

        golden = Path(__file__).parent / "golden" / "BENCH_synthetic_v1.json"
        exit_code = main(["exp", "diff", str(golden), str(golden)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "PASS" in captured.out


class TestExpList:
    def test_lists_builtins_and_runners(self, capsys):
        exit_code = main(["exp", "list"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "ci_smoke" in captured.out
        assert "[deterministic]" in captured.out
        assert "runners:" in captured.out
        assert "cew" in captured.out


class TestBaselineGate:
    """The committed baselines must gate a fresh run of the same spec."""

    @pytest.mark.parametrize("name", ["ci_smoke", "staleness"])
    def test_fresh_run_matches_committed_baseline(self, name, tmp_path, capsys):
        from pathlib import Path

        baseline = (
            Path(__file__).parents[2] / "benchmarks" / "baselines"
            / f"BENCH_{name}.json"
        )
        assert baseline.exists(), "seed baseline trajectory must be committed"
        out = tmp_path / "results"
        exit_code = main(["exp", "run", name, "--out", str(out)])
        assert exit_code == 0
        capsys.readouterr()
        exit_code = main(
            ["exp", "diff", str(baseline), str(out / f"BENCH_{name}.json")]
        )
        captured = capsys.readouterr()
        assert exit_code == 0, captured.out
        # Deterministic spec on the same seeds: byte-identical, not merely
        # statistically compatible.
        assert baseline.read_bytes() == (out / f"BENCH_{name}.json").read_bytes()
