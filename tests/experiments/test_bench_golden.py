"""Golden-file tests pinning the BENCH schema (v2) and v1 compatibility.

The golden documents live in ``tests/experiments/golden/``.  They are
built from fully synthetic :class:`ExperimentResult` objects (no engine
involved) so the goldens only change when the *serialisation* changes —
which is exactly the event this test exists to flag.
"""

import json
from pathlib import Path

import pytest

from repro.experiments import (
    BENCH_SCHEMA_V2,
    ExperimentSpec,
    aggregate_results,
    compare_views,
    load_bench_document,
    render_bench_document,
    render_bench_json,
    write_bench,
)
from repro.harness.report import render_experiment_json
from repro.harness.results import ExperimentResult, Point, Series

GOLDEN_DIR = Path(__file__).parent / "golden"


def synthetic_repetitions() -> list[ExperimentResult]:
    """Three structurally identical repetitions with fixed numbers."""
    reps = []
    for offset in (0.0, 2.0, -1.0):
        reps.append(
            ExperimentResult(
                experiment="synthetic",
                description="synthetic golden experiment",
                notes=["golden fixture"],
                series=[
                    Series(
                        label="txn",
                        points=[
                            Point(
                                x=2,
                                throughput=100.0 + offset,
                                anomaly_score=0.01,
                                operations=240,
                                failed_operations=0,
                                extra={"events_processed": 1000.0 + 10 * offset},
                            ),
                            Point(
                                x=6,
                                throughput=260.0 + offset,
                                anomaly_score=0.02,
                                operations=240,
                                failed_operations=1,
                                extra={"events_processed": 1300.0 + 10 * offset},
                            ),
                        ],
                    )
                ],
                tables={
                    "summary": [
                        {"phase": "run", "ops": 240.0 + offset, "kind": "cew"}
                    ]
                },
            )
        )
    return reps


def synthetic_spec() -> ExperimentSpec:
    return ExperimentSpec(
        name="synthetic",
        runner="cew",
        repetitions=3,
        seed=100,
        description="synthetic golden experiment",
    )


def synthetic_aggregate():
    spec = synthetic_spec()
    return aggregate_results(spec, [100, 101, 102], synthetic_repetitions())


class TestGoldenV2:
    def test_document_matches_golden(self):
        """Byte-for-byte: the v2 serialisation is pinned by a golden file."""
        rendered = render_bench_json(synthetic_aggregate()) + "\n"
        golden = (GOLDEN_DIR / "BENCH_synthetic_v2.json").read_text(
            encoding="utf-8"
        )
        assert rendered == golden

    def test_write_bench_round_trips_through_loader(self, tmp_path):
        aggregate = synthetic_aggregate()
        path = write_bench(aggregate, tmp_path)
        assert path.name == "BENCH_synthetic.json"
        view = load_bench_document(json.loads(path.read_text(encoding="utf-8")))
        assert view.schema_version == 2
        assert view.experiment == "synthetic"
        assert view.repetitions == 3
        stats = view.points[("txn", 2.0, "throughput")]
        assert stats.n == 3
        assert stats.mean == pytest.approx((100.0 + 102.0 + 99.0) / 3)
        # Raw per-repetition values must be preserved in the document.
        doc = json.loads(path.read_text(encoding="utf-8"))
        payload = doc["series"][0]["points"][0]["metrics"]["throughput"]
        assert payload["values"] == [100.0, 102.0, 99.0]
        assert payload["n"] == 3

    def test_schema_marker(self):
        doc = render_bench_document(synthetic_aggregate())
        assert doc["schema"] == BENCH_SCHEMA_V2
        assert doc["deterministic"] is True
        assert doc["seeds"] == [100, 101, 102]
        # Wall-clock noise must never leak into the document.
        assert "repetition_wall_s" not in json.dumps(doc)

    def test_extra_metrics_aggregated(self):
        doc = render_bench_document(synthetic_aggregate())
        metrics = doc["series"][0]["points"][0]["metrics"]
        assert "events_processed" in metrics
        assert metrics["events_processed"]["values"] == [1000.0, 1020.0, 990.0]

    def test_table_numeric_cells_become_samples(self):
        doc = render_bench_document(synthetic_aggregate())
        row = doc["tables"]["summary"][0]
        assert row["phase"] == "run"  # non-numeric: first repetition's value
        assert row["kind"] == "cew"
        assert row["ops"]["n"] == 3
        assert row["ops"]["values"] == [240.0, 242.0, 239.0]


class TestBackwardCompatV1:
    def test_v1_golden_still_loads(self):
        """`exp diff` must keep reading the original single-run shape."""
        golden = json.loads(
            (GOLDEN_DIR / "BENCH_synthetic_v1.json").read_text(encoding="utf-8")
        )
        view = load_bench_document(golden, source="golden-v1")
        assert view.schema_version == 1
        assert view.repetitions == 1
        stats = view.points[("txn", 2.0, "throughput")]
        assert stats.n == 1
        assert stats.mean == 100.0
        assert stats.ci95 is None  # single run: no variance information
        # Numeric extras become metrics too.
        assert view.points[("txn", 2.0, "events_processed")].mean == 1000.0

    def test_v1_matches_current_render_experiment_json(self):
        """The committed v1 golden is what render_experiment_json emits."""
        rendered = render_experiment_json(synthetic_repetitions()[0])
        golden = (GOLDEN_DIR / "BENCH_synthetic_v1.json").read_text(
            encoding="utf-8"
        )
        assert json.loads(rendered) == json.loads(golden)

    def test_diff_v1_baseline_against_v2_aggregate(self, tmp_path):
        """A v2 aggregate gates against a v1 single-run baseline."""
        old = load_bench_document(
            json.loads(
                (GOLDEN_DIR / "BENCH_synthetic_v1.json").read_text(
                    encoding="utf-8"
                )
            )
        )
        new = load_bench_document(render_bench_document(synthetic_aggregate()))
        result = compare_views(old, new)
        # Means are within the 25 % legacy threshold -> no regression.
        assert result.passed

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="unsupported BENCH schema"):
            load_bench_document(
                {"experiment": "x", "schema": "ycsbt-bench/99"}, source="s"
            )

    def test_non_bench_document_rejected(self):
        with pytest.raises(ValueError, match="not a BENCH document"):
            load_bench_document({"something": "else"})
