"""End-to-end spec tests: determinism, validation errors, the diff gate."""

import json

import pytest

from repro.experiments import (
    ExperimentSpec,
    SpecValidationError,
    builtin_spec,
    builtin_spec_names,
    compare_views,
    load_bench_document,
    load_spec,
    render_bench_document,
    render_bench_json,
    run_spec,
    spec_from_dict,
)


def tiny_spec(**overrides) -> ExperimentSpec:
    """A 2-repetition virtual-time CEW spec that runs in well under a second."""
    values = dict(
        name="tiny",
        runner="cew",
        repetitions=2,
        seed=77,
        params={
            "binding": "txn",
            "schedule": "baseline",
            "thread_counts": (2,),
            "properties": {"recordcount": "16", "operationcount": "120"},
        },
    )
    values.update(overrides)
    return ExperimentSpec(**values)


class TestDeterminism:
    def test_two_repetition_spec_is_byte_identical(self):
        """The whole pipeline is a pure function of the spec."""
        first = render_bench_json(run_spec(tiny_spec()))
        second = render_bench_json(run_spec(tiny_spec()))
        assert first == second

    def test_repetitions_with_same_seed_agree_exactly(self):
        """vary_seed=False makes every repetition identical (stddev 0)."""
        aggregate = run_spec(tiny_spec(vary_seed=False))
        assert aggregate.seeds == [77, 77]
        for series in aggregate.series:
            for point in series.points:
                for sample in point.metrics.values():
                    assert sample.stats.stddev == 0.0

    def test_varied_seeds_produce_distinct_samples(self):
        aggregate = run_spec(tiny_spec())
        assert aggregate.seeds == [77, 78]
        throughput = aggregate.series[0].points[0].metrics["throughput"]
        assert len(set(throughput.values)) == 2, (
            "distinct seeds should perturb virtual-time throughput"
        )

    def test_different_seed_changes_the_document(self):
        base = render_bench_json(run_spec(tiny_spec()))
        other = render_bench_json(run_spec(tiny_spec(seed=500)))
        assert base != other


class TestInvalidSpecs:
    def test_unknown_binding(self):
        with pytest.raises(SpecValidationError, match="unknown binding 'mongo'"):
            tiny_spec(params={"binding": "mongo"})

    def test_unknown_binding_error_is_actionable(self):
        with pytest.raises(SpecValidationError, match="raw.*txn|txn.*raw"):
            tiny_spec(params={"binding": "postgres"})

    def test_repetitions_below_one(self):
        with pytest.raises(SpecValidationError, match="repetitions must be >= 1"):
            tiny_spec(repetitions=0)

    def test_repetitions_not_an_int(self):
        with pytest.raises(SpecValidationError, match="repetitions must be an int"):
            tiny_spec(repetitions="three")

    def test_conflicting_phases_duplicate(self):
        with pytest.raises(SpecValidationError, match="conflicting phases"):
            tiny_spec(params={"phases": ("load", "load")})

    def test_conflicting_phases_run_without_load(self):
        with pytest.raises(
            SpecValidationError, match="run phase needs the load phase"
        ):
            tiny_spec(params={"phases": ("run",)})

    def test_phases_out_of_order(self):
        with pytest.raises(SpecValidationError, match="out of order"):
            tiny_spec(params={"phases": ("run", "load")})

    def test_unknown_phase(self):
        with pytest.raises(SpecValidationError, match="unknown phase 'verify'"):
            tiny_spec(params={"phases": ("load", "verify")})

    def test_unknown_runner_lists_available(self):
        with pytest.raises(SpecValidationError, match="available runners"):
            ExperimentSpec(name="x", runner="does-not-exist")

    def test_unknown_param_key_lists_allowed(self):
        with pytest.raises(SpecValidationError, match="allowed:"):
            tiny_spec(params={"bindings": "txn"})  # typo of 'binding'

    def test_unknown_fault_schedule(self):
        with pytest.raises(SpecValidationError, match="unknown fault schedule"):
            tiny_spec(params={"schedule": "chaos-monkey"})

    def test_bad_thread_counts(self):
        with pytest.raises(SpecValidationError, match="ints >= 1"):
            tiny_spec(params={"thread_counts": (0,)})

    def test_bad_spec_name(self):
        with pytest.raises(SpecValidationError, match="BENCH_<name>.json"):
            tiny_spec(name="no/slashes")

    def test_dict_with_unknown_top_level_key(self):
        with pytest.raises(SpecValidationError, match="unknown spec keys"):
            spec_from_dict({"name": "tiny", "runner": "cew", "reps": 3})

    def test_dict_without_name(self):
        with pytest.raises(SpecValidationError, match="needs a 'name'"):
            spec_from_dict({"runner": "cew"})


class TestLoadSpec:
    def test_builtin_by_name(self):
        spec = load_spec("ci_smoke")
        assert spec.runner == "cew"
        assert spec.deterministic

    def test_unknown_name_lists_builtins(self):
        with pytest.raises(SpecValidationError, match="built-ins: "):
            load_spec("nonexistent_spec")

    def test_json_file(self, tmp_path):
        path = tmp_path / "mini.json"
        path.write_text(
            json.dumps(
                {
                    "name": "mini",
                    "runner": "cew",
                    "repetitions": 2,
                    "seed": 9,
                    "params": {"thread_counts": [2]},
                }
            ),
            encoding="utf-8",
        )
        spec = load_spec(path)
        assert spec.name == "mini"
        assert spec.params["thread_counts"] == (2,)

    def test_toml_file(self, tmp_path):
        tomllib = pytest.importorskip("tomllib")
        assert tomllib is not None
        path = tmp_path / "mini.toml"
        path.write_text(
            'name = "mini"\nrunner = "cew"\nrepetitions = 2\n'
            "[params]\nthread_counts = [2]\n",
            encoding="utf-8",
        )
        spec = load_spec(path)
        assert spec.name == "mini"
        assert spec.params["thread_counts"] == (2,)

    def test_runner_defaults_to_name(self, tmp_path):
        path = tmp_path / "cew.json"
        path.write_text(json.dumps({"name": "cew"}), encoding="utf-8")
        assert load_spec(path).runner == "cew"

    def test_malformed_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(SpecValidationError, match="cannot parse"):
            load_spec(path)

    def test_unsupported_extension(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text("name: x", encoding="utf-8")
        with pytest.raises(SpecValidationError, match="use .json or .toml"):
            load_spec(path)

    def test_every_builtin_validates(self):
        for name in builtin_spec_names():
            spec = builtin_spec(name)
            spec.validate()  # must not raise
            assert spec.repetitions >= 1


def _scaled_view(aggregate, factor: float):
    """A BenchView with every throughput value scaled by ``factor``."""
    document = render_bench_document(aggregate)
    for series in document["series"]:
        for point in series["points"]:
            payload = point["metrics"].get("throughput")
            if payload is None:
                continue
            values = [v * factor for v in payload["values"]]
            mean = sum(values) / len(values)
            payload["values"] = values
            payload["mean"] = mean
            payload["min"] = min(values)
            payload["max"] = max(values)
    return load_bench_document(document)


class TestDiffGate:
    """Acceptance criterion: the gate fails on an injected slowdown and
    passes on noise-level jitter."""

    @pytest.fixture(scope="class")
    def aggregate(self):
        # 5 repetitions keep the throughput CI tight enough (t(4)=2.776,
        # se ~ s/sqrt(5)) that a 30 % slowdown separates from the noise.
        return run_spec(
            tiny_spec(
                repetitions=5,
                params={
                    "binding": "txn",
                    "schedule": "baseline",
                    "thread_counts": (2,),
                    "properties": {"recordcount": "24", "operationcount": "240"},
                },
            )
        )

    def test_identical_runs_pass(self, aggregate):
        view = load_bench_document(render_bench_document(aggregate))
        result = compare_views(view, view)
        assert result.passed
        assert not result.regressions

    def test_injected_slowdown_fails(self, aggregate):
        baseline = load_bench_document(render_bench_document(aggregate))
        slowed = _scaled_view(aggregate, 0.70)  # 30 % throughput drop
        result = compare_views(baseline, slowed)
        assert not result.passed
        reasons = [delta.reason for delta in result.regressions]
        assert any("CIs disjoint" in reason for reason in reasons)
        assert "FAIL" in result.render()

    def test_noise_level_jitter_passes(self, aggregate):
        baseline = load_bench_document(render_bench_document(aggregate))
        jittered = _scaled_view(aggregate, 0.995)  # 0.5 % wiggle
        result = compare_views(baseline, jittered)
        assert result.passed

    def test_speedup_is_improvement_not_regression(self, aggregate):
        baseline = load_bench_document(render_bench_document(aggregate))
        faster = _scaled_view(aggregate, 1.40)
        result = compare_views(baseline, faster)
        assert result.passed
        assert result.improvements

    def test_disjoint_but_tiny_effect_passes(self, aggregate):
        baseline = load_bench_document(render_bench_document(aggregate))
        nudged = _scaled_view(aggregate, 0.97)  # 3 % < 5 % min effect
        result = compare_views(baseline, nudged, min_effect=0.05)
        # Either the CIs overlap (noise) or the effect is below min_effect;
        # both must pass the gate.
        assert result.passed

    def test_different_experiments_refuse_to_diff(self, aggregate):
        view = load_bench_document(render_bench_document(aggregate))
        other = load_bench_document({"experiment": "something-else"})
        with pytest.raises(ValueError, match="cannot diff different"):
            compare_views(view, other)
