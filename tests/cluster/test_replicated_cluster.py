"""Replicated shard cluster: failover, durable logs, 2PC through a leader change.

The in-process assembly end to end: per-shard replica sets behind the
consistency-routed store, cross-shard 2PC writing its protocol state
(locks, intents, TSRs) through the self-healing leader proxies, lease
failover promoting the most-caught-up follower, durable follower logs
turning a rejoin into a log catch-up, and the coordinator-side
participant re-route that lets WAL recovery finish against a *different*
leader than the one its transactions prepared on.
"""

import time

import pytest

from repro.cluster.replicated import ReplicatedShardCluster
from repro.cluster.twopc import recover_coordinator
from repro.kvstore.base import StoreError, StoreUnavailable
from repro.recovery.crashpoints import CrashError, CrashInjector, use_crash_injector
from repro.recovery.scavenger import TxnScavenger
from repro.txn.errors import TransactionError

#: Short wall-clock leases so failover tests wait milliseconds, not seconds.
LEASE_S = 0.05
LEASE_LAPSE_S = LEASE_S * 2.5
LOCK_LEASE_MS = 200.0


def make_cluster(tmp_path=None, shard_count=2, follower_count=2):
    return ReplicatedShardCluster(
        shard_count=shard_count,
        follower_count=follower_count,
        lease_duration_s=LEASE_S,
        ship_interval_s=0.01,
        lock_lease_ms=LOCK_LEASE_MS,
        log_dir=tmp_path,
        seed=1,
    )


def spanning_keys(cluster, count=4):
    """Keys that land on at least two different shards."""
    routed = cluster.router()
    chosen, shards = [], set()
    for i in range(200):
        key = f"u{i * 7919}"
        chosen.append(key)
        shards.add(routed.shard_for(key)[0])
        if len(chosen) >= count and len(shards) >= 2:
            return chosen
    raise AssertionError(f"could not span two shards: {shards}")


def read_all(cluster, keys):
    check = cluster.manager(client_id="checker").begin()
    values = [check.read(key) for key in keys]
    check.abort()
    return values


def scavenge_residual_locks(cluster):
    time.sleep(LOCK_LEASE_MS / 1000.0 + 0.05)
    scavenger = TxnScavenger(cluster.manager(client_id="scavenger"))
    scavenger.scavenge_once()
    return scavenger.scavenge_once(remove_orphan_tsrs=False).locks_seen


class TestReplicatedRouting:
    def test_raw_operations_route_through_shard_leaders(self):
        cluster = make_cluster()
        routed = cluster.routed("strong")
        for i in range(20):
            routed.put(f"k{i}", {"n": str(i)})
        assert routed.get("k7") == {"n": "7"}
        assert routed.size() == 20
        # Writes really did spread over both shards' leaders.
        router = cluster.router()
        seen = {router.shard_for(f"k{i}")[0] for i in range(20)}
        assert len(seen) == 2

    def test_cross_shard_transaction_commits(self):
        cluster = make_cluster()
        keys = spanning_keys(cluster)
        manager = cluster.manager(client_id="writer")
        tx = manager.begin()
        for key in keys:
            tx.write(key, {"v": "one"})
        tx.commit()
        assert all(value == {"v": "one"} for value in read_all(cluster, keys))

    def test_replication_ships_to_followers_on_flush(self):
        cluster = make_cluster()
        routed = cluster.routed("strong")
        for i in range(10):
            routed.put(f"k{i}", {"n": str(i)})
        cluster.flush_all()
        for group in cluster.groups.values():
            leader_seq = group.leader_node.status().applied_seq
            for node in group.nodes.values():
                assert node.status().applied_seq == leader_seq


class TestFailover:
    def test_clean_failover_promotes_and_loses_nothing(self):
        cluster = make_cluster()
        routed = cluster.routed("strong")
        for i in range(12):
            routed.put(f"k{i}", {"n": str(i)})
        victim_shard = "shard0"
        old_leader = cluster.kill_leader(victim_shard)
        with pytest.raises(StoreError):
            # Strong operations against the leaderless shard fail fast.
            for i in range(12):
                routed.put(f"k{i}", {"n": "again"})
        time.sleep(LEASE_LAPSE_S)
        info = cluster.failover(victim_shard)
        assert info["leader"] != old_leader
        assert info["term"] == 2
        assert info["lost_records"] == 0
        # The whole keyspace is readable again at strong.
        for i in range(12):
            assert routed.get(f"k{i}") is not None

    def test_failover_refused_while_lease_alive(self):
        cluster = ReplicatedShardCluster(
            shard_count=2, follower_count=1, lease_duration_s=30.0, seed=1
        )
        cluster.kill_leader("shard0")
        with pytest.raises(RuntimeError, match="lease"):
            cluster.failover("shard0")

    def test_unclean_failover_reports_lost_records(self):
        cluster = make_cluster()
        routed = cluster.routed("strong")
        cluster.flush_all()
        # Writes the shipper never shipped: an unclean promotion drops them.
        for i in range(8):
            routed.put(f"k{i}", {"n": str(i)})
        victim = cluster.router().shard_for("k0")[0]
        cluster.kill_leader(victim)
        time.sleep(LEASE_LAPSE_S)
        info = cluster.failover(victim, clean=False)
        assert info["lost_records"] > 0

    def test_rejoin_after_failover_is_catchup_with_durable_logs(self, tmp_path):
        cluster = make_cluster(tmp_path=tmp_path)
        routed = cluster.routed("strong")
        for i in range(10):
            routed.put(f"k{i}", {"n": str(i)})
        cluster.flush_all()
        old_leader = cluster.kill_leader("shard1")
        time.sleep(LEASE_LAPSE_S)
        cluster.failover("shard1")
        for i in range(10, 16):
            routed.put(f"k{i}", {"n": str(i)})
        rejoined = cluster.rejoin("shard1", old_leader)
        assert rejoined["mode"] == "catch-up"
        cluster.flush_all()
        group = cluster.groups["shard1"]
        leader_log = group.leader_node.log.snapshot()
        rejoined_log = group.nodes[old_leader].log.snapshot()
        assert rejoined_log == leader_log

    def test_quorum_reads_survive_a_leaderless_shard(self):
        cluster = make_cluster()
        # Seed at strong (a quorum write needs a concurrently-running
        # shipper to ack; the in-process assembly ships on flush).
        cluster.routed("strong").put("k1", {"n": "1"})
        cluster.flush_all()
        routed = cluster.routed("quorum")
        victim = cluster.router().shard_for("k1")[0]
        cluster.kill_leader(victim)
        # Reads still assemble a follower majority; writes cannot.
        assert routed.get("k1") == {"n": "1"}
        with pytest.raises(StoreError):
            routed.put("k1", {"n": "2"})


class TestTwoPCThroughFailover:
    def test_transaction_commits_after_failover(self):
        cluster = make_cluster()
        keys = spanning_keys(cluster)
        manager = cluster.manager(client_id="writer")
        tx = manager.begin()
        for key in keys:
            tx.write(key, {"v": "before"})
        tx.commit()
        victim = cluster.router().shard_for(keys[0])[0]
        cluster.kill_leader(victim)
        time.sleep(LEASE_LAPSE_S)
        cluster.failover(victim)
        # A *fresh* manager binds participants to the new leader; the 2PC
        # state it needs (versions, locks table) replicated with the data.
        manager2 = cluster.manager(client_id="writer2")
        tx = manager2.begin()
        for key in keys:
            tx.write(key, {"v": "after"})
        tx.commit()
        assert all(value == {"v": "after"} for value in read_all(cluster, keys))

    @pytest.mark.parametrize(
        "point", ["repl.leader_mid_prepare", "repl.leader_mid_commit_apply"]
    )
    def test_leader_crashpoints_mark_the_leader_dead(self, point):
        """The new crashpoints kill a *participant's leader* mid-2PC.

        The coordinator outlives the participant: the CrashError becomes
        a transport failure (StoreUnavailable), phase 1 aborts / phase 2
        leaves redo work, and the group is leaderless until failover.
        """
        cluster = make_cluster()
        keys = spanning_keys(cluster)
        seeder = cluster.manager(client_id="seeder").begin()
        for key in keys:
            seeder.write(key, {"v": "old"})
        seeder.commit()
        manager = cluster.manager(client_id="writer")
        tx = manager.begin()
        for key in keys:
            tx.write(key, {"v": "new"})
        with use_crash_injector(CrashInjector({point: [1]})):
            if point == "repl.leader_mid_prepare":
                with pytest.raises(TransactionError):
                    tx.commit()
            else:
                tx.commit()  # decision logged; the dead shard is redo work
        crashed = [
            shard for shard, group in cluster.groups.items() if group.crashed
        ]
        assert len(crashed) == 1
        time.sleep(LEASE_LAPSE_S)
        cluster.failover(crashed[0])
        summary = recover_coordinator(manager)
        assert summary["skipped"] == 0
        assert scavenge_residual_locks(cluster) == 0
        values = read_all(cluster, keys)
        expected = "old" if point == "repl.leader_mid_prepare" else "new"
        assert all(value == {"v": expected} for value in values), values


class TestCoordinatorRecoveryAcrossFailover:
    def crash_commit(self, manager, keys):
        tx = manager.begin()
        for key in keys:
            tx.write(key, {"v": "new"})
        with use_crash_injector(
            CrashInjector({"twopc.after_decision_logged": [1]})
        ):
            with pytest.raises(CrashError):
                tx.commit()

    def test_recover_reroutes_to_the_new_leader(self):
        """Satellite fix: WAL redo survives a participant leader change.

        The dead coordinator's participant stubs are bound to the leader
        regime they were built under.  After that leader is replaced,
        redo's first attempt fails as a transport error and the manager's
        ``participant_resolver`` re-binds to the new leader — the redo
        then lands instead of failing permanently.
        """
        cluster = make_cluster()
        keys = spanning_keys(cluster)
        seeder = cluster.manager(client_id="seeder").begin()
        for key in keys:
            seeder.write(key, {"v": "old"})
        seeder.commit()
        manager = cluster.manager(client_id="writer")
        self.crash_commit(manager, keys)
        victim = cluster.router().shard_for(keys[0])[0]
        cluster.kill_leader(victim)
        time.sleep(LEASE_LAPSE_S)
        cluster.failover(victim)
        summary = recover_coordinator(manager)
        assert summary == {"replayed": 1, "redone": 1, "undone": 0, "skipped": 0}
        assert scavenge_residual_locks(cluster) == 0
        assert all(value == {"v": "new"} for value in read_all(cluster, keys))

    def test_without_resolver_the_redo_is_skipped(self):
        """The pre-fix behavior, pinned: a resolver-less coordinator
        cannot finish redo through a leader change — the entry stays in
        doubt (skipped), it is *not* silently mis-resolved."""
        cluster = make_cluster()
        keys = spanning_keys(cluster)
        manager = cluster.manager_for_wal(
            cluster.manager(client_id="template").wal,
            client_id="writer",
            participant_resolver=None,
        )
        self.crash_commit(manager, keys)
        victim = cluster.router().shard_for(keys[0])[0]
        cluster.kill_leader(victim)
        time.sleep(LEASE_LAPSE_S)
        cluster.failover(victim)
        summary = recover_coordinator(manager)
        assert summary["redone"] == 0
        assert summary["skipped"] == 1


class TestDurableLogsAcrossRestart:
    def test_node_restart_recovers_applied_state_from_its_log(self, tmp_path):
        """A follower's durable log rebuilds its store across a process
        restart, so rejoin ships only the missing suffix (catch-up)."""
        from repro.replication.cluster import InProcessReplicaSet

        replica_set = InProcessReplicaSet(follower_count=2, log_dir=tmp_path)
        store = replica_set.routed()
        for i in range(10):
            store.put(f"k{i}", {"n": str(i)})
        replica_set.flush()
        follower = replica_set.nodes["node1"]
        seq_before = follower.status().applied_seq
        assert seq_before > 0
        # "Restart": a brand-new node object over the same log file.
        from repro.replication.log import DurableReplicationLog
        from repro.replication.node import ReplicationNode

        reopened = ReplicationNode(
            "node1", log=DurableReplicationLog(tmp_path / "node1.wal")
        )
        assert reopened.status().applied_seq == seq_before
        assert reopened.store.get("k3") == {"n": "3"}

    def test_mid_follower_apply_crash_rejoins_via_catchup(self, tmp_path):
        """Satellite regression: a follower that dies mid-apply keeps its
        durable prefix, so rejoining is a catch-up, not a full resync."""
        from repro.replication.cluster import InProcessReplicaSet
        from repro.replication.ship import InProcessLink, rejoin_follower

        replica_set = InProcessReplicaSet(follower_count=2, log_dir=tmp_path)
        store = replica_set.routed()
        for i in range(6):
            store.put(f"k{i}", {"n": str(i)})
        replica_set.flush()
        leader = replica_set.leader_node
        with use_crash_injector(
            CrashInjector({"repl.mid_follower_apply": [1]})
        ):
            for i in range(6, 12):
                store.put(f"k{i}", {"n": str(i)})
            replica_set.ship_once()
        assert "node1" in replica_set.shipper.dead
        prefix_len = len(replica_set.nodes["node1"].log.snapshot())
        assert 0 < prefix_len <= len(leader.log.snapshot())
        result = rejoin_follower(
            leader, InProcessLink(replica_set.nodes["node1"])
        )
        assert result["mode"] == "catch-up"
        assert (
            replica_set.nodes["node1"].log.snapshot()
            == leader.log.snapshot()
        )

    def test_leader_restart_keeps_cluster_data(self, tmp_path):
        """Kill a shard leader, fail over, rejoin from its durable log —
        then the rejoined member's log matches the new leader's exactly."""
        cluster = make_cluster(tmp_path=tmp_path)
        routed = cluster.routed("strong")
        for i in range(10):
            routed.put(f"k{i}", {"n": str(i)})
        cluster.flush_all()
        dead = cluster.kill_leader("shard0")
        time.sleep(LEASE_LAPSE_S)
        cluster.failover("shard0")
        routed.put("k99", {"n": "99"})
        info = cluster.rejoin("shard0", dead)
        assert info["mode"] == "catch-up"
        cluster.flush_all()
        group = cluster.groups["shard0"]
        assert (
            group.nodes[dead].log.snapshot()
            == group.leader_node.log.snapshot()
        )

    def test_group_participant_raises_when_leaderless(self):
        cluster = make_cluster()
        cluster.kill_leader("shard0")
        link = cluster.participant_link("shard0")
        with pytest.raises(StoreUnavailable):
            link.prepare("tx1", 1, "shard0:k", {"k": {"f": "v"}})
