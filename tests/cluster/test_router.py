"""ShardRoutedStore: routing, batch fan-out, merged scans."""

import pytest

from repro.cluster.router import ShardRoutedStore
from repro.kvstore.memory import InMemoryKVStore


def diverse_keys(count, stride=7919):
    """Keys that spread across shards (sequential keys cluster inside one
    vnode gap of the FNV ring; a large prime stride breaks that up)."""
    return [f"u{i * stride}" for i in range(count)]


def make_router(shard_count=3):
    shards = {f"shard{i}": InMemoryKVStore() for i in range(shard_count)}
    return ShardRoutedStore(shards), shards


def test_requires_at_least_one_shard():
    with pytest.raises(ValueError, match="at least one shard"):
        ShardRoutedStore({})


def test_single_key_ops_land_on_the_owning_shard():
    router, shards = make_router()
    for key in diverse_keys(24):
        router.put(key, {"v": key})
        owner_name, owner = router.shard_for(key)
        assert owner is shards[owner_name]
        # The record lives on the owner and ONLY the owner.
        holders = [
            name for name, shard in shards.items() if shard.get(key) is not None
        ]
        assert holders == [owner_name]
        assert router.get(key) == {"v": key}
    # The key space actually spreads over multiple shards.
    assert sum(1 for shard in shards.values() if shard.size()) >= 2


def test_routing_agrees_with_the_ring():
    router, _ = make_router()
    for key in diverse_keys(50):
        assert router.shard_for(key)[0] == router.ring.owner(key)


def test_versioned_ops_route():
    router, _ = make_router()
    key = diverse_keys(5)[3]
    version = router.put(key, {"v": "1"})
    assert router.put_if_version(key, {"v": "2"}, version) == version + 1
    assert router.put_if_version(key, {"v": "x"}, 99) is None
    assert router.get(key) == {"v": "2"}
    assert router.delete_if_version(key, version + 1) is True
    assert router.get(key) is None


def test_put_batch_fans_out_and_preserves_order():
    router, shards = make_router()
    keys = diverse_keys(30)
    records = [(key, {"v": key}) for key in keys]
    versions = router.put_batch(records)
    assert len(versions) == len(records)
    # Versions come back in input order: position i describes keys[i].
    for key, version in zip(keys, versions):
        meta = router.get_with_meta(key)
        assert meta is not None
        assert meta.version == version
        assert meta.value == {"v": key}
    # The batch really was split across shards, not sent to one.
    populated = [name for name, shard in shards.items() if shard.size()]
    assert len(populated) >= 2


def test_scan_merges_shards_in_global_order():
    router, _ = make_router()
    keys = sorted(diverse_keys(25))
    for key in keys:
        router.put(key, {"v": key})
    window = router.scan(keys[0], 10)
    assert [key for key, _ in window] == keys[:10]
    # A scan window larger than the data returns everything, ordered.
    everything = router.scan("", 100)
    assert [key for key, _ in everything] == keys
    assert router.scan("", 0) == []


def test_size_keys_and_clear_aggregate():
    router, shards = make_router()
    keys = diverse_keys(12)
    for key in keys:
        router.put(key, {"v": "1"})
    assert router.size() == len(keys) == sum(s.size() for s in shards.values())
    assert sorted(router.keys()) == sorted(keys)
    router.clear()
    assert router.size() == 0


def test_counters_merge_across_shards():
    class CountingStore(InMemoryKVStore):
        def counters(self):
            return {"REQUESTS": 2, "ERRORS": 1}

    shards = {f"shard{i}": CountingStore() for i in range(3)}
    router = ShardRoutedStore(shards)
    assert router.counters() == {"REQUESTS": 6, "ERRORS": 3}
