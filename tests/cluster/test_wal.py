"""Coordinator WAL: append/replay, torn tails, in-doubt filtering."""

import json

import pytest

from repro.cluster.wal import CoordinatorWAL
from repro.recovery.crashpoints import CrashError, CrashInjector, use_crash_injector

GROUPS = {"shard0": {"a": {"f": "1"}}, "shard1": {"b": None}}


def test_replay_round_trip(tmp_path):
    wal = CoordinatorWAL(tmp_path / "wal.jsonl")
    wal.log_begin("t1", 7, "shard0:a", GROUPS)
    wal.log_decision("t1", "commit", 11)
    wal.log_complete("t1")
    wal.log_begin("t2", 9, "shard1:b", {"shard1": {"b": {"f": "2"}}})

    entries = wal.replay()
    assert set(entries) == {"t1", "t2"}
    done = entries["t1"]
    assert done.start_ts == 7
    assert done.primary == "shard0:a"
    assert done.groups == GROUPS
    assert done.decision == "commit"
    assert done.commit_ts == 11
    assert done.complete
    open_txn = entries["t2"]
    assert open_txn.decision is None
    assert not open_txn.complete


def test_in_doubt_excludes_completed(tmp_path):
    wal = CoordinatorWAL(tmp_path / "wal.jsonl")
    wal.log_begin("t1", 1, "shard0:a", GROUPS)
    wal.log_decision("t1", "commit", 2)
    wal.log_complete("t1")
    wal.log_begin("t2", 3, "shard0:a", GROUPS)
    wal.log_decision("t2", "abort")
    assert [entry.txid for entry in wal.in_doubt()] == ["t2"]


def test_bad_decision_rejected(tmp_path):
    wal = CoordinatorWAL(tmp_path / "wal.jsonl")
    with pytest.raises(ValueError, match="commit or abort"):
        wal.log_decision("t1", "maybe")


def test_torn_tail_dropped_on_replay(tmp_path):
    path = tmp_path / "wal.jsonl"
    wal = CoordinatorWAL(path)
    wal.log_begin("t1", 1, "shard0:a", GROUPS)
    wal.close()
    with open(path, "a", encoding="utf-8") as f:
        f.write('{"type": "decision", "txid": "t1", "deci')  # no newline

    reopened = CoordinatorWAL(path)
    entry = reopened.replay()["t1"]
    assert entry.decision is None  # the torn decision never happened


def test_append_after_torn_tail_does_not_glue(tmp_path):
    """A post-crash append must not concatenate onto the torn line."""
    path = tmp_path / "wal.jsonl"
    wal = CoordinatorWAL(path)
    wal.log_begin("t1", 1, "shard0:a", GROUPS)
    wal.close()
    with open(path, "a", encoding="utf-8") as f:
        f.write('{"type": "decision", "txid": "t1"')  # torn, no newline

    reopened = CoordinatorWAL(path)
    reopened.log_decision("t1", "abort")
    # Every line in the file must now parse: the torn tail was truncated
    # away before the append, not glued to it.
    lines = path.read_text(encoding="utf-8").splitlines()
    parsed = [json.loads(line) for line in lines]
    assert [record["type"] for record in parsed] == ["begin", "decision"]
    assert reopened.replay()["t1"].decision == "abort"


def test_mid_append_crashpoint_tears_the_record(tmp_path):
    path = tmp_path / "wal.jsonl"
    wal = CoordinatorWAL(path)
    wal.log_begin("t1", 1, "shard0:a", GROUPS)
    injector = CrashInjector({"wal.mid_append": [1]})
    with use_crash_injector(injector):
        with pytest.raises(CrashError):
            wal.log_decision("t1", "commit", 5)

    # The writer is "dead"; a restarted coordinator replays the log.
    recovered = CoordinatorWAL(path)
    entry = recovered.replay()["t1"]
    assert entry.decision is None
    assert [entry.txid for entry in recovered.in_doubt()] == ["t1"]


def test_corruption_mid_stream_raises(tmp_path):
    path = tmp_path / "wal.jsonl"
    path.write_text(
        '{"type": "begin", "txid": "t1", "start_ts": 1, "primary": "s:a", "groups": {}}\n'
        "not json at all\n"
        '{"type": "complete", "txid": "t1"}\n',
        encoding="utf-8",
    )
    wal = CoordinatorWAL(path)
    with pytest.raises(ValueError, match="corrupt coordinator WAL"):
        wal.replay()
