"""2PC crash recovery: every crashpoint schedule converges.

Each test kills the coordinator (or a participant) at one of the 2PC
crashpoints, then drives recovery the way a restarted process would —
``recover_coordinator`` over the surviving WAL, lease expiry, the
scavenger — and asserts the cluster converges to all-commit or
all-abort with no residual locks.
"""

import time

import pytest

from repro.cluster.twopc import recover_coordinator
from repro.recovery.crashpoints import CrashError, CrashInjector, use_crash_injector
from repro.recovery.scavenger import TxnScavenger
from repro.txn.errors import TransactionError

#: Must match the fixture cluster's lock_lease_ms (tests/cluster/conftest.py).
LEASE_MS = 400.0


def diverse_keys(count, stride=7919):
    return [f"u{i * stride}" for i in range(count)]


def spanning_keys(manager, count=6):
    keys = diverse_keys(40)
    chosen, shards = [], set()
    for key in keys:
        chosen.append(key)
        shards.add(manager.owner(key))
        if len(chosen) >= count and len(shards) >= 2:
            return chosen
    raise AssertionError(f"could not span two shards: {shards}")


def seed_old_values(cluster, keys):
    tx = cluster.manager(client_id="seeder").begin()
    for key in keys:
        tx.write(key, {"v": "old"})
    tx.commit()


def crash_commit(manager, keys, point):
    """Run a cross-shard commit that dies at ``point``; return the txid."""
    tx = manager.begin()
    for key in keys:
        tx.write(key, {"v": "new"})
    with use_crash_injector(CrashInjector({point: [1]})):
        with pytest.raises(CrashError):
            tx.commit()
    return tx.txid


def read_all(cluster, keys):
    check = cluster.manager(client_id="checker").begin()
    values = [check.read(key) for key in keys]
    check.abort()
    return values


def assert_converged(cluster, manager, keys):
    """All-commit or all-abort, and zero residue anywhere."""
    values = read_all(cluster, keys)
    outcomes = {fields["v"] if fields else "old" for fields in values}
    assert len(outcomes) == 1, f"mixed outcome across shards: {values}"
    scavenger = TxnScavenger(cluster.manager_for_wal(manager.wal, client_id="scav"))
    scavenger.scavenge_once(remove_orphan_tsrs=True)
    residual = scavenger.scavenge_once(remove_orphan_tsrs=True)
    assert residual.locks_seen == 0
    for name in cluster.shard_names:
        assert cluster.servers[name].participant.prepared_count() == 0
    return outcomes.pop()


def test_coordinator_death_after_prepare_is_undone(cluster):
    """Locks installed, no decision logged: recovery must abort (undo)."""
    manager = cluster.manager(client_id="doomed")
    keys = spanning_keys(manager)
    seed_old_values(cluster, keys)
    crash_commit(manager, keys, "twopc.after_prepare")

    recovery_manager = cluster.manager_for_wal(manager.wal, client_id="reborn")
    stats = recover_coordinator(recovery_manager)
    assert stats["undone"] == 1
    assert stats["redone"] == 0

    # Undo released the prepared locks immediately — no lease wait needed.
    assert assert_converged(cluster, manager, keys) == "old"
    assert recovery_manager.wal.in_doubt() == []


def test_coordinator_death_after_decision_is_redone(cluster):
    """Decision logged commit: recovery must roll forward (redo)."""
    manager = cluster.manager(client_id="doomed")
    keys = spanning_keys(manager)
    seed_old_values(cluster, keys)
    crash_commit(manager, keys, "twopc.after_decision_logged")

    recovery_manager = cluster.manager_for_wal(manager.wal, client_id="reborn")
    stats = recover_coordinator(recovery_manager)
    assert stats["redone"] == 1
    assert stats["undone"] == 0

    assert assert_converged(cluster, manager, keys) == "new"
    assert recovery_manager.wal.in_doubt() == []


def test_participant_death_mid_commit_is_redone_after_restart(cluster):
    """A shard dying in phase 2 leaves the txn committed but unapplied
    there; restart + recovery re-drives that shard."""
    manager = cluster.manager(client_id="coord")
    keys = spanning_keys(manager)
    seed_old_values(cluster, keys)

    tx = manager.begin()
    for key in keys:
        tx.write(key, {"v": "new"})
    with use_crash_injector(CrashInjector({"twopc.mid_participant_commit": [1]})):
        tx.commit()  # returns: the coordinator survives a dead participant

    assert manager.stats.post_commit_failures >= 1
    crashed = cluster.crashed_shards()
    assert len(crashed) == 1
    assert [entry.txid for entry in manager.wal.in_doubt()] == [tx.txid]

    cluster.restart_shard(crashed[0])
    recovery_manager = cluster.manager_for_wal(manager.wal, client_id="reborn")
    stats = recover_coordinator(recovery_manager)
    assert stats["redone"] == 1

    assert assert_converged(cluster, manager, keys) == "new"
    assert recovery_manager.wal.in_doubt() == []


@pytest.mark.parametrize(
    "point",
    [
        "twopc.after_prepare",
        "twopc.after_decision_logged",
        "twopc.mid_participant_commit",
    ],
)
def test_every_crashpoint_converges(cluster, point):
    """The ISSUE invariant: any crash schedule ends all-commit or
    all-abort once crashed shards restart and recovery + scavenging run."""
    manager = cluster.manager(client_id="doomed")
    keys = spanning_keys(manager)
    seed_old_values(cluster, keys)

    tx = manager.begin()
    for key in keys:
        tx.write(key, {"v": "new"})
    with use_crash_injector(CrashInjector({point: [1]})):
        try:
            tx.commit()
        except (CrashError, TransactionError):
            pass

    for name in cluster.crashed_shards():
        cluster.restart_shard(name)
    time.sleep(LEASE_MS / 1000.0 + 0.2)
    recovery_manager = cluster.manager_for_wal(manager.wal, client_id="reborn")
    recover_coordinator(recovery_manager)

    outcome = assert_converged(cluster, manager, keys)
    # With the decision durably logged the only legal outcome is commit.
    if point in ("twopc.after_decision_logged", "twopc.mid_participant_commit"):
        assert outcome == "new"


def test_timeout_abort_without_coordinator_recovery(cluster):
    """If the coordinator never comes back, participant lease expiry
    alone must roll the prepared locks back (presumed abort)."""
    manager = cluster.manager(client_id="gone-forever")
    keys = spanning_keys(manager)
    seed_old_values(cluster, keys)
    crash_commit(manager, keys, "twopc.after_prepare")

    time.sleep(LEASE_MS / 1000.0 + 0.2)
    resolved = 0
    for name in cluster.shard_names:
        report = cluster.servers[name].participant.expire()
        resolved += report["resolved"] + report["dropped"]
    assert resolved >= 1

    assert read_all(cluster, keys) == [{"v": "old"}] * len(keys)
    for name in cluster.shard_names:
        assert cluster.servers[name].participant.prepared_count() == 0
