"""Cross-shard 2PC over a live HTTP cluster: commit, abort, conflict."""

import pytest

from repro.txn.errors import TransactionConflict, TransactionError


def diverse_keys(count, stride=7919):
    return [f"u{i * stride}" for i in range(count)]


def spanning_keys(manager, count=6):
    """Keys guaranteed to cover at least two distinct shards."""
    keys = diverse_keys(40)
    chosen, shards = [], set()
    for key in keys:
        chosen.append(key)
        shards.add(manager.owner(key))
        if len(chosen) >= count and len(shards) >= 2:
            return chosen
    raise AssertionError(f"could not span two shards: {shards}")


def test_cross_shard_commit_is_visible_everywhere(cluster):
    manager = cluster.manager()
    keys = spanning_keys(manager)
    shards_touched = {manager.owner(key) for key in keys}
    assert len(shards_touched) >= 2

    tx = manager.begin()
    for key in keys:
        tx.write(key, {"v": f"new-{key}"})
    tx.commit()

    assert manager.twopc_counters["prepares"] == len(shards_touched)
    assert manager.twopc_counters["commits"] == 1

    reader = cluster.manager()
    check = reader.begin()
    for key in keys:
        assert check.read(key) == {"v": f"new-{key}"}
    check.abort()

    # Phase 2 completed everywhere: nothing is left in doubt.
    assert manager.wal.in_doubt() == []
    for name in cluster.shard_names:
        assert cluster.servers[name].participant.prepared_count() == 0


def test_abort_rolls_back_every_shard(cluster):
    manager = cluster.manager()
    keys = spanning_keys(manager)
    seed_tx = manager.begin()
    seed_tx.write(keys[0], {"v": "old"})
    seed_tx.commit()

    tx = manager.begin()
    for key in keys:
        tx.write(key, {"v": "doomed"})
    tx.abort()

    check = cluster.manager().begin()
    assert check.read(keys[0]) == {"v": "old"}
    for key in keys[1:]:
        assert check.read(key) is None
    check.abort()
    for name in cluster.shard_names:
        assert cluster.servers[name].participant.prepared_count() == 0


def test_empty_commit_skips_the_protocol(cluster):
    manager = cluster.manager()
    tx = manager.begin()
    tx.commit()
    assert manager.twopc_counters["prepares"] == 0
    assert manager.wal.replay() == {}


def test_conflicting_coordinators_first_updater_wins(cluster):
    manager_a = cluster.manager(client_id="coord-a")
    manager_b = cluster.manager(client_id="coord-b")
    key = diverse_keys(3)[2]

    tx_a = manager_a.begin()
    tx_b = manager_b.begin()
    tx_a.write(key, {"v": "a"})
    tx_b.write(key, {"v": "b"})
    tx_a.commit()
    with pytest.raises(TransactionError):
        tx_b.commit()

    check = cluster.manager().begin()
    assert check.read(key) == {"v": "a"}
    check.abort()


def test_lock_conflict_is_a_no_vote(cluster):
    """A live (uncommitted) prepare blocks a second coordinator's prepare."""
    manager_a = cluster.manager(client_id="coord-a")
    manager_b = cluster.manager(client_id="coord-b")
    key = diverse_keys(3)[1]
    shard = manager_a.owner(key)

    # Install coordinator A's locks directly via phase 1, without phase 2.
    participant = manager_a.participant(shard)
    assert participant.prepare("held-tx", manager_a.clock.next_timestamp(),
                               f"{shard}:{key}", {key: {"v": "a"}})

    tx_b = manager_b.begin()
    tx_b.write(key, {"v": "b"})
    with pytest.raises(TransactionConflict):
        tx_b.commit()
    assert manager_b.twopc_counters["no_votes"] == 1

    # Release A's locks so the fixture tears down clean.
    participant.abort("held-tx", [key])


def test_prepare_is_idempotent(cluster):
    """A replayed prepare (lost response) must re-vote yes, not deadlock."""
    manager = cluster.manager()
    key = diverse_keys(2)[1]
    shard = manager.owner(key)
    participant = cluster.servers[shard].participant
    start_ts = manager.clock.next_timestamp()

    first = participant.prepare("tx-replay", start_ts, f"{shard}:{key}",
                                {key: {"v": "1"}})
    second = participant.prepare("tx-replay", start_ts, f"{shard}:{key}",
                                 {key: {"v": "1"}})
    assert first["vote"] == second["vote"] == "yes"
    assert participant.prepared_count() == 1
    participant.abort("tx-replay", [key])
    assert participant.prepared_count() == 0


def test_router_and_transactions_share_the_shard_map(cluster):
    manager = cluster.manager()
    router = cluster.router()
    for key in diverse_keys(30):
        assert router.shard_for(key)[0] == manager.owner(key)


def test_transaction_scan_merges_all_shards(cluster):
    manager = cluster.manager()
    keys = sorted(diverse_keys(12))
    tx = manager.begin()
    for key in keys:
        tx.write(key, {"v": key})
    tx.commit()

    check = cluster.manager().begin()
    assert [key for key, _ in check.scan("", 50)] == keys
    assert len(check.scan("", 5)) == 5
    check.abort()
