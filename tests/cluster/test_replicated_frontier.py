"""The replicated_shard_frontier experiment: shape, convergence gate, wiring."""

import pytest

from repro.experiments.runners import (
    RUNNERS,
    SpecValidationError,
    run_replicated_shard_frontier,
)
from repro.experiments.spec import builtin_spec

LAGS = (10, 80)


@pytest.fixture(scope="module")
def frontier():
    # Small cells (the builtin spec sweeps more), nemesis on: every cell
    # survives a leader kill + failover or the runner raises.
    return run_replicated_shard_frontier(
        seed=901,
        lag_ms=LAGS,
        levels=("strong", "quorum", "bounded_staleness"),
        sessions=3,
        ops_per_session=30,
    )


class TestFrontierShape:
    def test_one_series_per_level_one_point_per_lag(self, frontier):
        assert [series.label for series in frontier.series] == [
            "strong", "quorum", "bounded_staleness",
        ]
        for series in frontier.series:
            assert series.xs() == [float(lag) for lag in LAGS]

    @pytest.mark.parametrize("level", ["strong", "quorum"])
    def test_strict_levels_pin_anomaly_zero_through_failover(self, frontier, level):
        for point in frontier.series_by_label(level).points:
            assert point.anomaly_score == 0.0
            assert point.extra["stale_reads"] == 0
            assert point.extra["failovers"] >= 1
            assert point.extra["residual_locks"] == 0
            assert point.extra["economy_ok"]

    def test_relaxed_level_pays_in_staleness_not_money(self, frontier):
        relaxed = frontier.series_by_label("bounded_staleness")
        assert sum(p.extra["stale_reads"] for p in relaxed.points) > 0
        for point in relaxed.points:
            assert point.extra["bounded_violations"] == 0
            assert point.extra["economy_ok"]

    def test_transfers_actually_committed_in_every_cell(self, frontier):
        for series in frontier.series:
            for point in series.points:
                assert point.extra["transfers_committed"] > 0


class TestSpecWiring:
    def test_runner_is_registered_deterministic(self):
        info = RUNNERS["replicated_shard_frontier"]
        assert info.deterministic
        assert info.engine == "sim"
        assert info.x_label == "replication lag (ms)"

    def test_builtin_spec_validates_and_covers_all_levels(self):
        spec = builtin_spec("replicated_shard_frontier")
        assert spec.deterministic
        assert spec.params["nemesis"] is True
        assert set(spec.params["levels"]) == {
            "strong", "quorum", "read_your_writes", "bounded_staleness",
        }
        assert all(lag <= spec.params["staleness_bound_ms"]
                   for lag in spec.params["lag_ms"])

    def test_param_validation_rejects_bad_cells(self):
        with pytest.raises(SpecValidationError):
            run_replicated_shard_frontier(lag_ms=(0,))
        with pytest.raises(SpecValidationError):
            run_replicated_shard_frontier(levels=("eventual",))
        with pytest.raises(SpecValidationError):
            run_replicated_shard_frontier(staleness_bound_ms=-5)
        with pytest.raises(SpecValidationError):
            run_replicated_shard_frontier(follower_count=0)
        with pytest.raises(SpecValidationError):
            run_replicated_shard_frontier(sessions=0)

    def test_same_seed_reproduces_the_frontier_exactly(self, frontier):
        again = run_replicated_shard_frontier(
            seed=901,
            lag_ms=LAGS,
            levels=("strong", "quorum", "bounded_staleness"),
            sessions=3,
            ops_per_session=30,
        )
        for first, second in zip(frontier.series, again.series):
            assert [p.anomaly_score for p in first.points] == [
                p.anomaly_score for p in second.points
            ]
            assert [p.throughput for p in first.points] == [
                p.throughput for p in second.points
            ]
