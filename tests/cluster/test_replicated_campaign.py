"""Replicated cluster campaign: kill the shard leader, fail over, re-validate."""

import json

import pytest

from repro.cluster.replicated_campaign import (
    ReplicatedRunResult,
    run_replicated_campaign,
    run_replicated_cluster,
    write_replicated_violation_trace,
)

#: Small enough to keep one cycle around a second, big enough that the
#: degraded half actually commits cross-shard transactions.
FAST_PROPERTIES = {
    "recordcount": "20",
    "operationcount": "80",
    "threadcount": "2",
    "txn.lock_lease_ms": "300",
}


def test_unknown_binding_rejected():
    with pytest.raises(ValueError, match="unknown cluster binding"):
        run_replicated_cluster(binding="mongodb")


def test_txn_survives_a_leader_kill():
    """The tentpole promise, now through a leader change: kill a shard's
    leader mid-campaign, fail over on the lease, rejoin the dead member
    by log catch-up, replay the coordinator WAL against the *new* leader
    — and the 2PC binding still validates with gamma 0, no residual
    locks."""
    result = run_replicated_cluster(
        binding="txn", shard_count=2, properties=FAST_PROPERTIES, seed=0
    )
    assert result.killed_shard is not None
    assert result.killed_member is not None
    assert result.degraded_operations > 0
    assert result.transactional
    assert not result.violation, result.summary_line()
    assert result.post_gamma == 0.0
    assert result.residual_locks == 0
    # The failover was real: a different member now leads at a new term.
    assert result.failover["term"] >= 2
    assert result.failover["leader"] != result.killed_member
    # Durable follower logs make the rejoin a catch-up, not a resync.
    assert result.rejoin["mode"] == "catch-up"
    # The kill was real: some operations failed against the dead leader.
    assert result.failed_operations > 0
    assert "VIOLATION" not in result.summary_line()


def test_fault_free_run_skips_the_kill():
    result = run_replicated_cluster(
        binding="txn", shard_count=2, properties=FAST_PROPERTIES, seed=1, kill=False
    )
    assert result.killed_shard is None
    assert result.killed_member is None
    assert result.failover == {}
    assert not result.violation, result.summary_line()
    assert result.post_gamma == 0.0


def test_violation_trace_is_replayable_json(tmp_path):
    result = run_replicated_cluster(
        binding="txn", shard_count=2, properties=FAST_PROPERTIES, seed=2
    )
    path = write_replicated_violation_trace(result, tmp_path)
    trace = json.loads(path.read_text(encoding="utf-8"))
    assert trace["kind"] == "ycsbt-replicated-cluster-violation"
    assert trace["binding"] == "txn"
    assert trace["shard_count"] == 2
    assert trace["follower_count"] == 2
    assert trace["seed"] == 2
    assert "gamma" in trace["post_recovery"]
    assert "coordinator_recovery" in trace
    assert "failover" in trace and "rejoin" in trace
    assert trace["properties"]["operationcount"] == "80"
    assert trace["replay"]["command"].startswith("ycsbt replicated-cluster")


@pytest.mark.slow
def test_raw_binding_leaks_money_across_a_dead_leader():
    """The control: without 2PC the same kill schedule loses cash.  One
    seed is not guaranteed to leak, so sweep a few and require at least
    one raw violation — that asymmetry against the txn runs above is the
    whole point of the campaign."""
    campaign = run_replicated_campaign(
        seeds=range(3),
        bindings=("raw",),
        shard_counts=(2,),
        properties=FAST_PROPERTIES,
    )
    assert len(campaign.runs) == 3
    assert campaign.violations, campaign.summary()
    assert campaign.transactional_violations == []


@pytest.mark.slow
def test_campaign_sweeps_and_writes_artifacts(tmp_path):
    seen: list[ReplicatedRunResult] = []
    campaign = run_replicated_campaign(
        seeds=[0],
        bindings=("raw", "txn"),
        shard_counts=(2,),
        properties=FAST_PROPERTIES,
        out_dir=tmp_path,
        on_result=seen.append,
    )
    assert len(campaign.runs) == len(seen) == 2
    assert campaign.transactional_violations == []
    for artifact in campaign.artifacts:
        assert artifact.exists()
    assert "txn" in campaign.summary()
    assert "catch-up rejoins" in campaign.summary()


@pytest.mark.slow
def test_cli_replicated_cluster_command_exits_clean(tmp_path, capsys):
    from repro.core.cli import main

    code = main(
        [
            "replicated-cluster",
            "--seeds", "1",
            "--db", "txn",
            "--shards", "2",
            "--followers", "1",
            "--out", str(tmp_path),
            "-p", "operationcount=80",
            "-p", "recordcount=20",
            "-p", "threadcount=2",
            "-p", "txn.lock_lease_ms=300",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "txn" in out
