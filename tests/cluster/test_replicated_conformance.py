"""Conformance through failover: γ == 0 when a shard leader dies mid-2PC.

The headline suite of the replicated-cluster PR, all in deterministic
virtual time:

* the **convergence matrix** — at every 2PC crashpoint (coordinator-side
  and participant-side) *and* the new replication crashpoints, a shard
  leader dies mid-cross-shard-transaction; after lease failover,
  coordinator WAL replay (redo before undo, rerouted to the new leader)
  and scavenging, the transfer must have happened everywhere or nowhere,
  the economy must balance, and a strong/quorum read must see the
  freshest pre-crash write;
* the **probe guarantees** — :func:`~repro.cluster.probe.
  run_replicated_probe` mixes raw marker operations with cross-shard
  transfers under a mid-run leader kill + failover and must hold each
  consistency level's own promise: anomaly score 0 at strong and quorum,
  session order at read_your_writes, the bound at bounded_staleness —
  while the closed economy stays closed.
"""

import pytest

from repro.cluster.probe import run_replicated_probe
from repro.cluster.replicated import ReplicatedShardCluster
from repro.cluster.twopc import recover_coordinator
from repro.kvstore.base import StoreError
from repro.recovery.crashpoints import CrashError, CrashInjector, use_crash_injector
from repro.recovery.scavenger import TxnScavenger
from repro.replication.routed import ReplicaSession
from repro.sim.clock import use_clock
from repro.sim.scheduler import Scheduler, SimClock
from repro.txn.errors import TransactionError

#: Crashpoint -> does the in-flight transfer survive?  The commit point
#: (TSR insert, between after_prepare and after_decision_logged) is the
#: paper's dividing line: die before it and recovery presumes abort, die
#: after it and recovery must redo the commit everywhere.
MATRIX = {
    "twopc.after_prepare": "aborted",
    "twopc.after_decision_logged": "committed",
    "twopc.mid_participant_commit": "committed",
    "repl.leader_mid_prepare": "aborted",
    "repl.leader_mid_commit_apply": "committed",
}


def spanning_pair(cluster):
    """Two keys on two different shards."""
    routed = cluster.router()
    first = "u0"
    first_shard = routed.shard_for(first)[0]
    for i in range(1, 200):
        key = f"u{i * 7919}"
        if routed.shard_for(key)[0] != first_shard:
            return first, key
    raise AssertionError("could not span two shards")


@pytest.mark.parametrize("level", ["strong", "quorum"])
@pytest.mark.parametrize("point", sorted(MATRIX))
def test_leader_death_at_crashpoint_converges(point, level):
    expected = MATRIX[point]
    scheduler = Scheduler()
    clock = SimClock(scheduler)
    with use_clock(clock):
        cluster = ReplicatedShardCluster(
            shard_count=2,
            follower_count=2,
            lease_duration_s=0.5,
            ship_interval_s=0.05,
            lock_lease_ms=300.0,
            clock=clock.now,
            seed=2,
        )
        debit_key, credit_key = spanning_pair(cluster)
        loader = cluster.manager(client_id="loader").begin()
        loader.write(debit_key, {"cash": "100"})
        loader.write(credit_key, {"cash": "100"})
        loader.commit()
        marker_key = "marker:conformance"
        cluster.routed("strong").put(marker_key, {"marker": "1"})
        cluster.flush_all()
        scheduler.sleep(0.01)

        manager = cluster.manager(client_id="writer")
        tx = manager.begin()
        tx.write(debit_key, {"cash": "90"})
        tx.write(credit_key, {"cash": "110"})
        with use_crash_injector(CrashInjector({point: [1]})):
            if point.startswith("twopc.after"):
                # Coordinator-side points: the coordinator process dies.
                with pytest.raises(CrashError):
                    tx.commit()
            elif point == "repl.leader_mid_prepare":
                # Participant-side, phase 1: the shard leader dies; the
                # surviving coordinator sees a transport loss and aborts.
                with pytest.raises((TransactionError, StoreError)):
                    tx.commit()
            else:
                # Participant-side, phase 2: decision already durable;
                # the dead shard is redo work, the commit stands.
                tx.commit()

        # Whichever crashpoint fired, a shard leader must end up dead —
        # coordinator-side points kill one explicitly (the headline
        # scenario: leader death *at* each 2PC crashpoint).
        crashed = sorted(
            shard for shard, group in cluster.groups.items() if group.crashed
        )
        if not crashed:
            victim = cluster.router().shard_for(debit_key)[0]
            cluster.kill_leader(victim)
            crashed = [victim]
        assert len(crashed) == 1

        scheduler.sleep(1.25)  # let the dead leader's lease lapse
        info = cluster.failover(crashed[0])
        assert info["term"] == 2

        # The restarted coordinator replays its WAL: redo before undo,
        # with stale participant stubs rerouted to the new leader.
        summary = recover_coordinator(manager)
        assert summary["skipped"] == 0

        scheduler.sleep(0.4)  # let every lock lease lapse
        scavenger = TxnScavenger(cluster.manager(client_id="scav"))
        scavenger.scavenge_once()
        verify = scavenger.scavenge_once(remove_orphan_tsrs=False)
        assert verify.locks_seen == 0

        scheduler.sleep(0.01)
        audit = cluster.manager(client_id="audit").begin()
        debit = int(audit.read(debit_key)["cash"])
        credit = int(audit.read(credit_key)["cash"])
        audit.abort()
        assert debit + credit == 200, "money leaked across the failover"
        if expected == "committed":
            assert (debit, credit) == (90, 110)
        else:
            assert (debit, credit) == (100, 100)

        # γ == 0 at the strong/quorum level: a post-failover read must
        # see the freshest acknowledged pre-crash write.
        cluster.flush_all()
        reader = cluster.routed(level, session=ReplicaSession())
        assert reader.get(marker_key) == {"marker": "1"}


class TestProbeGuarantees:
    def test_strong_is_anomaly_free_through_a_failover(self):
        result = run_replicated_probe(
            seed=7, level="strong", nemesis={"at_s": 0.3, "rejoin_after_s": 0.5}
        )
        assert result.failovers, "the nemesis never fired"
        assert result.report.anomaly_score == 0.0
        assert result.report.violation_count == 0
        assert result.converged, result
        assert result.repaired

    def test_quorum_is_anomaly_free_through_a_failover(self):
        result = run_replicated_probe(
            seed=7, level="quorum", nemesis={"at_s": 0.3, "rejoin_after_s": 0.5}
        )
        assert result.failovers
        assert result.report.anomaly_score == 0.0
        assert result.report.violation_count == 0
        assert result.converged, result
        # Quorum machinery was actually exercised.
        assert result.counters.get("REPL-QUORUM-READS", 0) > 0
        assert result.counters.get("REPL-QUORUM-WRITES", 0) > 0

    def test_quorum_reads_keep_serving_while_leaderless(self):
        """Between the kill and the failover, strong loses the shard but
        quorum reads still assemble a follower majority."""
        strong = run_replicated_probe(
            seed=9, level="strong", nemesis={"at_s": 0.2}
        )
        quorum = run_replicated_probe(
            seed=9, level="quorum", nemesis={"at_s": 0.2}
        )
        assert strong.ops_unavailable > quorum.ops_unavailable

    def test_read_your_writes_holds_its_own_promise(self):
        result = run_replicated_probe(seed=11, level="read_your_writes")
        assert result.report.ryw_violations == []
        assert result.report.monotonic_violations == []
        assert result.converged

    def test_bounded_staleness_holds_the_bound(self):
        result = run_replicated_probe(
            seed=11, level="bounded_staleness", staleness_bound_s=0.5
        )
        assert result.report.bounded_violations == []
        assert result.converged

    def test_relaxed_levels_actually_observe_staleness(self):
        """The probe has teeth: with lag cranked up, relaxed levels do
        record stale reads (so the zero at strong/quorum is meaningful)."""
        result = run_replicated_probe(
            seed=11, level="bounded_staleness", ship_interval_s=0.1
        )
        assert result.report.stale_reads > 0

    def test_probe_is_deterministic(self):
        first = run_replicated_probe(
            seed=13, level="quorum", nemesis={"at_s": 0.25}
        )
        second = run_replicated_probe(
            seed=13, level="quorum", nemesis={"at_s": 0.25}
        )
        fingerprint = lambda r: (  # noqa: E731
            r.report.reads,
            r.report.writes,
            r.report.stale_reads,
            r.report.anomaly_score,
            r.transfers_committed,
            r.transfers_aborted,
            r.ops_unavailable,
            r.economy_total,
            r.virtual_elapsed_s,
            sorted(r.counters.items()),
        )
        assert fingerprint(first) == fingerprint(second)

    def test_economy_balances_even_with_unclean_failover(self):
        """Losing the dead leader's unshipped suffix may lose raw marker
        writes, but the transactional economy must still balance after
        recovery (2PC state that mattered was on a durable majority or
        gets undone)."""
        result = run_replicated_probe(
            seed=17,
            level="strong",
            nemesis={"at_s": 0.3, "clean": False},
        )
        assert result.failovers
        assert result.economy_ok, result
        assert result.residual_locks == 0
