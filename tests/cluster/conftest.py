"""Shared fixtures for the cluster tests.

Every fixture cluster uses a short lock lease so tests that must wait out
a lease (timeout-abort, scavenging) stay fast.
"""

import pytest

from repro.cluster import ShardCluster

#: Short lease shared by the fixtures and the tests that sleep past it.
LEASE_MS = 400.0


@pytest.fixture
def cluster():
    """A running 3-shard cluster over in-memory stores."""
    with ShardCluster(3, lock_lease_ms=LEASE_MS) as shard_cluster:
        yield shard_cluster
