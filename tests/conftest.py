"""Shared fixtures."""

import random

import pytest

from repro.bindings import registry


@pytest.fixture(autouse=True)
def _fresh_binding_registry():
    """Isolate the shared-store registry between tests."""
    registry.reset()
    yield
    registry.reset()


@pytest.fixture
def rng():
    """A deterministic RNG for generator tests."""
    return random.Random(0xC0FFEE)
