"""Regenerate every figure and table of the paper's evaluation section.

Runs the experiment harness for Figs. 2-5, the Tier-5 overhead table,
the Tier-6 consistency table and the coordinator ablation, printing each
as the rows/series the paper plots.  ``--full`` runs longer, lower-noise
versions (minutes instead of seconds).

Run:  python examples/run_experiments.py [fig2|fig3|fig4|fig5|tier5|tier6|ablation|all] [--full]
"""

import argparse
import sys
import time

from repro.harness import (
    ablation_coordinators,
    isolation_matrix,
    fig2_cloud_scaling,
    fig3_transaction_overhead,
    fig4_anomaly_score,
    fig5_raw_scaling,
    render_experiment,
    tier5_operation_overhead,
    tier6_consistency,
)

RUNNERS = {
    "fig2": (fig2_cloud_scaling, "threads"),
    "fig3": (fig3_transaction_overhead, "threads"),
    "fig4": (fig4_anomaly_score, "threads"),
    "fig5": (fig5_raw_scaling, "threads"),
    "tier5": (tier5_operation_overhead, "threads"),
    "tier6": (tier6_consistency, "threads"),
    "ablation": (ablation_coordinators, "oracle RPC delay (ms)"),
    "isolation": (isolation_matrix, "threads"),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("name", nargs="?", default="all", choices=[*RUNNERS, "all"])
    parser.add_argument("--full", action="store_true")
    args = parser.parse_args(argv)

    names = list(RUNNERS) if args.name == "all" else [args.name]
    for name in names:
        runner, x_label = RUNNERS[name]
        started = time.time()
        result = runner(quick=not args.full)
        sys.stdout.write(render_experiment(result, x_label=x_label))
        print(f"   ({time.time() - started:.1f}s)\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
