"""Reproduce the paper's §V-C setup end to end (Listings 1-3).

The paper ran a WiredTiger key-value store behind a hand-written HTTP
interface on the same machine as the YCSB+T client, 16 threads, CEW with
a 90:10 read / read-modify-write mix, *non-transactionally* — so that
anomalies arise and the validation stage catches them.

This script builds the same stack from this repository's substrates:

* a durable log-structured store (the WiredTiger stand-in),
* the threaded HTTP server on 127.0.0.1,
* the ``RawHttpDB`` client binding (Listing 1's ``-db`` argument),
* the Closed Economy Workload property file semantics (Listing 2),

and prints the measurement report in the Listing 3 format.

Run:  python examples/closed_economy.py [--threads 16] [--ops 4000]
"""

import argparse
import sys
import tempfile

from repro import Client, ClosedEconomyWorkload, Measurements, Properties, TextExporter
from repro.bindings.stores import RawHttpDB
from repro.http import KVStoreHTTPServer
from repro.kvstore.lsm import LSMKVStore


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--threads", type=int, default=16)
    parser.add_argument("--records", type=int, default=300)
    parser.add_argument("--ops", type=int, default=4000)
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="ycsbt-wt-") as data_dir:
        store = LSMKVStore(data_dir)
        with KVStoreHTTPServer(store) as server:
            host, port = server.address
            properties = Properties(
                {
                    # Listing 2, scaled for a quick local run.
                    "recordcount": str(args.records),
                    "operationcount": str(args.ops),
                    "totalcash": str(args.records * 100),
                    "readproportion": "0.9",
                    "readmodifywriteproportion": "0.1",
                    "requestdistribution": "zipfian",
                    "fieldcount": "1",
                    "fieldlength": "100",
                    "writeallfields": "true",
                    "readallfields": "true",
                    "histogram.buckets": "0",
                    "threadcount": str(args.threads),
                    "http.host": host,
                    "http.port": str(port),
                    "seed": "11",
                }
            )
            print(
                f"$ ycsbt bench -db raw_http -P workloads/closed_economy_workload "
                f"-p http.port={port} -threads {args.threads}",
                file=sys.stderr,
            )
            measurements = Measurements()
            workload = ClosedEconomyWorkload()
            workload.init(properties, measurements)
            client = Client(
                workload, lambda: RawHttpDB(properties), properties, measurements
            )
            client.load()
            result = client.run()
            sys.stdout.write(TextExporter().export(result.report()))
        store.close()

    validation = result.validation
    if validation is not None and not validation.passed:
        print(
            "\n(as in the paper: without transactions, concurrent "
            "read-modify-writes lost money — Tier 6 caught it)",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
