"""Quickstart: the YCSB+T pitch in one script.

Runs the Closed Economy Workload twice against the same kind of store —
once through the raw (non-transactional) binding and once through the
client-coordinated transaction manager — and prints what the paper's two
new tiers measure:

* Tier 6: the raw run drifts money (anomaly score > 0); the transactional
  run keeps the economy exactly balanced (anomaly score == 0).
* Tier 5: the transactional run pays for that with lower throughput.

Run:  python examples/quickstart.py
"""

from repro import Client, ClosedEconomyWorkload, Measurements, Properties
from repro.bindings.kv import KVStoreDB
from repro.bindings.txn import TxnDB
from repro.kvstore import ConstantLatency, InMemoryKVStore, LatencyInjectingStore
from repro.txn import ClientTransactionManager


def run_cew(transactional: bool) -> tuple[float, float]:
    """Returns (throughput ops/s, anomaly score) for one mode."""
    properties = Properties(
        {
            "recordcount": "500",
            "operationcount": "4000",
            "totalcash": "500000",
            "readproportion": "0.9",
            "readmodifywriteproportion": "0.1",
            "requestdistribution": "zipfian",
            "fieldcount": "1",
            "threadcount": "8",
            "seed": "7",
        }
    )
    # The same substrate for both runs: an in-memory store behind a
    # simulated 0.5 ms network hop.
    backing = InMemoryKVStore()
    store = LatencyInjectingStore(backing, ConstantLatency(0.0005))

    if transactional:
        manager = ClientTransactionManager(store)
        db_factory = lambda: TxnDB(properties, manager=manager)  # noqa: E731
    else:
        db_factory = lambda: KVStoreDB(store, properties)  # noqa: E731

    measurements = Measurements()
    workload = ClosedEconomyWorkload()
    workload.init(properties, measurements)
    client = Client(workload, db_factory, properties, measurements)
    client.load()
    result = client.run()

    validation = result.validation
    assert validation is not None
    mode = "transactional" if transactional else "raw"
    print(f"--- {mode} ---")
    for section, value in validation.fields:
        print(f"  [{section}] {value}")
    print(f"  throughput: {result.throughput:,.0f} ops/s")
    print(f"  aborted operations: {result.failed_operations}")
    print()
    return result.throughput, validation.anomaly_score or 0.0


def main() -> None:
    raw_throughput, raw_anomaly = run_cew(transactional=False)
    txn_throughput, txn_anomaly = run_cew(transactional=True)

    print("=== summary ===")
    print(f"raw:           {raw_throughput:8,.0f} ops/s   anomaly score {raw_anomaly:.2e}")
    print(f"transactional: {txn_throughput:8,.0f} ops/s   anomaly score {txn_anomaly:.2e}")
    overhead = 1 - txn_throughput / raw_throughput if raw_throughput else 0
    print(f"transaction overhead: {overhead:.0%} throughput reduction "
          f"(paper reports 30-40%)")
    if txn_anomaly == 0 and raw_anomaly >= 0:
        print("consistency: transactions eliminated all anomalies")


if __name__ == "__main__":
    main()
