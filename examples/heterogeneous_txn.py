"""Transactions spanning heterogeneous stores, with crash recovery.

The paper's client-coordinated library (§II-B) "enables transactions to
span across hybrid data stores ... without the need to install or
maintain additional infrastructure".  This example demonstrates exactly
that with three different store implementations inside one transaction:

1. an atomic transfer debiting an account on an in-memory store and
   crediting one on a durable log-structured store, with an audit record
   on a (simulated) cloud store;
2. a conflict: two transfers racing for the same account — one commits,
   one aborts, money never duplicates;
3. crash recovery: a transaction "dies" mid-commit holding locks, and a
   later reader rolls the committed transaction forward from its staged
   intents (lease-based recovery, no coordinator involved).

Run:  python examples/heterogeneous_txn.py
"""

import tempfile
import threading

from repro.kvstore import InMemoryKVStore, SimulatedCloudStore, WAS_PROFILE
from repro.kvstore.lsm import LSMKVStore
from repro.txn import ClientTransactionManager, TransactionConflict


def balances(manager: ClientTransactionManager) -> dict[str, int]:
    with manager.transaction() as tx:
        return {
            "alice@memory": int(tx.read("alice", store="memory")["balance"]),
            "bob@lsm": int(tx.read("bob", store="lsm")["balance"]),
        }


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="ycsbt-lsm-") as lsm_dir:
        memory = InMemoryKVStore()
        lsm = LSMKVStore(lsm_dir)
        cloud = SimulatedCloudStore(WAS_PROFILE, scale=100.0)
        manager = ClientTransactionManager(
            {"memory": memory, "lsm": lsm, "cloud": cloud},
            default_store="memory",
            lock_lease_ms=200.0,
        )

        # -- 1. one atomic transfer across three different stores -------------
        with manager.transaction() as tx:
            tx.write("alice", {"balance": "100"}, store="memory")
            tx.write("bob", {"balance": "100"}, store="lsm")
        print("initial:", balances(manager))

        with manager.transaction() as tx:
            alice = int(tx.read("alice", store="memory")["balance"])
            bob = int(tx.read("bob", store="lsm")["balance"])
            tx.write("alice", {"balance": str(alice - 30)}, store="memory")
            tx.write("bob", {"balance": str(bob + 30)}, store="lsm")
            tx.write("audit:transfer-1", {"amount": "30", "from": "alice", "to": "bob"},
                     store="cloud")
        print("after transfer of $30:", balances(manager))
        print("audit record on cloud store:", cloud.get("audit:transfer-1"))

        # -- 2. two racing transfers: exactly one wins -------------------------
        outcomes = []

        def transfer(amount: int) -> None:
            try:
                with manager.transaction() as tx:
                    alice = int(tx.read("alice", store="memory")["balance"])
                    barrier.wait()  # force both to read before either commits
                    tx.write("alice", {"balance": str(alice - amount)}, store="memory")
                outcomes.append(("committed", amount))
            except TransactionConflict:
                outcomes.append(("aborted", amount))

        barrier = threading.Barrier(2)
        threads = [threading.Thread(target=transfer, args=(a,)) for a in (10, 20)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        print("racing transfers:", sorted(outcomes))
        print("after race:", balances(manager))

        # -- 3. crash mid-commit; a later reader recovers -----------------------
        crashing = manager.begin()
        crashing.write("alice", {"balance": "999"}, store="memory")
        # Simulate the client dying *after* the commit decision (the TSR
        # exists) but before it applied its writes: drive the commit
        # internals up to the decision point only.
        ordered = sorted(crashing._writes)
        for address in ordered:
            crashing._acquire_lock(address, f"{ordered[0][0]}:{ordered[0][1]}")
        commit_ts = manager.clock.next_timestamp()
        tsr_store = manager.store(ordered[0][0])
        tsr_store.put_if_version(
            manager._tsr_key(crashing.txid),
            {"state": "committed", "commit_ts": str(commit_ts)},
            None,
        )
        print("client crashed mid-commit; alice's record is locked")

        with manager.transaction() as tx:  # an unrelated reader arrives
            recovered = tx.read("alice", store="memory")
        print("later reader sees (rolled forward):", recovered)
        print("manager stats:", manager.stats)

        lsm.close()


if __name__ == "__main__":
    main()
