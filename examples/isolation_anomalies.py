"""Isolation anomalies, live — the paper's §VII future work.

Runs the three anomaly-targeting workloads under three regimes and prints
the isolation matrix:

* **lost update** — two clients read the same counter and both write back
  a +1: raw access silently drops increments; snapshot isolation's
  first-committer-wins rule aborts one instead.
* **write skew** — two on-call doctors, constraint x+y >= 1: snapshot
  isolation *permits* this anomaly (disjoint writes based on overlapping
  reads); the serializable mode's read-set validation catches it.
* **read skew** — mirrored pairs written together: raw two-get readers
  observe fractured (torn) states; any snapshot read never does.

Run:  python examples/isolation_anomalies.py
"""

from repro.harness import isolation_matrix
from repro.harness.report import render_experiment


def main() -> None:
    result = isolation_matrix(quick=True)
    print(render_experiment(result))
    print(
        "Reading the matrix: raw access exhibits every anomaly; snapshot\n"
        "isolation stops lost updates and fractured reads but lets write\n"
        "skew through; the serializable mode stops all three — paying with\n"
        "aborts and throughput, which is the whole trade-off the YCSB+T\n"
        "tiers exist to measure."
    )


if __name__ == "__main__":
    main()
