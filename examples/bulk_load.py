"""Bulk loading and interval throughput (the YCSB++-flavoured extensions).

Loads the same table into the durable log-structured store twice — once
with one insert per record, once with 128-record batches (one WAL pass
each) — and prints the speedup plus the run's interval-throughput series
(the data behind YCSB's ``-s`` status line).

Run:  python examples/bulk_load.py [--records 5000]
"""

import argparse
import tempfile

from repro.bindings.kv import KVStoreDB
from repro.core import Client, CoreWorkload, Properties
from repro.kvstore.lsm import LSMKVStore
from repro.measurements import Measurements


def load_once(records: int, batch_size: int, data_dir: str) -> float:
    properties = Properties(
        {
            "recordcount": str(records),
            "fieldcount": "2",
            "fieldlength": "64",
            "threadcount": "4",
            "batchsize": str(batch_size),
            "status.interval": "0.2",
            "seed": "9",
        }
    )
    store = LSMKVStore(data_dir, sync_writes=True)  # durability on: worst case
    workload = CoreWorkload()
    measurements = Measurements()
    workload.init(properties, measurements)
    client = Client(workload, lambda: KVStoreDB(store, properties), properties, measurements)
    result = client.load()
    store.close()
    assert result.failed_operations == 0
    if result.throughput_series is not None:
        windows = result.throughput_series.windows()
        if windows:
            rates = ", ".join(f"{w.ops_per_second:,.0f}" for w in windows[:8])
            print(f"    interval throughput (ops/s per 200 ms window): {rates}")
    return result.throughput


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--records", type=int, default=5000)
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="bulk-single-") as single_dir:
        print("one insert per record (fsync per write):")
        single = load_once(args.records, batch_size=1, data_dir=single_dir)
        print(f"    {single:,.0f} records/s")

    with tempfile.TemporaryDirectory(prefix="bulk-batch-") as batch_dir:
        print("128-record batches (one WAL pass per batch):")
        batched = load_once(args.records, batch_size=128, data_dir=batch_dir)
        print(f"    {batched:,.0f} records/s")

    print(f"\nbulk loading speedup: {batched / single:.1f}x")


if __name__ == "__main__":
    main()
