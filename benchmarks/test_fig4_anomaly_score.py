"""Figure 4 — number of threads vs anomaly score (CEW, non-transactional).

The paper's key Tier-6 figure: no anomalies with one thread (no
concurrency), anomalies appearing and broadly growing as thread count
(and thus contention on the Zipfian hot set) rises.
"""

from repro.harness import fig4_anomaly_score

from conftest import archive


def test_fig4_anomaly_score(benchmark):
    result = benchmark.pedantic(
        lambda: fig4_anomaly_score(quick=True), rounds=1, iterations=1
    )
    archive(result)

    series = result.series[0]
    scores = {int(p.x): p.anomaly_score for p in series.points}

    # One thread: provably zero anomalies.
    assert scores[1] == 0.0
    # Concurrency introduces anomalies (drift is a random walk, so we
    # assert presence at the contended end rather than strict monotonicity).
    assert max(scores[8], scores[16]) > 0.0
    assert max(scores.values()) > scores[1]
