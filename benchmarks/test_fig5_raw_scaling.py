"""Figure 5 — number of threads vs throughput for the Figure 4 runs.

The companion plot: the same non-transactional CEW runs scale
near-linearly from 1 to 16 threads when the store is latency-bound.
"""

from repro.harness import fig5_raw_scaling

from conftest import archive


def test_fig5_raw_scaling(benchmark):
    result = benchmark.pedantic(
        lambda: fig5_raw_scaling(quick=True), rounds=1, iterations=1
    )
    archive(result)

    series = result.series[0]
    by_threads = {int(p.x): p.throughput for p in series.points}

    # Monotonic growth across the sweep.
    ordered = [by_threads[t] for t in (1, 2, 4, 8, 16)]
    assert all(b > a for a, b in zip(ordered, ordered[1:]))
    # Near-linear: 16 threads achieves a large fraction of ideal speedup.
    assert by_threads[16] > 8 * by_threads[1]
    # Every point completed its full operation budget.
    for point in series.points:
        assert point.operations > 0
