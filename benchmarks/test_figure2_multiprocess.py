"""Figure 2, multi-process edition — real workers against one HTTP store.

Regenerates the throughput-vs-clients curve with the scale-out engine:
each point spawns N OS processes that shard the load phase, barrier-start
the run phase, and hammer the parent's rate-limited simulated cloud
container over the batched HTTP protocol.  Asserts the paper's shape for
honest reasons: a monotone rise while workers are latency-bound, then a
plateau pinned at the container's request-rate ceiling (queueing, not
rejection, so throughput flattens instead of collapsing).
"""

from repro.harness import figure2_multiprocess

from conftest import archive


def test_figure2_multiprocess(benchmark):
    result = benchmark.pedantic(
        lambda: figure2_multiprocess(quick=True), rounds=1, iterations=1
    )
    archive(result, x_label="processes")

    points = result.series[0].points
    by_processes = {int(p.x): p for p in points}
    thr = {p: point.throughput for p, point in by_processes.items()}
    ceiling = by_processes[1].extra["rate_ceiling"]

    # Rise: doubling 1 -> 2 workers buys real throughput while the
    # container is latency-bound, and the peak clears 1 worker by a lot.
    assert thr[2] > 1.3 * thr[1], thr
    assert max(thr.values()) > 1.8 * thr[1], thr

    # Plateau: once the ceiling binds, 8 workers buy almost nothing over
    # the 2/4-worker peak (generous margin for scheduler noise).
    assert thr[8] < 1.25 * max(thr[2], thr[4]), thr

    # The flat region is the *container's* ceiling, not a client
    # artefact: the top points actually hit the rate limiter, and
    # throughput never exceeds what the ceiling admits.
    assert by_processes[8].extra["throttled_requests"] > 0
    assert max(thr.values()) <= ceiling * 1.15, thr

    # Work accounting survives the merge: every point ran its full
    # per-worker budget with nothing dropped.
    for processes, point in by_processes.items():
        assert point.operations == processes * 150, point
        assert point.failed_operations == 0, point
        # The load phase rode POST /batch, not per-record PUTs.
        assert point.extra["http_requests"].get("batch", 0) > 0, point
