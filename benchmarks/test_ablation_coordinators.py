"""Ablation — coordinator designs under central-oracle RPC latency.

§II-B's qualitative claim, measured: Percolator-style and ReTSO-style
commit both pay per-transaction round trips to a central oracle, so
raising that oracle's RPC latency (the WAN scenario) degrades their
throughput; the client-coordinated design has no oracle and stays flat.
"""

from repro.harness import ablation_coordinators

from conftest import archive


def test_ablation_coordinators(benchmark):
    result = benchmark.pedantic(
        lambda: ablation_coordinators(quick=True), rounds=1, iterations=1
    )
    archive(result, x_label="oracle RPC delay (ms)")

    client = result.series_by_label("client-coordinated")
    percolator = result.series_by_label("percolator-style")
    retso = result.series_by_label("retso-style")

    def by_delay(series):
        return {point.x: point.throughput for point in series.points}

    client_curve = by_delay(client)
    # No oracle -> RPC delay is irrelevant: flat within noise (2x band).
    assert max(client_curve.values()) < 2.5 * min(client_curve.values())

    # Oracle-based designs degrade clearly as the oracle slows down.
    for name, series in (("percolator", percolator), ("retso", retso)):
        curve = by_delay(series)
        zero_delay = curve[0.0]
        worst_delay = curve[max(curve)]
        assert worst_delay < 0.7 * zero_delay, (
            f"{name} did not degrade: {zero_delay:.0f} -> {worst_delay:.0f}"
        )

    # At the highest delay the client-coordinated design wins outright.
    highest = max(client_curve)
    assert client_curve[highest] > by_delay(percolator)[highest]
    assert client_curve[highest] > by_delay(retso)[highest]

    # Every coordinator kept the economy consistent (gamma == 0).
    for series in result.series:
        for point in series.points:
            assert point.anomaly_score == 0.0
