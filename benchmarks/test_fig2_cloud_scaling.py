"""Figure 2 — YCSB+T throughput on EC2 with WAS (simulated).

Regenerates the three curves (read:write 90:10, 80:20, 70:30) over client
thread counts 1..128 and asserts the paper's shape: linear scale-out in
the latency-bound region, a plateau once the container's request-rate
ceiling binds, and a decline at 64/128 threads from client-side thread
contention.
"""

from repro.harness import fig2_cloud_scaling

from conftest import archive


def test_fig2_cloud_scaling(benchmark):
    result = benchmark.pedantic(
        lambda: fig2_cloud_scaling(quick=True), rounds=1, iterations=1
    )
    archive(result)

    for label in ("90:10", "80:20", "70:30"):
        series = result.series_by_label(label)
        by_threads = {int(p.x): p.throughput for p in series.points}

        # Linear region: 1 -> 16 threads scales several-fold.
        assert by_threads[16] > 6 * by_threads[1], label
        # Plateau: past 16 threads, extra threads buy far less than the
        # 2x another doubling would in the linear region.
        assert by_threads[32] < 2.2 * by_threads[16], label
        # Decline: 128 threads is clearly below the peak.
        peak = max(by_threads.values())
        assert by_threads[128] < 0.8 * peak, label

    # Write-heavier mixes are slower overall (writes pay the commit
    # protocol's extra requests).  Compare sweep averages, which are
    # robust to single-point scheduler noise.
    def average(label):
        points = result.series_by_label(label).points
        return sum(p.throughput for p in points) / len(points)

    assert average("90:10") > average("70:30")

    # Transactions kept the economy consistent throughout.
    for series in result.series:
        for point in series.points:
            assert point.anomaly_score == 0.0
