"""Bulk loading (YCSB++'s extended-API feature) on the durable store.

Loads the same table with per-record inserts vs 128-record batches
against the log-structured store with fsync-per-WAL-write enabled — the
configuration where group commit matters.  Asserts the batch path wins.
"""

from repro.bindings.kv import KVStoreDB
from repro.core import Client, CoreWorkload, Properties
from repro.kvstore.lsm import LSMKVStore
from repro.measurements import Measurements

from conftest import RESULTS_DIR


def load_throughput(records: int, batch_size: int, data_dir) -> float:
    properties = Properties(
        {
            "recordcount": str(records),
            "fieldcount": "2",
            "fieldlength": "64",
            "threadcount": "4",
            "batchsize": str(batch_size),
            "seed": "9",
        }
    )
    store = LSMKVStore(data_dir, sync_writes=True)
    workload = CoreWorkload()
    measurements = Measurements()
    workload.init(properties, measurements)
    client = Client(
        workload, lambda: KVStoreDB(store, properties), properties, measurements
    )
    result = client.load()
    size = store.size()
    store.close()
    assert result.failed_operations == 0
    assert size == records
    return result.throughput


def test_bulk_load_beats_single_inserts(benchmark, tmp_path):
    records = 2000

    def run_both():
        single = load_throughput(records, 1, tmp_path / "single")
        batched = load_throughput(records, 128, tmp_path / "batched")
        return single, batched

    single, batched = benchmark.pedantic(run_both, rounds=1, iterations=1)
    report = (
        "== bulk loading: per-record vs 128-record batches (LSM, fsync) ==\n"
        f"single inserts: {single:,.0f} records/s\n"
        f"batched:        {batched:,.0f} records/s\n"
        f"speedup:        {batched / single:.1f}x\n"
    )
    print("\n" + report)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "bulk_load.txt").write_text(report)

    assert batched > single
