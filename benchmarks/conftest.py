"""Shared helpers for the benchmark harness.

Each figure/table benchmark runs its experiment exactly once under
pytest-benchmark timing (``pedantic(rounds=1)``) — these are experiment
regenerations, not microbenchmarks — prints the same series the paper
plots, and archives the rendered report under ``results/``.
"""

import pathlib

import pytest

from repro.bindings import registry
from repro.harness.report import render_experiment, render_experiment_json

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(autouse=True)
def _fresh_registry():
    registry.reset()
    yield
    registry.reset()


def archive(result, x_label="threads"):
    """Render, print, and save an experiment report; returns the text.

    Each experiment is archived twice: the human-readable table
    (``results/<name>.txt``) and the machine-readable trajectory
    (``results/BENCH_<name>.json``, uploaded as a CI artifact).
    """
    text = render_experiment(result, x_label=x_label)
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{result.experiment}.txt").write_text(text)
    (RESULTS_DIR / f"BENCH_{result.experiment}.json").write_text(
        render_experiment_json(result)
    )
    return text
