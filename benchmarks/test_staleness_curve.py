"""Staleness curve — Wada et al.'s measurement, from the paper's §VI.

"For clouds, Wada et al measured the probability of returning stale
values, as a function of how much time had elapsed between the latest
write and the read."  This benchmark reproduces that curve against the
asynchronously replicated store: stale probability 1.0 inside the
replication lag, 0.0 beyond it, with primary reads always fresh.
"""

import random

from repro.kvstore import ReadPreference, ReplicatedKVStore
from repro.validation import StalenessProbe

from conftest import RESULTS_DIR


def build_curve() -> list[tuple[float, float]]:
    clock = [0.0]
    store = ReplicatedKVStore(
        replica_count=2,
        lag_seconds=0.050,
        read_preference=ReadPreference.REPLICA,
        rng=random.Random(3),
        clock=lambda: clock[0],
    )

    def advance(seconds: float) -> None:
        clock[0] += seconds

    probe = StalenessProbe(store, sleep=advance)
    delays = [0.0, 0.010, 0.025, 0.040, 0.049, 0.051, 0.075, 0.100]
    return probe.curve(delays, samples=40)


def test_staleness_curve(benchmark):
    curve = benchmark.pedantic(build_curve, rounds=1, iterations=1)

    lines = ["== staleness: stale-read probability vs time since write =="]
    lines.append("(replication lag 50 ms, replica reads)")
    for delay, probability in curve:
        lines.append(f"  {delay * 1000:6.1f} ms   {probability:.2f}")
    report = "\n".join(lines) + "\n"
    print("\n" + report)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "staleness.txt").write_text(report)

    by_delay = dict(curve)
    # Inside the lag: always stale.  Beyond it: always fresh.
    assert by_delay[0.0] == 1.0
    assert by_delay[0.049] == 1.0
    assert by_delay[0.051] == 0.0
    assert by_delay[0.100] == 0.0
    # Monotone non-increasing overall.
    probabilities = [probability for _, probability in curve]
    assert all(b <= a for a, b in zip(probabilities, probabilities[1:]))


def test_primary_reads_never_stale(benchmark):
    def probe_primary() -> float:
        clock = [0.0]
        store = ReplicatedKVStore(
            replica_count=2,
            lag_seconds=0.050,
            read_preference=ReadPreference.PRIMARY,
            rng=random.Random(3),
            clock=lambda: clock[0],
        )
        probe = StalenessProbe(store, sleep=lambda s: clock.__setitem__(0, clock[0] + s))
        return probe.stale_probability(0.0, samples=40)

    probability = benchmark.pedantic(probe_primary, rounds=1, iterations=1)
    assert probability == 0.0
