"""Tier 6 — the consistency validation stage (§III-B, §IV-B).

The headline table: the same contended CEW run yields a non-zero anomaly
score through the raw binding and exactly zero through the
client-coordinated transaction manager, which converts would-be anomalies
into aborts.
"""

from repro.harness import tier6_consistency

from conftest import archive


def test_tier6_consistency(benchmark):
    result = benchmark.pedantic(
        lambda: tier6_consistency(quick=True), rounds=1, iterations=1
    )
    archive(result)

    rows = {row["mode"]: row for row in result.tables["consistency"]}

    transactional = rows["transactional"]
    assert transactional["anomaly_score"] == 0.0
    assert transactional["validation_passed"] is True
    # Conflicting transactions aborted instead of corrupting state.
    assert transactional["aborted"] >= 0

    raw = rows["raw"]
    assert raw["anomaly_score"] is not None and raw["anomaly_score"] >= 0.0
    # Raw wins on throughput — the price of consistency is Fig. 3's story.
    assert raw["throughput"] > transactional["throughput"]
