"""Ablation — the latency-vs-durability dial of the storage engine (§II-A).

"Persisting data to disk achieves durability but increases write latency
significantly.  Not synching writes to the disk reduces latency and
improves throughput but reduces durability guarantees."  The
log-structured store exposes exactly that dial (``sync_writes``); this
benchmark measures both settings, plus the read-amplification effect of
segment count that compaction repairs.
"""

import statistics
import time

from repro.kvstore.lsm import LSMKVStore

from conftest import RESULTS_DIR


def _write_batch(store, count, prefix):
    started = time.perf_counter()
    for i in range(count):
        store.put(f"{prefix}{i:06d}", {"field0": "x" * 100})
    return time.perf_counter() - started


def test_wal_sync_vs_async(benchmark, tmp_path):
    writes = 300

    def run_both():
        async_store = LSMKVStore(tmp_path / "async", sync_writes=False)
        async_seconds = _write_batch(async_store, writes, "a")
        async_store.close()
        sync_store = LSMKVStore(tmp_path / "sync", sync_writes=True)
        sync_seconds = _write_batch(sync_store, writes, "s")
        sync_store.close()
        return async_seconds, sync_seconds

    async_seconds, sync_seconds = benchmark.pedantic(run_both, rounds=1, iterations=1)
    async_rate = writes / async_seconds
    sync_rate = writes / sync_seconds
    report = (
        "== durability ablation: WAL fsync per write ==\n"
        f"async (no fsync): {async_rate:,.0f} writes/s\n"
        f"sync  (fsync):    {sync_rate:,.0f} writes/s\n"
        f"durability costs {async_rate / sync_rate:.1f}x write throughput\n"
    )
    print("\n" + report)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "durability.txt").write_text(report)

    # The paper's trade-off, measured: fsync is materially slower.
    assert sync_rate < async_rate


def test_compaction_repairs_read_amplification(benchmark, tmp_path):
    def run() -> tuple[float, float, int]:
        store = LSMKVStore(tmp_path / "frag", memtable_bytes=1 << 30)
        # Build many segments, each superseding the same keys.
        for round_number in range(30):
            for i in range(50):
                store.put(f"key{i:04d}", {"field0": f"round{round_number}"})
            store.flush()
        assert store.segment_count == 30

        def read_all_us() -> float:
            samples = []
            for i in range(50):
                started = time.perf_counter_ns()
                store.get(f"key{i:04d}")
                samples.append((time.perf_counter_ns() - started) / 1000)
            return statistics.median(samples)

        fragmented = read_all_us()
        discarded_records = store.compact()
        compacted = read_all_us()
        store.close()
        return fragmented, compacted, discarded_records

    fragmented_us, compacted_us, discarded = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(
        f"\n== compaction ablation ==\n"
        f"30 segments: {fragmented_us:.1f} us/read; "
        f"1 segment: {compacted_us:.1f} us/read; "
        f"{discarded} shadowed records discarded\n"
    )
    assert discarded == 29 * 50
    # Reads from one segment are no slower than from thirty (they are
    # usually much faster; allow slack for timer noise).
    assert compacted_us <= fragmented_us * 1.5
