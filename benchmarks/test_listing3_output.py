"""Listing 3 — the full YCSB+T measurement report over the §V-C stack.

Runs the Closed Economy Workload with 16 client threads against the
log-structured store behind a real HTTP server (the WiredTiger +
Boost-ASIO equivalent) and checks that the report carries every section
Listing 3 shows: the validation block, the overall block, and per-series
operation blocks including the transactional pairs and the START/COMMIT
bookkeeping.
"""

import re
import tempfile

from repro.bindings.stores import RawHttpDB
from repro.core import Client, ClosedEconomyWorkload, Properties
from repro.http import KVStoreHTTPServer
from repro.kvstore.lsm import LSMKVStore
from repro.measurements import Measurements, TextExporter

from conftest import RESULTS_DIR


def run_listing3_stack() -> str:
    with tempfile.TemporaryDirectory(prefix="listing3-") as data_dir:
        store = LSMKVStore(data_dir)
        with KVStoreHTTPServer(store) as server:
            host, port = server.address
            properties = Properties(
                {
                    "recordcount": "100",
                    "operationcount": "1000",
                    "totalcash": "10000",
                    "readproportion": "0.9",
                    "readmodifywriteproportion": "0.1",
                    "requestdistribution": "zipfian",
                    "fieldcount": "1",
                    "fieldlength": "100",
                    "writeallfields": "true",
                    "readallfields": "true",
                    "histogram.buckets": "0",
                    "threadcount": "16",
                    "http.host": host,
                    "http.port": str(port),
                    "seed": "13",
                }
            )
            measurements = Measurements()
            workload = ClosedEconomyWorkload()
            workload.init(properties, measurements)
            client = Client(workload, lambda: RawHttpDB(properties), properties, measurements)
            client.load()
            result = client.run()
        store.close()
    return TextExporter().export(result.report())


def test_listing3_report(benchmark):
    output = benchmark.pedantic(run_listing3_stack, rounds=1, iterations=1)
    print("\n" + output)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "listing3.txt").write_text(output)

    # Validation block (Tier 6).
    assert re.search(r"\[TOTAL CASH\], 10000", output)
    assert re.search(r"\[COUNTED CASH\], \d+", output)
    assert re.search(r"\[ACTUAL OPERATIONS\], 1000", output)
    assert re.search(r"\[ANOMALY SCORE\], ", output)

    # Overall block.
    assert re.search(r"\[OVERALL\], RunTime\(ms\), ", output)
    assert re.search(r"\[OVERALL\], Throughput\(ops/sec\), ", output)

    # Operation blocks, including the transactional series pairs and the
    # per-operation metrics of Listing 3.
    for section in ("READ", "TX-READ", "START", "COMMIT", "READ-MODIFY-WRITE",
                    "TX-READMODIFYWRITE"):
        assert f"[{section}], Operations," in output, f"missing [{section}]"
        assert f"[{section}], AverageLatency(us)," in output
        assert f"[{section}], MinLatency(us)," in output
        assert f"[{section}], MaxLatency(us)," in output

    # Return-code lines.
    assert re.search(r"\[READ\], Return=OK, \d+", output)

    # START/COMMIT on a non-transactional binding are near no-ops —
    # Listing 3 measures them at ~0.08 us; allow generous slack.
    match = re.search(r"\[START\], AverageLatency\(us\), ([0-9.]+)", output)
    assert match and float(match.group(1)) < 100.0
