"""Figure 3 — impact of transactions on throughput.

Non-transactional vs transactional CEW over the same latency-shaped store,
threads 1..16.  The paper reports transactions costing 30-40 % of raw
throughput; we assert a reduction in a generous band around that.
"""

from repro.harness import fig3_transaction_overhead

from conftest import archive


def test_fig3_transaction_overhead(benchmark):
    result = benchmark.pedantic(
        lambda: fig3_transaction_overhead(quick=True), rounds=1, iterations=1
    )
    archive(result)

    raw = result.series_by_label("non-transactional")
    txn = result.series_by_label("transactional")

    reductions = []
    for raw_point, txn_point in zip(raw.points, txn.points):
        assert raw_point.x == txn_point.x
        # Transactions never win on raw throughput.
        assert txn_point.throughput < raw_point.throughput
        reductions.append(1 - txn_point.throughput / raw_point.throughput)

    # Average reduction lands in a band around the paper's 30-40%.
    average_reduction = sum(reductions) / len(reductions)
    assert 0.15 < average_reduction < 0.65, f"reduction {average_reduction:.2f}"

    # Both modes still scale with threads (shape, not absolute numbers).
    assert raw.points[-1].throughput > 4 * raw.points[0].throughput
    assert txn.points[-1].throughput > 4 * txn.points[0].throughput

    # The overhead table rows exist for every thread count.
    assert [row["threads"] for row in result.tables["overhead"]] == [1, 2, 4, 8, 16]
