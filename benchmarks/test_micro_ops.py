"""Microbenchmarks of the hot-path building blocks.

Unlike the figure regenerations, these use pytest-benchmark's normal
multi-round statistics: raw store operations, transactional commit,
key-choice generators, and the measurement pipeline — the per-operation
costs that determine the framework's own overhead (YCSB's "tier 0"
concern: the client must not be the bottleneck).
"""

import random

from repro.core import ClosedEconomyWorkload, Properties
from repro.bindings import MemoryDB
from repro.generators import ScrambledZipfianGenerator, ZipfianGenerator
from repro.kvstore import InMemoryKVStore
from repro.measurements import Measurements
from repro.txn import ClientTransactionManager


def test_memory_store_put(benchmark):
    store = InMemoryKVStore()
    counter = iter(range(10_000_000))

    benchmark(lambda: store.put(f"key{next(counter) % 1000}", {"field0": "x" * 100}))


def test_memory_store_get(benchmark):
    store = InMemoryKVStore()
    for i in range(1000):
        store.put(f"key{i:04d}", {"field0": "x" * 100})
    rng = random.Random(7)

    benchmark(lambda: store.get(f"key{rng.randrange(1000):04d}"))


def test_memory_store_scan100(benchmark):
    store = InMemoryKVStore()
    for i in range(2000):
        store.put(f"key{i:05d}", {"field0": "x"})

    benchmark(lambda: store.scan("key01000", 100))


def test_txn_commit_two_writes(benchmark):
    manager = ClientTransactionManager(InMemoryKVStore())
    manager.run(lambda tx: tx.write("a", {"n": "0"}))
    manager.run(lambda tx: tx.write("b", {"n": "0"}))

    def transfer():
        with manager.transaction() as tx:
            a = int(tx.read("a")["n"])
            b = int(tx.read("b")["n"])
            tx.write("a", {"n": str(a - 1)})
            tx.write("b", {"n": str(b + 1)})

    benchmark(transfer)


def test_txn_snapshot_read(benchmark):
    manager = ClientTransactionManager(InMemoryKVStore())
    manager.run(lambda tx: tx.write("k", {"field0": "x" * 100}))

    def read():
        with manager.transaction() as tx:
            tx.read("k")

    benchmark(read)


def test_zipfian_generator(benchmark):
    generator = ZipfianGenerator(0, 9999, rng=random.Random(1))
    benchmark(generator.next_value)


def test_scrambled_zipfian_generator(benchmark):
    generator = ScrambledZipfianGenerator(0, 9999, rng=random.Random(1))
    benchmark(generator.next_value)


def test_measurement_record(benchmark):
    measurements = Measurements()

    def record():
        measurements.measure("READ", 1234)
        measurements.report_status("READ", "OK")

    benchmark(record)


def test_cew_transaction_on_memory(benchmark):
    properties = Properties(
        {
            "recordcount": "1000",
            "operationcount": "1000000",
            "totalcash": "1000000",
            "readproportion": "0.9",
            "readmodifywriteproportion": "0.1",
            "fieldcount": "1",
            "seed": "21",
        }
    )
    workload = ClosedEconomyWorkload()
    workload.init(properties, Measurements())
    db = MemoryDB(properties)
    state = workload.init_thread(0, 1)
    for _ in range(workload.record_count):
        workload.do_insert(db, state)

    benchmark(lambda: workload.do_transaction(db, state))
