"""Figure 2 in virtual time — deterministic simulation of the WAS sweep.

Regenerates the three Fig. 2 curves entirely under a SimClock: the
simulated WAS container keeps the *real* service's latency profile
(15/25 ms medians, 1000 req/s ceiling — no speed-up scaling), the sweep
spans thousands of simulated seconds, and the whole figure is a pure
function of its seed.  Asserts the paper's rise/plateau/decline shape
and that a second run of the same seed reproduces every point exactly.
"""

from repro.harness import sim_figure2

from conftest import archive


def test_sim_figure2(benchmark):
    result = benchmark.pedantic(lambda: sim_figure2(quick=True), rounds=1, iterations=1)
    archive(result)

    for label in ("90:10", "80:20", "70:30"):
        series = result.series_by_label(label)
        by_threads = {int(p.x): p.throughput for p in series.points}

        # Linear region: 1 -> 16 threads scales several-fold.
        assert by_threads[16] > 6 * by_threads[1], label
        # Plateau: the container ceiling binds past 16 threads.
        assert by_threads[32] < 2.2 * by_threads[16], label
        # Decline: at 128 threads the client's serialised cost exceeds
        # the ceiling and throughput drops clearly below the peak.
        peak = max(by_threads.values())
        assert by_threads[128] < 0.8 * peak, label

        # Virtual time did the waiting: every simulated run spans far
        # more virtual than wall time (the whole figure takes seconds).
        total_virtual_s = sum(p.extra["virtual_run_time_s"] for p in series.points)
        assert total_virtual_s > 10.0, label

    # Transactions kept the economy consistent throughout.
    for series in result.series:
        for point in series.points:
            assert point.anomaly_score == 0.0

    # Determinism: one re-simulated point matches the archived figure
    # exactly — same seed, same virtual history, same throughput.
    replay = sim_figure2(quick=True, thread_counts=(16,), mixes=(0.9,))
    original = next(
        p for p in result.series_by_label("90:10").points if int(p.x) == 16
    )
    replayed = replay.series_by_label("90:10").points[0]
    assert replayed.throughput == original.throughput
    assert replayed.extra["events_processed"] == original.extra["events_processed"]
