"""Isolation matrix — the paper's §VII future work, implemented.

Three anomaly-targeting workloads (lost update, write skew, read skew) run
under three isolation regimes (raw, snapshot, serializable).  Asserts the
textbook matrix from Berenson et al.'s isolation-level critique — which is
exactly the study the paper says it is "working on" as future work:

    anomaly       raw   snapshot  serializable
    lost update   yes   no        no
    write skew    yes   yes       no
    read skew     yes   no        no
"""

from repro.harness import isolation_matrix

from conftest import archive


def test_isolation_matrix(benchmark):
    result = benchmark.pedantic(
        lambda: isolation_matrix(quick=True), rounds=1, iterations=1
    )
    archive(result)

    matrix = {
        (row["workload"], row["isolation"]): row for row in result.tables["matrix"]
    }

    # Raw access exhibits every anomaly.
    for workload in ("lost-update", "write-skew", "read-skew"):
        assert matrix[(workload, "raw")]["anomaly_score"] > 0, workload

    # Snapshot isolation stops lost updates and fractured reads...
    assert matrix[("lost-update", "snapshot")]["anomaly_score"] == 0.0
    assert matrix[("read-skew", "snapshot")]["anomaly_score"] == 0.0
    # ...but permits write skew (its defining anomaly).
    assert matrix[("write-skew", "snapshot")]["anomaly_score"] > 0

    # The serializable mode closes write skew too.
    for workload in ("lost-update", "write-skew", "read-skew"):
        assert matrix[(workload, "serializable")]["anomaly_score"] == 0.0, workload

    # Isolation is bought with aborts, not luck: the transactional rows
    # under contention abort conflicting work.
    assert matrix[("lost-update", "snapshot")]["aborted"] > 0
    assert matrix[("write-skew", "serializable")]["aborted"] > 0

    # And with throughput: raw > transactional for every workload.
    for workload in ("lost-update", "write-skew", "read-skew"):
        assert (
            matrix[(workload, "raw")]["throughput"]
            > matrix[(workload, "snapshot")]["throughput"]
        ), workload
