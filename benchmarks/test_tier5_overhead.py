"""Tier 5 — transactional overhead per operation (§III-A).

Regenerates the inside/outside-transaction latency table: every CRUD/scan
operation measured on the raw path and the transactional path, plus the
START/COMMIT/ABORT bookkeeping operations, which are ~no-ops on the raw
path (Listing 3 shows ~0.08 us) and real work on the transactional one.
"""

from repro.harness import tier5_operation_overhead

from conftest import archive


def test_tier5_operation_overhead(benchmark):
    result = benchmark.pedantic(
        lambda: tier5_operation_overhead(quick=True), rounds=1, iterations=1
    )
    archive(result)

    rows = {row["operation"]: row for row in result.tables["operations"]}

    # Both modes record the plain and the TX- series: the client wraps
    # every workload call in start/commit even for a non-transactional
    # binding (no-op boundaries), exactly as Listing 3 shows TX-READ on
    # the raw WiredTiger run.
    for operation in ("READ", "UPDATE", "START", "COMMIT", "TX-READ"):
        assert operation in rows, f"missing {operation} row"
    assert rows["TX-READ"]["txn_count"] > 0
    assert rows["TX-READ"]["raw_count"] > 0

    # START/COMMIT are (near) no-ops raw, real work transactionally:
    # commits do the locking + apply, so they are orders of magnitude
    # slower than the raw no-op.
    assert rows["COMMIT"]["raw_avg_us"] < 1000  # no-op (+ scheduler noise)
    assert rows["COMMIT"]["txn_avg_us"] > rows["COMMIT"]["raw_avg_us"] * 10

    # Data-path reads cost about the same inside and outside transactions
    # (a snapshot read is still one store request).
    assert rows["READ"]["txn_avg_us"] < rows["READ"]["raw_avg_us"] * 3

    # The throughput table reports both modes, raw ahead.
    throughput = {row["mode"]: row for row in result.tables["throughput"]}
    assert throughput["raw"]["ops_sec"] > throughput["transactional"]["ops_sec"]
    # And only the transactional mode kept the invariant under contention.
    assert throughput["transactional"]["anomaly_score"] == 0.0
