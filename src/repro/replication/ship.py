"""Log shipping and anti-entropy.

The :class:`LogShipper` is the leader's replication engine: on every tick
it cuts each follower's pending log suffix (``records_since(acked)``),
ships it, and advances that follower's acked frontier from the response.
Empty shipments are heartbeats — they still carry the leader's
``(frontier_ts, leader_last_seq)`` cut, which is how an already-caught-up
follower's staleness keeps shrinking between writes.

Shipments of more than one record are sent in **two chunks** with the
``repl.mid_log_ship`` crashpoint between them, so a scheduled death
leaves the follower holding a strict prefix of the batch — the state the
conformance suite proves harmless: the chunk carries the *full* batch's
``leader_last_seq``, so a partial apply never advances the follower's
frontier, and anti-entropy resumes from the follower's acked seq.

Transport is pluggable: :class:`InProcessLink` calls a
:class:`~repro.replication.node.ReplicationNode` directly (virtual-time
suites), :class:`HttpReplLink` speaks ``POST /repl/*`` through
:meth:`~repro.http.client.HttpKVStore.post_json` (the campaign).  Both
raise the ordinary store error taxonomy, so the shipper treats a dead
follower the same way over either transport: mark it dead, keep shipping
to the others, and let :func:`anti_entropy` repair it on rejoin.
"""

from __future__ import annotations

import threading
from collections.abc import Mapping

from ..kvstore.base import StoreError, StoreUnavailable
from ..recovery.crashpoints import CrashError, crashpoint
from ..sim.clock import ambient_sleep
from .lease import LeaseError, LeaseTable
from .log import ReplicationRecord
from .node import NodeStatus, ReplicationNode

__all__ = [
    "InProcessLink",
    "HttpReplLink",
    "LogShipper",
    "anti_entropy",
    "rejoin_follower",
]


class InProcessLink:
    """A follower link that is just the node object."""

    def __init__(self, node: ReplicationNode):
        self.name = node.name
        self._node = node

    def status(self) -> NodeStatus:
        return self._node.status()

    def append(self, records, frontier_ts, leader_last_seq, term, leader) -> dict:
        return self._node.append_records(
            records, frontier_ts, leader_last_seq, term, leader
        )

    def records_since(self, seq: int, limit: int | None = None):
        return self._node.records_since(seq, limit)

    def resync(self, records, term, leader) -> dict:
        return self._node.resync_from(records, term, leader)


class HttpReplLink:
    """The same link surface over ``POST /repl/*``.

    A non-2xx/409 response or transport failure surfaces as
    :class:`StoreUnavailable`; a 409 is a protocol NACK and comes back as
    the decoded response document, mirroring the in-process node.
    """

    def __init__(self, name: str, client):
        self.name = name
        self._client = client  # an HttpKVStore (post_json escape hatch)

    def _post(self, verb: str, body: dict) -> dict:
        status, document = self._client.post_json(f"/repl/{verb}", body)
        if status not in (200, 409) or document is None:
            raise StoreUnavailable(f"/repl/{verb} on {self.name!r}: HTTP {status}")
        return document

    def status(self) -> NodeStatus:
        return NodeStatus.from_wire(self._post("status", {}))

    def append(self, records, frontier_ts, leader_last_seq, term, leader) -> dict:
        return self._post(
            "append",
            {
                "records": [r.to_wire() for r in records],
                "frontier_ts": frontier_ts,
                "leader_last_seq": leader_last_seq,
                "term": term,
                "leader": leader,
            },
        )

    def records_since(self, seq: int, limit: int | None = None):
        document = self._post("since", {"seq": seq, "limit": limit})
        return (
            [ReplicationRecord.from_wire(r) for r in document["records"]],
            float(document["frontier_ts"]),
            int(document["leader_last_seq"]),
            int(document["term"]),
        )

    def resync(self, records, term, leader) -> dict:
        return self._post(
            "resync",
            {"records": [r.to_wire() for r in records], "term": term, "leader": leader},
        )


class LogShipper:
    """Ships the leader's log to every follower, forever or until stopped.

    One shipper per leadership regime: it renews the leader's lease each
    tick (when a :class:`LeaseTable` is attached) and dies — like the
    process it models — on a scheduled :class:`CrashError`, leaving
    ``crashed`` set for the harness to observe.
    """

    def __init__(
        self,
        leader: ReplicationNode,
        links: Mapping[str, object],
        interval_s: float = 0.05,
        lease: LeaseTable | None = None,
        batch_limit: int | None = None,
    ):
        self._leader = leader
        self._links = dict(links)
        self._interval_s = interval_s
        self._lease = lease
        self._batch_limit = batch_limit
        self._acked: dict[str, int] = {}
        self._lock = threading.Lock()
        #: followers currently unreachable (transport failures).
        self.dead: set[str] = set()
        #: set when a scheduled crash killed the shipper itself.
        self.crashed = False
        self.lease_lost = False
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def leader(self) -> ReplicationNode:
        return self._leader

    @property
    def interval_s(self) -> float:
        return self._interval_s

    def acked(self) -> dict[str, int]:
        with self._lock:
            return dict(self._acked)

    def add_follower(self, name: str, link) -> None:
        with self._lock:
            self._links[name] = link
            self._acked.pop(name, None)
        self.dead.discard(name)

    def remove_follower(self, name: str) -> None:
        with self._lock:
            self._links.pop(name, None)
            self._acked.pop(name, None)
        self.dead.discard(name)

    def revive_follower(self, name: str) -> None:
        """Forget a follower's dead mark (it rejoined); re-learn its ack."""
        self.dead.discard(name)
        with self._lock:
            self._acked.pop(name, None)

    # -- one tick --------------------------------------------------------------

    def ship_once(self) -> dict[str, int]:
        """Ship every follower's pending suffix; returns acked seqs.

        A follower that fails at the transport level is marked ``dead``
        and skipped on later ticks until :meth:`revive_follower`.  A
        scheduled mid-ship crash (:class:`CrashError`) kills the whole
        shipper — it propagates after ``crashed`` is set.
        """
        with self._lock:
            links = [
                (name, link) for name, link in self._links.items()
                if name not in self.dead
            ]
        for name, link in links:
            try:
                self._ship_follower(name, link)
            except CrashError as crash:
                if crash.point == "repl.mid_follower_apply":
                    # In-process transport: the *follower* died mid-apply
                    # (over HTTP its server flips to crashed and this
                    # arrives as StoreUnavailable instead).  The shipper
                    # survives and keeps serving the other followers.
                    self.dead.add(name)
                    continue
                self.crashed = True
                raise
            except StoreError:
                self.dead.add(name)
        return self.acked()

    def _ship_follower(self, name: str, link) -> None:
        with self._lock:
            acked = self._acked.get(name)
        if acked is None:
            acked = link.status().applied_seq
        records, frontier_ts, last_seq, term = self._leader.records_since(
            acked, self._batch_limit
        )
        if len(records) > 1:
            # Two chunks with a schedulable death between them: a crash
            # leaves the follower holding a strict prefix of the batch.
            middle = len(records) // 2
            chunks = [records[:middle], records[middle:]]
        else:
            chunks = [records]
        for index, chunk in enumerate(chunks):
            if index > 0:
                crashpoint("repl.mid_log_ship")
            response = link.append(chunk, frontier_ts, last_seq, term, self._leader.name)
            with self._lock:
                self._acked[name] = int(response["applied_seq"])
            if not response.get("ok", False):
                return  # NACK (gap or stale term): rewind next tick

    # -- the loop --------------------------------------------------------------

    def run(self, stop: threading.Event | None = None) -> None:
        """Ship every ``interval_s`` until ``stop`` is set.

        Usable as a wall-clock thread target *and* as a virtual-time sim
        task — the sleep is ambient, and the stop flag is checked after
        every sleep so a sim run terminates cleanly.
        """
        stop = stop or self._stop
        while not stop.is_set():
            if self._lease is not None:
                try:
                    self._lease.renew(self._leader.name)
                except LeaseError:
                    self.lease_lost = True
                    return
            try:
                self.ship_once()
            except CrashError:
                return  # the shipper "process" is dead; crashed already set
            ambient_sleep(self._interval_s)

    def start(self) -> "LogShipper":
        if self._thread is not None:
            raise RuntimeError("shipper already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self.run, name=f"log-shipper-{self._leader.name}", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None


def _as_link(endpoint):
    """Accept either a link or a bare node everywhere repair code runs."""
    return InProcessLink(endpoint) if isinstance(endpoint, ReplicationNode) else endpoint


def anti_entropy(source, target, batch: int = 64) -> int:
    """Pull ``target`` up to ``source``'s log; returns records transferred.

    ``source``/``target`` are links or bare :class:`ReplicationNode`
    objects.  Idempotent: running it twice transfers nothing the second
    time and leaves identical state, which the property tests assert
    directly.
    """
    source, target = _as_link(source), _as_link(target)
    moved = 0
    while True:
        applied = target.status().applied_seq
        records, frontier_ts, last_seq, term = source.records_since(applied, batch)
        leader = getattr(source, "name", "anti-entropy")
        response = target.append(records, frontier_ts, last_seq, term, leader)
        if not response.get("ok", False):
            raise StoreUnavailable(
                f"anti-entropy NACKed by {getattr(target, 'name', target)!r}: "
                f"{response.get('reason')}"
            )
        moved += max(0, int(response["applied_seq"]) - applied)
        if int(response["applied_seq"]) >= last_seq:
            return moved


def rejoin_follower(leader, rejoiner) -> dict:
    """Bring a returning node back into the replica set.

    If the rejoiner's log is still a prefix of the leader's history
    (clean failover, or a follower that merely fell behind), ordinary
    anti-entropy finishes the catch-up.  If it *diverged* — it holds an
    unshipped suffix from a dead regime that an unclean failover
    superseded — the suffix cannot be kept: the node is fully resynced
    from the leader's log.  Returns ``{"mode": "catch-up"|"resync",
    "records": n}``.
    """
    leader, rejoiner = _as_link(leader), _as_link(rejoiner)
    status = rejoiner.status()
    diverged = False
    if status.applied_seq > 0:
        # What does the leader hold at the rejoiner's last applied seq?
        tail, _, last_seq, _ = leader.records_since(status.applied_seq - 1, 1)
        leader_record = tail[0] if tail else None
        own_tail, _, _, _ = rejoiner.records_since(status.applied_seq - 1, 1)
        own_record = own_tail[0] if own_tail else None
        diverged = (
            status.applied_seq > last_seq
            or leader_record is None
            or own_record is None
            or leader_record != own_record
        )
    if diverged:
        records, _, _, term = leader.records_since(0)
        leader_name = getattr(leader, "name", "leader")
        rejoiner.resync(records, term, leader_name)
        return {"mode": "resync", "records": len(records)}
    moved = anti_entropy(leader, rejoiner)
    return {"mode": "catch-up", "records": moved}
