"""The replication log: the unit of truth a leader ships to followers.

Every write a leader accepts becomes one :class:`ReplicationRecord` with a
**contiguous, store-wide sequence number** assigned under the leader's
lock.  Per-key versions cannot order a replication stream — they restart
at 1 after a delete+reinsert — so ``seq`` is the stream's total order and
``version`` is carried alongside purely so followers can mirror the
leader's per-key ETags exactly (via ``put_versioned``).

A follower's log is always a *prefix* of its leader's log (the property
tests in ``tests/replication`` enforce this literally): followers apply
records strictly in ``seq`` order, acknowledge the highest contiguous
``seq`` applied, and NACK gaps so the shipper rewinds.  ``term``
identifies the leadership regime that produced a record; after a
failover the new leader appends under a higher term, which is how a
rejoining stale leader detects that its unshipped suffix has been
superseded and must be discarded.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from pathlib import Path

from ..kvstore.base import Fields
from ..kvstore.lsm.wal import WalRecord, WriteAheadLog

__all__ = ["ReplicationRecord", "ReplicationLog", "DurableReplicationLog"]


@dataclass(frozen=True, slots=True)
class ReplicationRecord:
    """One logged write: a put (``value`` set) or a delete (``value=None``).

    ``stamped_at`` is the leader's clock at append time — anti-entropy and
    staleness accounting use the *frontier* timestamps shipped alongside
    batches, but the per-record stamp makes traces self-describing.
    """

    seq: int
    term: int
    key: str
    value: Fields | None
    version: int
    stamped_at: float

    def to_wire(self) -> dict:
        return {
            "seq": self.seq,
            "term": self.term,
            "key": self.key,
            "value": self.value,
            "version": self.version,
            "stamped_at": self.stamped_at,
        }

    @classmethod
    def from_wire(cls, document: dict) -> "ReplicationRecord":
        value = document["value"]
        return cls(
            seq=int(document["seq"]),
            term=int(document["term"]),
            key=document["key"],
            value=None if value is None else dict(value),
            version=int(document["version"]),
            stamped_at=float(document["stamped_at"]),
        )


class ReplicationLog:
    """An append-only, seq-contiguous record list.

    Thread-safe; the owning node's lock serialises *which* records get
    appended, this lock only protects the list itself (status probes read
    it from other threads).
    """

    def __init__(self) -> None:
        self._records: list[ReplicationRecord] = []
        self._lock = threading.Lock()

    @property
    def last_seq(self) -> int:
        with self._lock:
            return self._records[-1].seq if self._records else 0

    @property
    def last_term(self) -> int:
        with self._lock:
            return self._records[-1].term if self._records else 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def append(
        self,
        term: int,
        key: str,
        value: Fields | None,
        version: int,
        stamped_at: float,
    ) -> ReplicationRecord:
        """Assign the next ``seq`` and append; returns the new record."""
        with self._lock:
            seq = (self._records[-1].seq if self._records else 0) + 1
            record = ReplicationRecord(seq, term, key, value, version, stamped_at)
            self._records.append(record)
            return record

    def append_record(self, record: ReplicationRecord) -> None:
        """Append an already-sequenced record (the follower apply path)."""
        with self._lock:
            last = self._records[-1].seq if self._records else 0
            if record.seq != last + 1:
                raise ValueError(
                    f"log append out of order: have seq {last}, got {record.seq}"
                )
            self._records.append(record)

    def since(self, seq: int, limit: int | None = None) -> list[ReplicationRecord]:
        """Records with ``seq`` strictly greater than the given one.

        The log is seq-contiguous from 1, so the suffix is an index slice.
        """
        with self._lock:
            start = max(0, seq)
            suffix = self._records[start:]
            return suffix[:limit] if limit is not None else list(suffix)

    def record_at(self, seq: int) -> ReplicationRecord | None:
        """The record with exactly this ``seq``, or None past the end."""
        with self._lock:
            index = seq - 1
            if index < 0 or index >= len(self._records):
                return None
            return self._records[index]

    def snapshot(self) -> list[ReplicationRecord]:
        with self._lock:
            return list(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()


class DurableReplicationLog(ReplicationLog):
    """A replication log whose records survive process death.

    Backed by the PR-5 :class:`~repro.kvstore.lsm.wal.WriteAheadLog`: each
    record is one fsync-ed JSONL line (``op="repl"``, the wire form of the
    record in the value), appended **before** the in-memory list so a
    crash can never acknowledge a record the disk does not hold.  The
    ``wal.mid_append`` crashpoint therefore applies here too — a death
    mid-append leaves a torn tail with no trailing newline, which reopen
    truncates (the coordinator-WAL pattern) before replaying the intact
    prefix.

    This is what turns a follower restart from a full resync into a
    catch-up: a :class:`~repro.replication.node.ReplicationNode` handed a
    reopened durable log rebuilds its store and ``applied_seq`` from the
    replayed prefix, and anti-entropy only ships the missing suffix.
    """

    def __init__(self, path: str | Path, sync_writes: bool = True):
        super().__init__()
        self._path = Path(path)
        self._truncate_torn_tail()
        self._wal = WriteAheadLog(self._path, sync_writes=sync_writes)
        self._durable_lock = threading.Lock()
        for wal_record in self._wal.replay():
            record = ReplicationRecord.from_wire(
                json.loads(wal_record.value["record"])
            )
            super().append_record(record)

    @property
    def path(self) -> Path:
        return self._path

    def _truncate_torn_tail(self) -> None:
        """Drop a half-written final line so appends start on a boundary."""
        try:
            if self._path.stat().st_size == 0:
                return
        except FileNotFoundError:
            return
        with open(self._path, "rb+") as handle:
            data = handle.read()
            if data.endswith(b"\n"):
                return
            handle.truncate(data.rfind(b"\n") + 1)

    def _persist(self, record: ReplicationRecord) -> None:
        self._wal.append(
            WalRecord(
                sequence=record.seq,
                op="repl",
                key=record.key,
                value={
                    "record": json.dumps(record.to_wire(), separators=(",", ":"))
                },
            )
        )

    def append(
        self,
        term: int,
        key: str,
        value: Fields | None,
        version: int,
        stamped_at: float,
    ) -> ReplicationRecord:
        with self._durable_lock:
            record = ReplicationRecord(
                self.last_seq + 1, term, key, value, version, stamped_at
            )
            self._persist(record)
            super().append_record(record)
            return record

    def append_record(self, record: ReplicationRecord) -> None:
        with self._durable_lock:
            if record.seq != self.last_seq + 1:
                raise ValueError(
                    f"log append out of order: have seq {self.last_seq}, "
                    f"got {record.seq}"
                )
            self._persist(record)
            super().append_record(record)

    def clear(self) -> None:
        with self._durable_lock:
            super().clear()
            self._wal.truncate()

    def close(self) -> None:
        self._wal.close()
