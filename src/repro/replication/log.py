"""The replication log: the unit of truth a leader ships to followers.

Every write a leader accepts becomes one :class:`ReplicationRecord` with a
**contiguous, store-wide sequence number** assigned under the leader's
lock.  Per-key versions cannot order a replication stream — they restart
at 1 after a delete+reinsert — so ``seq`` is the stream's total order and
``version`` is carried alongside purely so followers can mirror the
leader's per-key ETags exactly (via ``put_versioned``).

A follower's log is always a *prefix* of its leader's log (the property
tests in ``tests/replication`` enforce this literally): followers apply
records strictly in ``seq`` order, acknowledge the highest contiguous
``seq`` applied, and NACK gaps so the shipper rewinds.  ``term``
identifies the leadership regime that produced a record; after a
failover the new leader appends under a higher term, which is how a
rejoining stale leader detects that its unshipped suffix has been
superseded and must be discarded.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..kvstore.base import Fields

__all__ = ["ReplicationRecord", "ReplicationLog"]


@dataclass(frozen=True, slots=True)
class ReplicationRecord:
    """One logged write: a put (``value`` set) or a delete (``value=None``).

    ``stamped_at`` is the leader's clock at append time — anti-entropy and
    staleness accounting use the *frontier* timestamps shipped alongside
    batches, but the per-record stamp makes traces self-describing.
    """

    seq: int
    term: int
    key: str
    value: Fields | None
    version: int
    stamped_at: float

    def to_wire(self) -> dict:
        return {
            "seq": self.seq,
            "term": self.term,
            "key": self.key,
            "value": self.value,
            "version": self.version,
            "stamped_at": self.stamped_at,
        }

    @classmethod
    def from_wire(cls, document: dict) -> "ReplicationRecord":
        value = document["value"]
        return cls(
            seq=int(document["seq"]),
            term=int(document["term"]),
            key=document["key"],
            value=None if value is None else dict(value),
            version=int(document["version"]),
            stamped_at=float(document["stamped_at"]),
        )


class ReplicationLog:
    """An append-only, seq-contiguous record list.

    Thread-safe; the owning node's lock serialises *which* records get
    appended, this lock only protects the list itself (status probes read
    it from other threads).
    """

    def __init__(self) -> None:
        self._records: list[ReplicationRecord] = []
        self._lock = threading.Lock()

    @property
    def last_seq(self) -> int:
        with self._lock:
            return self._records[-1].seq if self._records else 0

    @property
    def last_term(self) -> int:
        with self._lock:
            return self._records[-1].term if self._records else 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def append(
        self,
        term: int,
        key: str,
        value: Fields | None,
        version: int,
        stamped_at: float,
    ) -> ReplicationRecord:
        """Assign the next ``seq`` and append; returns the new record."""
        with self._lock:
            seq = (self._records[-1].seq if self._records else 0) + 1
            record = ReplicationRecord(seq, term, key, value, version, stamped_at)
            self._records.append(record)
            return record

    def append_record(self, record: ReplicationRecord) -> None:
        """Append an already-sequenced record (the follower apply path)."""
        with self._lock:
            last = self._records[-1].seq if self._records else 0
            if record.seq != last + 1:
                raise ValueError(
                    f"log append out of order: have seq {last}, got {record.seq}"
                )
            self._records.append(record)

    def since(self, seq: int, limit: int | None = None) -> list[ReplicationRecord]:
        """Records with ``seq`` strictly greater than the given one.

        The log is seq-contiguous from 1, so the suffix is an index slice.
        """
        with self._lock:
            start = max(0, seq)
            suffix = self._records[start:]
            return suffix[:limit] if limit is not None else list(suffix)

    def record_at(self, seq: int) -> ReplicationRecord | None:
        """The record with exactly this ``seq``, or None past the end."""
        with self._lock:
            index = seq - 1
            if index < 0 or index >= len(self._records):
                return None
            return self._records[index]

    def snapshot(self) -> list[ReplicationRecord]:
        with self._lock:
            return list(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
