"""The virtual-time consistency probe: one seeded, deterministic run.

:func:`run_probe` drives an :class:`~repro.replication.cluster.
InProcessReplicaSet` under the PR-4 scheduler: N session tasks issue a
seeded mix of unique-marker writes and reads through a
:class:`~repro.replication.routed.ReplicaRoutedStore` at one consistency
level, while the leader's :class:`~repro.replication.ship.LogShipper`
runs as its own task at the configured shipping interval (the
replication *lag* knob).  Every operation is atomic in virtual time, so
the recorded :class:`~repro.replication.history.History` is exact and
the run is a pure function of the seed — the conformance suite asserts
per-level guarantees on it, and the ``consistency_frontier`` experiment
sweeps it across lag × level.

Crash schedules (``repl.mid_log_ship`` / ``repl.mid_follower_apply``)
are armed only for the run phase, exactly like the crash campaign: the
load phase must not die.  After the run the injector is disarmed and —
when ``repair=True`` — dead followers are rejoined via anti-entropy and
the set is flushed, so the result reports whether recovery converged
(``followers_prefix_ok`` / ``followers_caught_up``).
"""

from __future__ import annotations

import random
import threading
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from ..recovery.crashpoints import CrashInjector, use_crash_injector
from ..sim.clock import use_clock
from ..sim.scheduler import Scheduler, SimClock
from .cluster import InProcessReplicaSet
from .history import ConformanceReport, History
from .routed import ConsistencyLevel, ReplicaSession

__all__ = ["ProbeResult", "run_probe"]


@dataclass
class ProbeResult:
    level: str
    seed: int
    ship_interval_s: float
    staleness_bound_s: float
    report: ConformanceReport
    counters: dict[str, int] = field(default_factory=dict)
    shipper_crashed: bool = False
    dead_followers: list[str] = field(default_factory=list)
    repaired: bool = False
    followers_prefix_ok: bool = True
    followers_caught_up: bool = True
    leader_log_len: int = 0
    virtual_elapsed_s: float = 0.0

    @property
    def follower_read_fraction(self) -> float:
        reads = self.report.reads_by_source
        total = sum(reads.values())
        return reads.get("follower", 0) / total if total else 0.0


def _check_bound(level: ConsistencyLevel, staleness_bound_s: float) -> float | None:
    """Which staleness bound the history checker should enforce."""
    if level is ConsistencyLevel.STRONG:
        return 0.0
    if level is ConsistencyLevel.QUORUM:
        return 0.0  # read quorum intersects write quorum: no stale reads
    if level is ConsistencyLevel.BOUNDED_STALENESS:
        return staleness_bound_s
    return None  # read_your_writes promises session order, not freshness


def run_probe(
    seed: int,
    level: ConsistencyLevel | str = ConsistencyLevel.STRONG,
    ship_interval_s: float = 0.02,
    staleness_bound_s: float = 0.3,
    sessions: int = 4,
    ops_per_session: int = 100,
    key_count: int = 8,
    write_fraction: float = 0.3,
    mean_think_s: float = 0.01,
    follower_count: int = 2,
    crash_schedule: Mapping[str, int | Iterable[int]] | None = None,
    repair: bool = True,
) -> ProbeResult:
    """One deterministic probe run; see the module docstring."""
    if isinstance(level, str):
        level = ConsistencyLevel(level)
    if ship_interval_s <= 0:
        raise ValueError(f"ship_interval_s must be > 0, got {ship_interval_s}")
    scheduler = Scheduler()
    clock = SimClock(scheduler)
    history = History()
    keys = [f"key{index:04d}" for index in range(key_count)]

    with use_clock(clock):
        replica_set = InProcessReplicaSet(
            follower_count=follower_count,
            lease_duration_s=max(1.0, ship_interval_s * 20),
            ship_interval_s=ship_interval_s,
            clock=clock.now,
            seed=seed,
        )

        # -- load phase (driver-side, crashpoints disarmed) -------------------
        loader = replica_set.routed(
            ConsistencyLevel.STRONG, session=ReplicaSession(), rng=random.Random(seed)
        )
        for key in keys:
            marker = history.next_marker()
            loader.put(key, {"marker": str(marker)})
            history.note_write("load", key, marker, clock.monotonic())
        replica_set.flush()

        # -- run phase ---------------------------------------------------------
        stop = threading.Event()
        live_sessions = [sessions]
        session_lock = threading.Lock()
        routed_stores = []

        def session_fn(index: int):
            name = f"s{index}"
            rng = random.Random(seed * 1_000_003 + index)
            routed = replica_set.routed(
                level,
                staleness_bound_s=staleness_bound_s,
                session=ReplicaSession(),
                rng=random.Random(seed * 7_919 + index),
            )
            routed_stores.append(routed)

            def follower_reads() -> int:
                return routed.counters().get("REPL-FOLLOWER-READS", 0)

            for _ in range(ops_per_session):
                scheduler.sleep(rng.expovariate(1.0 / mean_think_s))
                key = keys[rng.randrange(len(keys))]
                if rng.random() < write_fraction:
                    marker = history.next_marker()
                    routed.put(key, {"marker": str(marker)})
                    history.note_write(name, key, marker, clock.monotonic())
                else:
                    before = follower_reads()
                    value = routed.get(key)
                    source = "follower" if follower_reads() > before else "leader"
                    marker = None if value is None else int(value["marker"])
                    history.note_read(name, key, marker, clock.monotonic(), source)
            with session_lock:
                live_sessions[0] -= 1
                if live_sessions[0] == 0:
                    stop.set()

        tasks = [lambda: replica_set.shipper.run(stop)]
        names = ["shipper"]
        for index in range(sessions):
            tasks.append(lambda index=index: session_fn(index))
            names.append(f"session-{index}")

        injector = CrashInjector(crash_schedule or {})
        with use_crash_injector(injector):
            scheduler.run(tasks, names)

        # -- repair phase (disarmed again) ------------------------------------
        result = ProbeResult(
            level=level.value,
            seed=seed,
            ship_interval_s=ship_interval_s,
            staleness_bound_s=staleness_bound_s,
            report=history.check(_check_bound(level, staleness_bound_s)),
            shipper_crashed=replica_set.shipper.crashed,
            dead_followers=sorted(replica_set.shipper.dead),
            virtual_elapsed_s=clock.monotonic(),
        )
        if repair:
            for name in list(replica_set.shipper.dead):
                replica_set.rejoin(name)
            replica_set.flush()
            result.repaired = True
        leader = replica_set.leader_node
        leader_log = leader.log.snapshot()
        result.leader_log_len = len(leader_log)
        for name, node in replica_set.nodes.items():
            if node is leader:
                continue
            follower_log = node.log.snapshot()
            if follower_log != leader_log[: len(follower_log)]:
                result.followers_prefix_ok = False
            if len(follower_log) != len(leader_log):
                result.followers_caught_up = False
        counters: dict[str, int] = {}
        for routed in routed_stores:
            for counter, count in routed.counters().items():
                counters[counter] = counters.get(counter, 0) + count
        result.counters = counters
        return result
