"""A deterministic history checker for replicated reads.

The conformance suite's oracle.  Workloads write **unique markers** (one
fresh integer per write), so every read's answer identifies exactly which
write it observed; under the cooperative scheduler each operation is
atomic in virtual time, so the recorded history is the *true* history —
no happened-before ambiguity, no coordinated-omission fudge.

Recorded events carry a global operation index (``idx``, assignment
order == real time order) and the virtual timestamp.  The checks:

read-your-writes
    a session's read of ``k`` must observe its own latest earlier write
    to ``k`` or anything newer (by per-key write order).
monotonic reads
    per (session, key), the observed write index never goes backwards;
    observing *absence* after observing a write is a violation (the
    probe workloads are delete-free, so keys never legitimately vanish).
bounded staleness
    a read at time ``t`` must observe at least the newest write acked
    strictly before ``t - bound``.  ``bound=0`` is the strong check:
    every earlier write is visible.
staleness (anomaly) score
    the fraction of reads that did **not** observe the newest write
    acked before them — the Tier-6-style consistency score for the read
    dimension: 0 by construction at ``strong``, positive and seed-stable
    for lagged follower reads.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["ReadObservation", "WriteRecord", "ConformanceReport", "History"]


@dataclass(frozen=True, slots=True)
class WriteRecord:
    idx: int
    session: str
    key: str
    marker: int
    at: float


@dataclass(frozen=True, slots=True)
class ReadObservation:
    idx: int
    session: str
    key: str
    marker: int | None  # None: key observed absent
    at: float
    source: str  # "leader" | "follower" (routing attribution for reports)


@dataclass
class ConformanceReport:
    """Everything the conformance suite asserts on."""

    reads: int = 0
    writes: int = 0
    stale_reads: int = 0
    anomaly_score: float = 0.0
    bound_s: float | None = None
    ryw_violations: list[dict] = field(default_factory=list)
    monotonic_violations: list[dict] = field(default_factory=list)
    bounded_violations: list[dict] = field(default_factory=list)
    reads_by_source: dict[str, int] = field(default_factory=dict)

    @property
    def violation_count(self) -> int:
        return (
            len(self.ryw_violations)
            + len(self.monotonic_violations)
            + len(self.bounded_violations)
        )

    def to_dict(self) -> dict:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "stale_reads": self.stale_reads,
            "anomaly_score": self.anomaly_score,
            "bound_s": self.bound_s,
            "ryw_violations": list(self.ryw_violations),
            "monotonic_violations": list(self.monotonic_violations),
            "bounded_violations": list(self.bounded_violations),
            "reads_by_source": dict(self.reads_by_source),
        }


class History:
    """Append-only event history plus the checks over it."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._next_idx = 0
        self._next_marker = 0
        self.writes: list[WriteRecord] = []
        self.reads: list[ReadObservation] = []
        self._writes_by_key: dict[str, list[WriteRecord]] = {}
        self._write_by_marker: dict[int, WriteRecord] = {}

    # -- recording -------------------------------------------------------------

    def next_marker(self) -> int:
        with self._lock:
            marker = self._next_marker
            self._next_marker += 1
            return marker

    def note_write(self, session: str, key: str, marker: int, at: float) -> WriteRecord:
        """Record a write *after* it was acknowledged."""
        with self._lock:
            record = WriteRecord(self._next_idx, session, key, marker, at)
            self._next_idx += 1
            self.writes.append(record)
            self._writes_by_key.setdefault(key, []).append(record)
            self._write_by_marker[marker] = record
            return record

    def note_read(
        self, session: str, key: str, marker: int | None, at: float, source: str
    ) -> ReadObservation:
        with self._lock:
            observation = ReadObservation(self._next_idx, session, key, marker, at, source)
            self._next_idx += 1
            self.reads.append(observation)
            return observation

    # -- checking --------------------------------------------------------------

    def _observed_write(self, read: ReadObservation) -> WriteRecord | None:
        if read.marker is None:
            return None
        return self._write_by_marker.get(read.marker)

    def check(self, bound_s: float | None = None) -> ConformanceReport:
        """Run every check; ``bound_s`` enables the staleness-bound check.

        ``bound_s=0`` is the strong-consistency check; None skips the
        bound check entirely (the level promises no freshness).
        """
        report = ConformanceReport(
            reads=len(self.reads), writes=len(self.writes), bound_s=bound_s
        )
        last_write_by_session: dict[tuple[str, str], WriteRecord] = {}
        last_observed_idx: dict[tuple[str, str], int] = {}
        events: list[tuple[int, str, object]] = [
            *((w.idx, "w", w) for w in self.writes),
            *((r.idx, "r", r) for r in self.reads),
        ]
        events.sort(key=lambda item: item[0])

        for _, kind, event in events:
            if kind == "w":
                last_write_by_session[(event.session, event.key)] = event
                continue
            read: ReadObservation = event
            observed = self._observed_write(read)
            observed_idx = observed.idx if observed is not None else -1
            report.reads_by_source[read.source] = (
                report.reads_by_source.get(read.source, 0) + 1
            )

            # Freshness score: did it miss the newest earlier write?
            key_writes = self._writes_by_key.get(read.key, [])
            newest = None
            for write in reversed(key_writes):
                if write.idx < read.idx:
                    newest = write
                    break
            if newest is not None and observed_idx < newest.idx:
                report.stale_reads += 1

            # Read-your-writes.
            own = last_write_by_session.get((read.session, read.key))
            if own is not None and observed_idx < own.idx:
                report.ryw_violations.append(
                    {
                        "session": read.session,
                        "key": read.key,
                        "at": read.at,
                        "own_write_idx": own.idx,
                        "observed_idx": observed_idx,
                        "source": read.source,
                    }
                )

            # Monotonic reads.
            previous = last_observed_idx.get((read.session, read.key))
            if previous is not None and observed_idx < previous:
                report.monotonic_violations.append(
                    {
                        "session": read.session,
                        "key": read.key,
                        "at": read.at,
                        "previous_idx": previous,
                        "observed_idx": observed_idx,
                        "source": read.source,
                    }
                )
            last_observed_idx[(read.session, read.key)] = observed_idx

            # Bounded staleness.
            if bound_s is not None:
                horizon = read.at - bound_s
                must_see = None
                for write in reversed(key_writes):
                    if write.idx < read.idx and write.at < horizon:
                        must_see = write
                        break
                if must_see is not None and observed_idx < must_see.idx:
                    report.bounded_violations.append(
                        {
                            "session": read.session,
                            "key": read.key,
                            "at": read.at,
                            "bound_s": bound_s,
                            "required_idx": must_see.idx,
                            "observed_idx": observed_idx,
                            "source": read.source,
                        }
                    )

        report.anomaly_score = (
            report.stale_reads / report.reads if report.reads else 0.0
        )
        return report
