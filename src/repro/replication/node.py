"""A replication node: one store + one log + a role.

The same :class:`ReplicationNode` object is both sides of the protocol:

* As **leader** it accepts writes (``leader_put`` & co.), applies them to
  its store and appends a :class:`~repro.replication.log.ReplicationRecord`
  to its log *atomically* under one lock, so the log is always an exact
  history of the store.
* As **follower** it accepts shipped batches (:meth:`append_records`),
  applying records strictly in ``seq`` order — idempotently skipping
  already-applied seqs, NACKing gaps — and mirrors the leader's per-key
  versions exactly (delete + ``put_versioned``), so a follower read
  carries the same ETag the leader would have served.

Freshness accounting: each shipped batch carries the leader-clock
``frontier_ts`` at which the batch was cut and the leader's
``leader_last_seq`` at that instant.  A follower adopts the frontier only
once it has applied *everything up to that seq* — holding a prefix of a
batch must not make a node look fresh.  ``staleness_s`` is then simply
``now - frontier_ts`` (one process, one clock; documented in
docs/REPLICATION.md).

Deaths: ``repl.mid_follower_apply`` fires before each record apply, so a
scheduled :class:`~repro.recovery.crashpoints.CrashError` leaves the
node holding a strict prefix of the batch with store, log and
``applied_seq`` mutually consistent — exactly the state anti-entropy
must be able to resume from.

The node is transport-neutral: in-process callers invoke methods
directly; :func:`ReplicationNode.handle_repl` adapts the same methods to
the ``POST /repl/<verb>`` wire protocol served by
:class:`~repro.http.server.KVStoreHTTPServer`.
"""

from __future__ import annotations

import threading
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from enum import Enum

from ..kvstore.base import Fields, KeyValueStore, StoreError, VersionedValue
from ..kvstore.memory import InMemoryKVStore
from ..recovery.crashpoints import crashpoint
from ..sim.clock import ambient_now
from .log import ReplicationLog, ReplicationRecord

__all__ = [
    "NodeRole",
    "NodeStatus",
    "NotLeaderError",
    "ReplicationNode",
    "LeaderStoreAdapter",
]


class NodeRole(Enum):
    LEADER = "leader"
    FOLLOWER = "follower"


class NotLeaderError(StoreError):
    """A write reached a node that does not currently lead."""


@dataclass(frozen=True, slots=True)
class NodeStatus:
    """A point-in-time view of a node, cheap enough to poll per read."""

    name: str
    role: NodeRole
    term: int
    applied_seq: int
    last_seq: int
    frontier_ts: float | None

    def to_wire(self) -> dict:
        return {
            "name": self.name,
            "role": self.role.value,
            "term": self.term,
            "applied_seq": self.applied_seq,
            "last_seq": self.last_seq,
            "frontier_ts": self.frontier_ts,
        }

    @classmethod
    def from_wire(cls, document: dict) -> "NodeStatus":
        frontier = document.get("frontier_ts")
        return cls(
            name=document["name"],
            role=NodeRole(document["role"]),
            term=int(document["term"]),
            applied_seq=int(document["applied_seq"]),
            last_seq=int(document["last_seq"]),
            frontier_ts=None if frontier is None else float(frontier),
        )


class ReplicationNode:
    """One replica-set member: store + log + role, under one lock."""

    def __init__(
        self,
        name: str,
        store: KeyValueStore | None = None,
        role: NodeRole = NodeRole.FOLLOWER,
        term: int = 0,
        clock=ambient_now,
        log: ReplicationLog | None = None,
    ):
        self.name = name
        self._store = store if store is not None else InMemoryKVStore()
        self._log = log if log is not None else ReplicationLog()
        self._role = role
        self._term = term
        self._leader: str | None = name if role is NodeRole.LEADER else None
        self._applied_seq = 0
        self._frontier_ts: float | None = None
        self._clock = clock
        self._lock = threading.RLock()
        if len(self._log):
            self._restore_from_log()

    def _restore_from_log(self) -> None:
        """Rebuild volatile state from a reopened durable log.

        A restarted node's disk is its log (a
        :class:`~repro.replication.log.DurableReplicationLog` replayed
        from file): re-applying the prefix reconstructs the store exactly
        and sets ``applied_seq``, so rejoin ships only the missing suffix
        instead of resyncing from scratch.  The frontier stays unknown —
        a node that was down has unbounded staleness until the next
        shipment tells it otherwise.
        """
        for record in self._log.snapshot():
            self._apply(record)
            self._applied_seq = record.seq
        self._term = max(self._term, self._log.last_term)

    # -- introspection --------------------------------------------------------

    @property
    def store(self) -> KeyValueStore:
        """The node's durable store (read path; writes go through the log)."""
        return self._store

    @property
    def log(self) -> ReplicationLog:
        """The node's durable log (survives a process crash, like the store)."""
        return self._log

    @property
    def role(self) -> NodeRole:
        with self._lock:
            return self._role

    @property
    def term(self) -> int:
        with self._lock:
            return self._term

    @property
    def applied_seq(self) -> int:
        with self._lock:
            return self._applied_seq

    def status(self) -> NodeStatus:
        with self._lock:
            frontier = self._clock() if self._role is NodeRole.LEADER else self._frontier_ts
            return NodeStatus(
                name=self.name,
                role=self._role,
                term=self._term,
                applied_seq=self._applied_seq,
                last_seq=self._log.last_seq,
                frontier_ts=frontier,
            )

    def staleness_s(self) -> float | None:
        """How far behind the leader this node may be, in seconds.

        0 for a leader; None for a follower that has never heard a
        frontier (unknown staleness must read as *unbounded*, not fresh).
        """
        with self._lock:
            if self._role is NodeRole.LEADER:
                return 0.0
            if self._frontier_ts is None:
                return None
            return max(0.0, self._clock() - self._frontier_ts)

    # -- leader write path ----------------------------------------------------

    def _require_leader(self) -> None:
        if self._role is not NodeRole.LEADER:
            raise NotLeaderError(
                f"node {self.name!r} is a follower (term {self._term}); "
                f"current leader: {self._leader!r}"
            )

    def _append(self, key: str, value: Fields | None, version: int) -> ReplicationRecord:
        record = self._log.append(self._term, key, value, version, self._clock())
        self._applied_seq = record.seq
        return record

    def leader_put(self, key: str, value: Mapping[str, str]) -> int:
        with self._lock:
            self._require_leader()
            version = self._store.put(key, value)
            self._append(key, dict(value), version)
            return version

    def leader_put_if_version(
        self, key: str, value: Mapping[str, str], expected_version: int | None
    ) -> int | None:
        with self._lock:
            self._require_leader()
            version = self._store.put_if_version(key, value, expected_version)
            if version is not None:
                self._append(key, dict(value), version)
            return version

    def leader_put_versioned(self, key: str, versioned: VersionedValue) -> bool:
        with self._lock:
            self._require_leader()
            installed = self._store.put_versioned(key, versioned)
            if installed:
                self._append(key, dict(versioned.value), versioned.version)
            return installed

    def leader_delete(self, key: str) -> bool:
        with self._lock:
            self._require_leader()
            current = self._store.get_with_meta(key)
            existed = self._store.delete(key)
            if existed:
                # Tombstones carry removed_version + 1 (never 0) so the
                # per-key version sequence in the log stays monotonic up
                # to the delete; ``seq`` totally orders it regardless.
                self._append(key, None, current.version + 1)
            return existed

    def leader_delete_if_version(self, key: str, expected_version: int) -> bool | None:
        with self._lock:
            self._require_leader()
            result = self._store.delete_if_version(key, expected_version)
            if result is True:
                self._append(key, None, expected_version + 1)
            return result

    # -- log shipping (leader side) -------------------------------------------

    def records_since(
        self, seq: int, limit: int | None = None
    ) -> tuple[list[ReplicationRecord], float, int, int]:
        """``(records, frontier_ts, leader_last_seq, term)`` for a shipment.

        ``frontier_ts``/``leader_last_seq`` are cut atomically with the
        suffix: a receiver that applies through ``leader_last_seq`` has
        seen everything this node did up to ``frontier_ts``.
        """
        with self._lock:
            records = self._log.since(seq, limit)
            return records, self._clock(), self._log.last_seq, self._term

    # -- follower apply path --------------------------------------------------

    def append_records(
        self,
        records: Sequence[ReplicationRecord],
        frontier_ts: float,
        leader_last_seq: int,
        term: int,
        leader: str,
    ) -> dict:
        """Apply a shipped batch (possibly empty: a heartbeat).

        Returns ``{"ok", "applied_seq", "term"}``; ``ok=False`` NACKs a
        stale term or a gap, with ``applied_seq`` telling the shipper
        where to rewind to.
        """
        with self._lock:
            if term < self._term:
                return {"ok": False, "reason": "stale-term",
                        "applied_seq": self._applied_seq, "term": self._term}
            if term > self._term or self._role is NodeRole.LEADER:
                # A higher-term leader exists: step down / adopt it.
                self._role = NodeRole.FOLLOWER
                self._term = term
                self._leader = leader
            for record in records:
                if record.seq <= self._applied_seq:
                    continue  # idempotent replay
                if record.seq != self._applied_seq + 1:
                    return {"ok": False, "reason": "gap",
                            "applied_seq": self._applied_seq, "term": self._term}
                crashpoint("repl.mid_follower_apply")
                self._apply(record)
                self._log.append_record(record)
                self._applied_seq = record.seq
            if self._applied_seq >= leader_last_seq:
                # Caught up to the shipment's cut point: adopt its frontier.
                if self._frontier_ts is None or frontier_ts > self._frontier_ts:
                    self._frontier_ts = frontier_ts
            return {"ok": True, "applied_seq": self._applied_seq, "term": self._term}

    def _apply(self, record: ReplicationRecord) -> None:
        """Mirror one record, preserving the leader's exact version."""
        if record.value is None:
            self._store.delete(record.key)
        else:
            self._store.delete(record.key)
            self._store.put_versioned(
                record.key, VersionedValue(dict(record.value), record.version)
            )

    # -- role transitions ------------------------------------------------------

    def promote(self, term: int) -> None:
        """Become leader for ``term`` (must fence every earlier regime)."""
        with self._lock:
            if term <= self._term and self._role is not NodeRole.LEADER:
                raise ValueError(
                    f"promotion term {term} must exceed current term {self._term}"
                )
            self._role = NodeRole.LEADER
            self._term = term
            self._leader = self.name

    def demote(self, term: int, leader: str) -> None:
        """Step down and follow ``leader``; frontier resets to unknown."""
        with self._lock:
            self._role = NodeRole.FOLLOWER
            self._term = max(self._term, term)
            self._leader = leader
            self._frontier_ts = None

    def resync_from(
        self, records: Sequence[ReplicationRecord], term: int, leader: str
    ) -> dict:
        """Full resync: discard local state, adopt this exact history.

        The rejoin path for a node whose log *diverged* from the new
        leader's (an unclean failover superseded its unshipped suffix).
        """
        with self._lock:
            self._store.clear()
            self._log.clear()
            self._applied_seq = 0
            self._role = NodeRole.FOLLOWER
            self._term = term
            self._leader = leader
            self._frontier_ts = None
            for record in records:
                self._apply(record)
                self._log.append_record(record)
                self._applied_seq = record.seq
            return {"ok": True, "applied_seq": self._applied_seq, "term": self._term}

    # -- HTTP adapter ----------------------------------------------------------

    def handle_repl(self, verb: str, document: dict) -> tuple[int, dict]:
        """Dispatch one ``POST /repl/<verb>`` body; ``(status, payload)``.

        Raises ``KeyError``/``TypeError``/``ValueError`` on malformed
        documents (the server maps those to 400) and lets ``CrashError``
        escape (the server flips to crashed, like the 2PC verbs).
        """
        if verb == "status":
            return 200, self.status().to_wire()
        if verb == "append":
            result = self.append_records(
                [ReplicationRecord.from_wire(r) for r in document["records"]],
                float(document["frontier_ts"]),
                int(document["leader_last_seq"]),
                int(document["term"]),
                document["leader"],
            )
            return (200 if result["ok"] else 409), result
        if verb == "since":
            records, frontier_ts, last_seq, term = self.records_since(
                int(document["seq"]),
                None if document.get("limit") is None else int(document["limit"]),
            )
            return 200, {
                "records": [r.to_wire() for r in records],
                "frontier_ts": frontier_ts,
                "leader_last_seq": last_seq,
                "term": term,
            }
        if verb == "resync":
            result = self.resync_from(
                [ReplicationRecord.from_wire(r) for r in document["records"]],
                int(document["term"]),
                document["leader"],
            )
            return 200, result
        if verb == "promote":
            self.promote(int(document["term"]))
            return 200, self.status().to_wire()
        if verb == "demote":
            self.demote(int(document["term"]), document["leader"])
            return 200, self.status().to_wire()
        return 404, {"error": f"unknown repl verb {verb!r}"}


class LeaderStoreAdapter(KeyValueStore):
    """The node's store surface: every write goes through the log.

    This is what a leader's HTTP server serves as its ``kv_store``, so
    ordinary REST clients replicate without knowing it — and what the
    router hands out as the leader handle in-process.  Reads come straight
    from the node's store; writes call the ``leader_*`` methods and raise
    :class:`NotLeaderError` after a demotion.
    """

    def __init__(self, node: ReplicationNode):
        self._node = node

    @property
    def node(self) -> ReplicationNode:
        return self._node

    # -- reads (leader-local) -------------------------------------------------

    def get_with_meta(self, key: str) -> VersionedValue | None:
        return self._node.store.get_with_meta(key)

    def scan(self, start_key: str, record_count: int) -> list[tuple[str, Fields]]:
        return self._node.store.scan(start_key, record_count)

    def keys(self):
        return iter(list(self._node.store.keys()))

    def size(self) -> int:
        return self._node.store.size()

    # -- writes (logged) ------------------------------------------------------

    def put(self, key: str, value: Mapping[str, str]) -> int:
        return self._node.leader_put(key, value)

    def put_if_version(
        self, key: str, value: Mapping[str, str], expected_version: int | None
    ) -> int | None:
        return self._node.leader_put_if_version(key, value, expected_version)

    def put_versioned(self, key: str, versioned: VersionedValue) -> bool:
        return self._node.leader_put_versioned(key, versioned)

    def put_batch(self, records: Sequence[tuple[str, Mapping[str, str]]]) -> list[int]:
        return [self._node.leader_put(key, value) for key, value in records]

    def delete(self, key: str) -> bool:
        return self._node.leader_delete(key)

    def delete_if_version(self, key: str, expected_version: int) -> bool | None:
        return self._node.leader_delete_if_version(key, expected_version)
