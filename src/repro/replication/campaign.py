"""Replication campaigns: kill the leader mid-run, fail over, re-validate.

The ``ycsbt replication`` counterpart to ``ycsbt cluster``: each run
executes the Closed Economy Workload against a live
:class:`~repro.replication.cluster.ReplicationCluster` — a leader and N
followers behind real HTTP servers, reads routed by the run's
consistency level — and, halfway through the measured phase, **kills the
leader's process**.  The campaign then

1. waits out the leader lease and promotes the most-caught-up follower
   under a bumped term (a *clean* failover first drains the dead
   leader's durable log, so no acknowledged write is lost),
2. runs the second half of the workload through the *same* routed store,
   whose lease-backed view discovers the new leader on its own,
3. revives the old leader and folds it back in as a follower
   (catch-up or full resync, whichever its log demands),
4. re-validates the CEW economy through a ``strong`` reader and checks
   every follower's log is once again identical to the leader's.

The verdict mirrors the cluster campaign's exit-code rule: at ``strong``
and ``read_your_writes`` the post-failover economy must balance (total
cash preserved, gamma == 0) — those are the **gated** levels.
``bounded_staleness`` read-modify-writes against legally stale follower
data, so its leaked money is the expected baseline the campaign reports
but does not fail on.  A broken log-prefix invariant after rejoin is a
protocol violation at *every* level.

Wall-clock, like every campaign over real sockets: the kill point is
deterministic (two exact half-runs), the timings are not.
"""

from __future__ import annotations

import json
import time
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from ..bindings.kv import KVStoreDB
from ..cluster.campaign import DEFAULT_CLUSTER_PROPERTIES, _NoValidation
from ..core.client import Client
from ..core.closed_economy import ClosedEconomyWorkload
from ..core.properties import Properties
from ..core.workload import WorkloadError
from ..kvstore.base import StoreError
from ..measurements.registry import Measurements
from .cluster import ReplicationCluster
from .routed import ConsistencyLevel

__all__ = [
    "DEFAULT_REPLICATION_PROPERTIES",
    "REPLICATION_LEVELS",
    "GATED_LEVELS",
    "ReplicationRunResult",
    "ReplicationCampaignResult",
    "run_replication",
    "run_replication_campaign",
    "write_replication_violation_trace",
]

#: The cluster campaign's CEW, single-threaded: one client session means
#: read-your-writes covers every read-modify-write the session issues, so
#: the economy must balance at both gated levels; bounded staleness still
#: bases RMWs on legally stale reads and leaks as the reported baseline.
DEFAULT_REPLICATION_PROPERTIES: dict[str, str] = {
    **DEFAULT_CLUSTER_PROPERTIES,
    "threadcount": "1",
}

REPLICATION_LEVELS = ("strong", "read_your_writes", "bounded_staleness")

#: Levels whose post-failover violations fail a campaign (and CI).
GATED_LEVELS = ("strong", "read_your_writes")


@dataclass
class ReplicationRunResult:
    """One load → run → kill-leader → failover → run → rejoin cycle."""

    level: str
    seed: int
    follower_count: int
    #: the node killed mid-run, or None for a fault-free run.
    killed_leader: str | None
    new_leader: str | None
    term: int
    #: acknowledged records lost in the failover (must be 0: clean drain).
    lost_records: int
    rejoin_mode: str | None
    healthy_operations: int
    degraded_operations: int
    #: validation straight after the healthy half, read at the run's level.
    pre_gamma: float
    pre_passed: bool
    #: validation after failover + rejoin through a strong reader — the verdict.
    post_gamma: float
    post_passed: bool
    post_validation_fields: list[tuple[str, str]]
    #: every follower log identical to the leader's after rejoin.
    logs_converged: bool
    operations: int
    failed_operations: int
    wall_time_s: float
    counters: dict[str, int]
    properties: dict[str, str]
    errors: list[str] = field(default_factory=list)

    @property
    def gated(self) -> bool:
        return self.level in GATED_LEVELS

    @property
    def violation(self) -> bool:
        """True when failover broke a promise the level (or protocol) made."""
        protocol_broken = not self.logs_converged or self.lost_records > 0
        economy_broken = not self.post_passed or self.post_gamma > 0.0
        return protocol_broken or (self.gated and economy_broken)

    @property
    def throughput(self) -> float:
        return self.operations / self.wall_time_s if self.wall_time_s > 0 else 0.0

    def summary_line(self) -> str:
        flag = "VIOLATION" if self.violation else "ok"
        killed = self.killed_leader or "-"
        return (
            f"{self.level:<17} seed={self.seed:<6} "
            f"killed={killed:<6} new-leader={self.new_leader or '-':<6} "
            f"term={self.term} lost={self.lost_records} "
            f"rejoin={self.rejoin_mode or '-':<8} "
            f"pre-gamma={self.pre_gamma:.6f} post-gamma={self.post_gamma:.6f} "
            f"ops={self.operations} failed={self.failed_operations} "
            f"wall={self.wall_time_s:.2f}s {flag}"
        )


def _replication_properties(base: Mapping[str, str] | None, seed: int) -> Properties:
    values = dict(DEFAULT_REPLICATION_PROPERTIES)
    if base:
        values.update({key: str(value) for key, value in base.items()})
    values["seed"] = str(seed)
    values["retry.seed"] = str(seed + 2)
    return Properties(values)


def run_replication(
    level: str = "strong",
    seed: int = 0,
    follower_count: int = 2,
    properties: Mapping[str, str] | None = None,
    kill: bool = True,
    kill_fraction: float = 0.5,
    lease_duration_s: float = 0.4,
    staleness_bound_s: float = 0.1,
) -> ReplicationRunResult:
    """One kill-the-leader cycle; the campaign's unit of work."""
    if level not in REPLICATION_LEVELS:
        raise ValueError(
            f"unknown consistency level {level!r}; use one of {REPLICATION_LEVELS}"
        )
    props = _replication_properties(properties, seed)
    wall_started = time.perf_counter()
    with ReplicationCluster(
        follower_count=follower_count,
        lease_duration_s=lease_duration_s,
        seed=seed,
    ) as cluster:
        routed = cluster.routed(
            ConsistencyLevel(level), staleness_bound_s=staleness_bound_s
        )
        db_factory = lambda: KVStoreDB(routed, props)  # noqa: E731

        workload = ClosedEconomyWorkload()
        measurements = Measurements.from_properties(props)
        workload.init(props, measurements)
        client = Client(workload, db_factory, props, measurements)
        load = client.load()
        cluster.wait_caught_up()

        total_ops = props.get_int("operationcount", 400)
        healthy_ops = max(1, int(total_ops * kill_fraction)) if kill else total_ops
        degraded_ops = total_ops - healthy_ops

        healthy = client.run(operation_count=healthy_ops)
        errors = list(load.errors) + list(healthy.errors)
        operations = healthy.operations
        failed = healthy.failed_operations

        killed_leader = None
        new_leader = None
        term = cluster.leader_node.term
        lost_records = 0
        rejoin_mode = None
        degraded_count = 0
        if kill and degraded_ops > 0:
            killed_leader = cluster.kill_leader()
            failover = cluster.failover(clean=True)
            new_leader = failover["leader"]
            term = failover["term"]
            lost_records = failover["lost_records"]
            # Same workload, same routed store — its lease-backed view
            # already points at the new leader.  Validation is skipped
            # for this half: it reads at the run's level, and the level's
            # verdict is taken post-rejoin through a strong reader.
            degraded_client = Client(
                _NoValidation(workload), db_factory, props, measurements
            )
            degraded = degraded_client.run(operation_count=degraded_ops)
            errors.extend(degraded.errors)
            operations += degraded.operations
            failed += degraded.failed_operations
            degraded_count = degraded.operations
            rejoin_mode = cluster.rejoin(killed_leader)["mode"]
        cluster.wait_caught_up()

        # -- post-failover validation through a strong reader ---------------
        post_db = KVStoreDB(cluster.routed(ConsistencyLevel.STRONG), props)
        post_db.init()
        try:
            post_validation = workload.validate(post_db)
        except (WorkloadError, StoreError) as exc:
            errors.append(f"post-validation: {type(exc).__name__}: {exc}")
            post_validation = None
        finally:
            post_db.cleanup()
        workload.cleanup()

        leader_log = cluster.leader_node.log.snapshot()
        logs_converged = all(
            node.log.snapshot() == leader_log
            for node in cluster.nodes.values()
            if node is not cluster.leader_node
        )
        counters = {
            name: int(value) for name, value in measurements.counters().items()
        }
        counters.update(routed.counters())
    wall_time_s = time.perf_counter() - wall_started
    return ReplicationRunResult(
        level=level,
        seed=seed,
        follower_count=follower_count,
        killed_leader=killed_leader,
        new_leader=new_leader,
        term=term,
        lost_records=lost_records,
        rejoin_mode=rejoin_mode,
        healthy_operations=healthy.operations,
        degraded_operations=degraded_count,
        pre_gamma=healthy.anomaly_score if healthy.anomaly_score is not None else 0.0,
        pre_passed=healthy.validation.passed if healthy.validation else False,
        post_gamma=post_validation.anomaly_score if post_validation else 1.0,
        post_passed=post_validation.passed if post_validation else False,
        post_validation_fields=[
            (str(name), str(value)) for name, value in post_validation.fields
        ]
        if post_validation
        else [],
        logs_converged=logs_converged,
        operations=operations,
        failed_operations=failed,
        wall_time_s=wall_time_s,
        counters=counters,
        properties=props.as_dict(),
        errors=errors,
    )


def write_replication_violation_trace(
    result: ReplicationRunResult, directory: str | Path
) -> Path:
    """Write the replayable artifact for a run that broke its promises."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload: dict[str, object] = {
        "kind": "ycsbt-replication-violation",
        "level": result.level,
        "seed": result.seed,
        "follower_count": result.follower_count,
        "failover": {
            "killed_leader": result.killed_leader,
            "new_leader": result.new_leader,
            "term": result.term,
            "lost_records": result.lost_records,
            "rejoin_mode": result.rejoin_mode,
        },
        "healthy_operations": result.healthy_operations,
        "degraded_operations": result.degraded_operations,
        "pre_failover": {"gamma": result.pre_gamma, "passed": result.pre_passed},
        "post_failover": {
            "gamma": result.post_gamma,
            "passed": result.post_passed,
            "validation": [list(pair) for pair in result.post_validation_fields],
            "logs_converged": result.logs_converged,
        },
        "operations": result.operations,
        "failed_operations": result.failed_operations,
        "wall_time_s": result.wall_time_s,
        "counters": result.counters,
        "properties": result.properties,
        "replay": {
            "command": (
                f"ycsbt replication --level {result.level} "
                f"--followers {result.follower_count} "
                f"--seeds 1 --start-seed {result.seed}"
            ),
        },
        "errors": result.errors,
    }
    path = directory / (
        f"replication-violation-{result.level}-seed{result.seed}.json"
    )
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


@dataclass
class ReplicationCampaignResult:
    """All runs of one replication campaign plus the violations surfaced."""

    runs: list[ReplicationRunResult]
    artifacts: list[Path] = field(default_factory=list)

    @property
    def violations(self) -> list[ReplicationRunResult]:
        return [run for run in self.runs if run.violation]

    @property
    def gated_violations(self) -> list[ReplicationRunResult]:
        """The failures that fail the campaign (and the CI job)."""
        return [run for run in self.runs if run.violation and run.gated]

    def by_level(self, level: str) -> list[ReplicationRunResult]:
        return [run for run in self.runs if run.level == level]

    def summary(self) -> str:
        lines = []
        for level in sorted({run.level for run in self.runs}):
            runs = self.by_level(level)
            violations = [run for run in runs if run.violation]
            kills = sum(1 for run in runs if run.killed_leader is not None)
            max_post = max((run.post_gamma for run in runs), default=0.0)
            max_pre = max((run.pre_gamma for run in runs), default=0.0)
            wall = sum(run.wall_time_s for run in runs)
            lines.append(
                f"{level}: {len(runs)} runs, {kills} leader kills, "
                f"{len(violations)} violations, "
                f"max pre-gamma {max_pre:.6f}, max post-gamma {max_post:.6f}, "
                f"{wall:.2f} wall s"
            )
        return "\n".join(lines)


def run_replication_campaign(
    seeds: Sequence[int],
    levels: Sequence[str] = REPLICATION_LEVELS,
    follower_count: int = 2,
    properties: Mapping[str, str] | None = None,
    kill: bool = True,
    out_dir: str | Path | None = None,
    on_result=None,
) -> ReplicationCampaignResult:
    """Sweep seeds x consistency levels; artifacts for every violation.

    Only *gated-level* violations should fail a CI job — bounded
    staleness leaking money through legally stale read-modify-writes is
    the expected baseline, not a bug (see the CLI's exit-code rule).
    """
    result = ReplicationCampaignResult(runs=[])
    for level in levels:
        for seed in seeds:
            run = run_replication(
                level=level,
                seed=seed,
                follower_count=follower_count,
                properties=properties,
                kill=kill,
            )
            result.runs.append(run)
            if run.violation and out_dir is not None:
                result.artifacts.append(
                    write_replication_violation_trace(run, out_dir)
                )
            if on_result is not None:
                on_result(run)
    return result
