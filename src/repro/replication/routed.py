"""Client-side replica routing with per-read consistency levels.

:class:`ReplicaRoutedStore` is an ordinary
:class:`~repro.kvstore.base.KeyValueStore` whose reads are routed by a
:class:`ConsistencyLevel` — the paper's consistency-versus-performance
dial, made explicit per handle:

``strong``
    every read from the leader.  Linearizable at the read level (the
    leader applies writes under one lock), anomaly score 0 by
    construction; every read pays the leader.
``read_your_writes``
    reads *try* a follower first, admitted by the session vector: the
    follower's answer is served only if it reflects every write this
    session made to that key and never travels backwards from what the
    session already observed (monotonic reads).  Otherwise the read
    falls back to the leader.  Guarantees are per session, per key.
``bounded_staleness``
    reads go to a follower whose replication frontier is within
    ``staleness_bound_s`` of now, else to the leader.  No session
    guarantee — a freshly-bounded follower may still miss this session's
    newest write — but the *age* of any answer is bounded.
``quorum``
    writes ack only once a **majority** of the replica set (leader
    included) has applied them; reads poll every member's status,
    require a majority reachable, and serve the value from the member
    with the highest applied ``seq``.  Because every log is a prefix of
    the leader's and records apply strictly in ``seq`` order, the read
    quorum intersects every write quorum in at least one member, and the
    max-seq member has applied that member's entire prefix — so every
    quorum-acked write is visible to every quorum read (anomaly score 0)
    even while the leader is down, as long as a majority survives.
    Range reads (scan/keys/size) still go to the leader, which holds a
    superset of any quorum.

The session vector is a per-key map of versions (written and observed),
not a global sequence number, so the same admission test works over the
plain REST protocol (where a write's response carries only its per-key
ETag) and in-process.  One deliberate conservatism: after a key is
observed deleted or vanishes, version numbers restart, so the session
routes that key to the leader rather than reason about tombstone order.

Writes always go to the leader.  On a leader transport failure the store
asks its :class:`ReplicaSetView` to ``refresh()`` (re-reading the lease
table) and retries once — that is lease-based failover from the client's
chair.
"""

from __future__ import annotations

import random
import threading
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from enum import Enum

from ..kvstore.base import (
    Fields,
    KeyValueStore,
    StoreError,
    StoreUnavailable,
    TransientStoreError,
    VersionedValue,
)
from ..sim.clock import ambient_now, ambient_sleep
from .node import NodeStatus, NotLeaderError

__all__ = [
    "ConsistencyLevel",
    "ReplicaSession",
    "ReplicaHandle",
    "ReplicaSetView",
    "StaticReplicaSet",
    "ReplicaRoutedStore",
]


class ConsistencyLevel(Enum):
    STRONG = "strong"
    READ_YOUR_WRITES = "read_your_writes"
    BOUNDED_STALENESS = "bounded_staleness"
    QUORUM = "quorum"


class ReplicaSession:
    """The session vector backing read-your-writes + monotonic reads.

    Tracks, per key, the highest version this session wrote and the
    highest it observed.  A follower answer is admissible only if it is
    at least as new as both.  Once a key is deleted (or observed to
    vanish) its version counter restarts, so version comparison can no
    longer order a follower's answer against the session's history — such
    keys are *pinned* to the leader for the rest of the session, trading
    a little read locality for an admission test that stays sound.
    Thread-safe so one session can be shared by one logical client.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._written: dict[str, int] = {}
        self._observed: dict[str, int] = {}
        self._pinned: set[str] = set()

    def note_write(self, key: str, version: int) -> None:
        with self._lock:
            self._written[key] = version
            self._observed[key] = version

    def note_delete(self, key: str) -> None:
        with self._lock:
            self._pinned.add(key)
            self._written.pop(key, None)
            self._observed.pop(key, None)

    def note_observed(self, key: str, versioned: VersionedValue | None) -> None:
        with self._lock:
            if versioned is None:
                # The key vanished under this session's feet (someone
                # else's delete): pin it, version order is gone.
                if key in self._observed or key in self._written:
                    self._pinned.add(key)
                    self._written.pop(key, None)
                    self._observed.pop(key, None)
            else:
                self._observed[key] = versioned.version

    def admits(self, key: str, versioned: VersionedValue | None) -> bool:
        """May this follower answer be served to this session?"""
        with self._lock:
            if key in self._pinned:
                return False
            floor = max(self._written.get(key, 0), self._observed.get(key, 0))
            if floor == 0:
                return True  # nothing to violate yet
            return versioned is not None and versioned.version >= floor

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "written": dict(self._written),
                "observed": dict(self._observed),
                "pinned": sorted(self._pinned),
            }


@dataclass(frozen=True)
class ReplicaHandle:
    """One routable node: a data plane (store) plus a control plane.

    ``store`` serves reads/writes (for the leader this is the logged
    :class:`~repro.replication.node.LeaderStoreAdapter` — in-process or
    via HTTP); ``control`` answers ``status()`` with a
    :class:`~repro.replication.node.NodeStatus` for freshness routing.
    """

    name: str
    store: KeyValueStore
    control: object

    def status(self) -> NodeStatus:
        return self.control.status()


class ReplicaSetView:
    """What the routed store needs to know about the replica set."""

    def leader(self) -> ReplicaHandle:
        raise NotImplementedError

    def followers(self) -> Sequence[ReplicaHandle]:
        raise NotImplementedError

    def refresh(self) -> None:
        """Re-discover the leader (called after a leader write failed)."""


class StaticReplicaSet(ReplicaSetView):
    """A fixed view; ``set_leader`` models an external failover notice."""

    def __init__(self, leader: ReplicaHandle, followers: Sequence[ReplicaHandle]):
        self._lock = threading.Lock()
        self._leader = leader
        self._followers = list(followers)

    def leader(self) -> ReplicaHandle:
        with self._lock:
            return self._leader

    def followers(self) -> Sequence[ReplicaHandle]:
        with self._lock:
            return list(self._followers)

    def set_leader(self, leader: ReplicaHandle) -> None:
        with self._lock:
            self._followers = [
                handle for handle in [self._leader, *self._followers]
                if handle.name != leader.name
            ]
            self._leader = leader


class _Freshness:
    """Cached follower staleness, refreshed only when it might matter.

    The cached frontier only *understates* freshness (frontiers move
    forward), so serving on a cached pass is always safe; on a cached
    fail we pay one status round trip before falling back to the leader.
    """

    def __init__(self, clock):
        self._clock = clock
        self._lock = threading.Lock()
        self._frontier: dict[str, float] = {}

    def fresh_within(self, handle: ReplicaHandle, bound_s: float) -> bool:
        now = self._clock()
        with self._lock:
            frontier = self._frontier.get(handle.name)
        if frontier is not None and now - frontier <= bound_s:
            return True
        status = handle.status()
        if status.frontier_ts is None:
            return False
        with self._lock:
            previous = self._frontier.get(handle.name)
            if previous is None or status.frontier_ts > previous:
                self._frontier[handle.name] = status.frontier_ts
        return now - status.frontier_ts <= bound_s


class ReplicaRoutedStore(KeyValueStore):
    """Route reads by consistency level; write through the leader.

    Args:
        view: the replica-set topology (leader + followers).
        level: the read consistency level for this handle.
        staleness_bound_s: freshness bound for ``BOUNDED_STALENESS``.
        session: the session vector (one per logical client); a fresh
            one is created when omitted.
        rng: seeded follower picker — determinism under the sim.
        quorum_timeout_s: how long a ``QUORUM`` write waits for majority
            acknowledgement before declaring the set unavailable.
        quorum_poll_s: the ack-polling interval (virtual seconds under a
            sim — each poll yields to the log shipper task).
    """

    def __init__(
        self,
        view: ReplicaSetView,
        level: ConsistencyLevel = ConsistencyLevel.STRONG,
        staleness_bound_s: float = 0.1,
        session: ReplicaSession | None = None,
        rng: random.Random | None = None,
        clock=ambient_now,
        quorum_timeout_s: float = 5.0,
        quorum_poll_s: float = 0.005,
    ):
        if staleness_bound_s < 0:
            raise ValueError(
                f"staleness_bound_s must be >= 0, got {staleness_bound_s}"
            )
        if quorum_timeout_s <= 0 or quorum_poll_s <= 0:
            raise ValueError("quorum timeout and poll interval must be > 0")
        self._view = view
        self._level = level
        self._bound_s = staleness_bound_s
        self.session = session if session is not None else ReplicaSession()
        self._rng = rng or random.Random()
        self._clock = clock
        self._quorum_timeout_s = quorum_timeout_s
        self._quorum_poll_s = quorum_poll_s
        self._freshness = _Freshness(clock)
        self._counter_lock = threading.Lock()
        self._counters = {
            "REPL-LEADER-READS": 0,
            "REPL-FOLLOWER-READS": 0,
            "REPL-FALLBACK-SESSION": 0,
            "REPL-FALLBACK-STALE": 0,
            "REPL-LEADER-FAILOVERS": 0,
            "REPL-QUORUM-READS": 0,
            "REPL-QUORUM-WRITES": 0,
        }

    @property
    def level(self) -> ConsistencyLevel:
        return self._level

    @property
    def staleness_bound_s(self) -> float:
        return self._bound_s

    def counters(self) -> dict[str, int]:
        """Routing counters, merged into benchmark reports by the bindings."""
        with self._counter_lock:
            return {name: count for name, count in self._counters.items() if count}

    def _count(self, name: str) -> None:
        with self._counter_lock:
            self._counters[name] += 1

    # -- leader plumbing ------------------------------------------------------

    def _on_leader(self, operation):
        """Run an operation against the leader, retrying once on failover.

        A transport failure or a demoted leader triggers one
        ``view.refresh()`` — the client re-reading the lease table — and
        one retry against the (possibly new) leader.
        """
        try:
            return operation(self._view.leader().store)
        except (NotLeaderError, StoreUnavailable, TransientStoreError):
            self._view.refresh()
            self._count("REPL-LEADER-FAILOVERS")
            return operation(self._view.leader().store)

    def _pick_follower(self) -> ReplicaHandle | None:
        followers = self._view.followers()
        if not followers:
            return None
        return followers[self._rng.randrange(len(followers))]

    # -- quorum machinery -----------------------------------------------------

    def _leader_status(self) -> NodeStatus:
        try:
            return self._view.leader().status()
        except StoreError:
            self._view.refresh()
            return self._view.leader().status()

    def _quorum_members(self) -> tuple[list[tuple[NodeStatus, ReplicaHandle, bool]], int]:
        """Reachable members with statuses, plus the required quorum size.

        The quorum size counts the full membership — leader plus every
        follower the view knows, reachable or not — so a partitioned
        minority can never assemble a "quorum" of itself.
        """
        followers = self._view.followers()
        needed = (1 + len(followers)) // 2 + 1
        members: list[tuple[NodeStatus, ReplicaHandle, bool]] = []
        try:
            leader = self._view.leader()
            members.append((leader.status(), leader, True))
        except StoreError:
            pass
        for handle in followers:
            try:
                members.append((handle.status(), handle, False))
            except StoreError:
                continue
        return members, needed

    def _quorum_ack(self) -> None:
        """Block until a majority has applied everything acked so far.

        Called after a leader write: the wait target is the leader's
        applied seq *now*, which is at least the write's own seq (a
        concurrent writer may push it higher — waiting on the later cut
        is conservative, never wrong).
        """
        if self._level is not ConsistencyLevel.QUORUM:
            return
        target_seq = self._leader_status().applied_seq
        deadline = self._clock() + self._quorum_timeout_s
        while True:
            members, needed = self._quorum_members()
            acked = sum(
                1 for status, _, _ in members if status.applied_seq >= target_seq
            )
            if acked >= needed:
                self._count("REPL-QUORUM-WRITES")
                return
            if self._clock() >= deadline:
                raise StoreUnavailable(
                    f"quorum write stalled: {acked}/{needed} members at "
                    f"seq {target_seq} after {self._quorum_timeout_s:g}s"
                )
            ambient_sleep(self._quorum_poll_s)

    def _quorum_get(self, key: str) -> VersionedValue | None:
        """Majority read: serve from the max-applied-seq reachable member."""
        members, needed = self._quorum_members()
        if len(members) < needed:
            raise StoreUnavailable(
                f"quorum read needs {needed} reachable members, "
                f"found {len(members)}"
            )
        status, handle, is_leader = max(
            members, key=lambda entry: (entry[0].applied_seq, entry[2], entry[0].name)
        )
        try:
            versioned = handle.store.get_with_meta(key)
        except StoreError:
            # The chosen member died between status and read; the leader
            # holds a superset of any quorum.
            versioned = self._on_leader(lambda store: store.get_with_meta(key))
            is_leader = True
        self._count("REPL-QUORUM-READS")
        self._count("REPL-LEADER-READS" if is_leader else "REPL-FOLLOWER-READS")
        self.session.note_observed(key, versioned)
        return versioned

    # -- reads ----------------------------------------------------------------

    def get_with_meta(self, key: str) -> VersionedValue | None:
        if self._level is ConsistencyLevel.QUORUM:
            return self._quorum_get(key)
        follower = None
        if self._level is not ConsistencyLevel.STRONG:
            follower = self._pick_follower()
        if follower is not None:
            if self._level is ConsistencyLevel.READ_YOUR_WRITES:
                try:
                    versioned = follower.store.get_with_meta(key)
                except StoreError:
                    versioned = None  # dead follower: fall back to the leader
                else:
                    if self.session.admits(key, versioned):
                        self._count("REPL-FOLLOWER-READS")
                        self.session.note_observed(key, versioned)
                        return versioned
                self._count("REPL-FALLBACK-SESSION")
            elif self._level is ConsistencyLevel.BOUNDED_STALENESS:
                try:
                    if self._freshness.fresh_within(follower, self._bound_s):
                        versioned = follower.store.get_with_meta(key)
                        self._count("REPL-FOLLOWER-READS")
                        self.session.note_observed(key, versioned)
                        return versioned
                except StoreError:
                    pass  # dead follower: fall back to the leader
                self._count("REPL-FALLBACK-STALE")
        self._count("REPL-LEADER-READS")
        versioned = self._on_leader(lambda store: store.get_with_meta(key))
        self.session.note_observed(key, versioned)
        return versioned

    def scan(self, start_key: str, record_count: int) -> list[tuple[str, Fields]]:
        # Range reads need one consistent line across keys: the leader.
        return self._on_leader(lambda store: store.scan(start_key, record_count))

    def keys(self):
        return self._on_leader(lambda store: iter(list(store.keys())))

    def size(self) -> int:
        return self._on_leader(lambda store: store.size())

    # -- writes ---------------------------------------------------------------

    def put(self, key: str, value: Mapping[str, str]) -> int:
        version = self._on_leader(lambda store: store.put(key, value))
        self.session.note_write(key, version)
        self._quorum_ack()
        return version

    def put_if_version(
        self, key: str, value: Mapping[str, str], expected_version: int | None
    ) -> int | None:
        version = self._on_leader(
            lambda store: store.put_if_version(key, value, expected_version)
        )
        if version is not None:
            self.session.note_write(key, version)
            self._quorum_ack()
        return version

    def put_versioned(self, key: str, versioned: VersionedValue) -> bool:
        installed = self._on_leader(lambda store: store.put_versioned(key, versioned))
        if installed:
            self.session.note_write(key, versioned.version)
            self._quorum_ack()
        return installed

    def put_batch(self, records: Sequence[tuple[str, Mapping[str, str]]]) -> list[int]:
        def batch(store: KeyValueStore) -> list[int]:
            if hasattr(store, "put_batch"):
                return store.put_batch(records)
            return [store.put(key, value) for key, value in records]

        versions = self._on_leader(batch)
        for (key, _value), version in zip(records, versions):
            self.session.note_write(key, version)
        if records:
            self._quorum_ack()
        return versions

    def delete(self, key: str) -> bool:
        existed = self._on_leader(lambda store: store.delete(key))
        if existed:
            self.session.note_delete(key)
            self._quorum_ack()
        return existed

    def delete_if_version(self, key: str, expected_version: int) -> bool | None:
        result = self._on_leader(
            lambda store: store.delete_if_version(key, expected_version)
        )
        if result is True:
            self.session.note_delete(key)
            self._quorum_ack()
        return result
