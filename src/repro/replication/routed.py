"""Client-side replica routing with per-read consistency levels.

:class:`ReplicaRoutedStore` is an ordinary
:class:`~repro.kvstore.base.KeyValueStore` whose reads are routed by a
:class:`ConsistencyLevel` — the paper's consistency-versus-performance
dial, made explicit per handle:

``strong``
    every read from the leader.  Linearizable at the read level (the
    leader applies writes under one lock), anomaly score 0 by
    construction; every read pays the leader.
``read_your_writes``
    reads *try* a follower first, admitted by the session vector: the
    follower's answer is served only if it reflects every write this
    session made to that key and never travels backwards from what the
    session already observed (monotonic reads).  Otherwise the read
    falls back to the leader.  Guarantees are per session, per key.
``bounded_staleness``
    reads go to a follower whose replication frontier is within
    ``staleness_bound_s`` of now, else to the leader.  No session
    guarantee — a freshly-bounded follower may still miss this session's
    newest write — but the *age* of any answer is bounded.

The session vector is a per-key map of versions (written and observed),
not a global sequence number, so the same admission test works over the
plain REST protocol (where a write's response carries only its per-key
ETag) and in-process.  One deliberate conservatism: after a key is
observed deleted or vanishes, version numbers restart, so the session
routes that key to the leader rather than reason about tombstone order.

Writes always go to the leader.  On a leader transport failure the store
asks its :class:`ReplicaSetView` to ``refresh()`` (re-reading the lease
table) and retries once — that is lease-based failover from the client's
chair.
"""

from __future__ import annotations

import random
import threading
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from enum import Enum

from ..kvstore.base import (
    Fields,
    KeyValueStore,
    StoreError,
    StoreUnavailable,
    TransientStoreError,
    VersionedValue,
)
from ..sim.clock import ambient_now
from .node import NodeStatus, NotLeaderError

__all__ = [
    "ConsistencyLevel",
    "ReplicaSession",
    "ReplicaHandle",
    "ReplicaSetView",
    "StaticReplicaSet",
    "ReplicaRoutedStore",
]


class ConsistencyLevel(Enum):
    STRONG = "strong"
    READ_YOUR_WRITES = "read_your_writes"
    BOUNDED_STALENESS = "bounded_staleness"


class ReplicaSession:
    """The session vector backing read-your-writes + monotonic reads.

    Tracks, per key, the highest version this session wrote and the
    highest it observed.  A follower answer is admissible only if it is
    at least as new as both.  Once a key is deleted (or observed to
    vanish) its version counter restarts, so version comparison can no
    longer order a follower's answer against the session's history — such
    keys are *pinned* to the leader for the rest of the session, trading
    a little read locality for an admission test that stays sound.
    Thread-safe so one session can be shared by one logical client.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._written: dict[str, int] = {}
        self._observed: dict[str, int] = {}
        self._pinned: set[str] = set()

    def note_write(self, key: str, version: int) -> None:
        with self._lock:
            self._written[key] = version
            self._observed[key] = version

    def note_delete(self, key: str) -> None:
        with self._lock:
            self._pinned.add(key)
            self._written.pop(key, None)
            self._observed.pop(key, None)

    def note_observed(self, key: str, versioned: VersionedValue | None) -> None:
        with self._lock:
            if versioned is None:
                # The key vanished under this session's feet (someone
                # else's delete): pin it, version order is gone.
                if key in self._observed or key in self._written:
                    self._pinned.add(key)
                    self._written.pop(key, None)
                    self._observed.pop(key, None)
            else:
                self._observed[key] = versioned.version

    def admits(self, key: str, versioned: VersionedValue | None) -> bool:
        """May this follower answer be served to this session?"""
        with self._lock:
            if key in self._pinned:
                return False
            floor = max(self._written.get(key, 0), self._observed.get(key, 0))
            if floor == 0:
                return True  # nothing to violate yet
            return versioned is not None and versioned.version >= floor

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "written": dict(self._written),
                "observed": dict(self._observed),
                "pinned": sorted(self._pinned),
            }


@dataclass(frozen=True)
class ReplicaHandle:
    """One routable node: a data plane (store) plus a control plane.

    ``store`` serves reads/writes (for the leader this is the logged
    :class:`~repro.replication.node.LeaderStoreAdapter` — in-process or
    via HTTP); ``control`` answers ``status()`` with a
    :class:`~repro.replication.node.NodeStatus` for freshness routing.
    """

    name: str
    store: KeyValueStore
    control: object

    def status(self) -> NodeStatus:
        return self.control.status()


class ReplicaSetView:
    """What the routed store needs to know about the replica set."""

    def leader(self) -> ReplicaHandle:
        raise NotImplementedError

    def followers(self) -> Sequence[ReplicaHandle]:
        raise NotImplementedError

    def refresh(self) -> None:
        """Re-discover the leader (called after a leader write failed)."""


class StaticReplicaSet(ReplicaSetView):
    """A fixed view; ``set_leader`` models an external failover notice."""

    def __init__(self, leader: ReplicaHandle, followers: Sequence[ReplicaHandle]):
        self._lock = threading.Lock()
        self._leader = leader
        self._followers = list(followers)

    def leader(self) -> ReplicaHandle:
        with self._lock:
            return self._leader

    def followers(self) -> Sequence[ReplicaHandle]:
        with self._lock:
            return list(self._followers)

    def set_leader(self, leader: ReplicaHandle) -> None:
        with self._lock:
            self._followers = [
                handle for handle in [self._leader, *self._followers]
                if handle.name != leader.name
            ]
            self._leader = leader


class _Freshness:
    """Cached follower staleness, refreshed only when it might matter.

    The cached frontier only *understates* freshness (frontiers move
    forward), so serving on a cached pass is always safe; on a cached
    fail we pay one status round trip before falling back to the leader.
    """

    def __init__(self, clock):
        self._clock = clock
        self._lock = threading.Lock()
        self._frontier: dict[str, float] = {}

    def fresh_within(self, handle: ReplicaHandle, bound_s: float) -> bool:
        now = self._clock()
        with self._lock:
            frontier = self._frontier.get(handle.name)
        if frontier is not None and now - frontier <= bound_s:
            return True
        status = handle.status()
        if status.frontier_ts is None:
            return False
        with self._lock:
            previous = self._frontier.get(handle.name)
            if previous is None or status.frontier_ts > previous:
                self._frontier[handle.name] = status.frontier_ts
        return now - status.frontier_ts <= bound_s


class ReplicaRoutedStore(KeyValueStore):
    """Route reads by consistency level; write through the leader.

    Args:
        view: the replica-set topology (leader + followers).
        level: the read consistency level for this handle.
        staleness_bound_s: freshness bound for ``BOUNDED_STALENESS``.
        session: the session vector (one per logical client); a fresh
            one is created when omitted.
        rng: seeded follower picker — determinism under the sim.
    """

    def __init__(
        self,
        view: ReplicaSetView,
        level: ConsistencyLevel = ConsistencyLevel.STRONG,
        staleness_bound_s: float = 0.1,
        session: ReplicaSession | None = None,
        rng: random.Random | None = None,
        clock=ambient_now,
    ):
        if staleness_bound_s < 0:
            raise ValueError(
                f"staleness_bound_s must be >= 0, got {staleness_bound_s}"
            )
        self._view = view
        self._level = level
        self._bound_s = staleness_bound_s
        self.session = session if session is not None else ReplicaSession()
        self._rng = rng or random.Random()
        self._clock = clock
        self._freshness = _Freshness(clock)
        self._counter_lock = threading.Lock()
        self._counters = {
            "REPL-LEADER-READS": 0,
            "REPL-FOLLOWER-READS": 0,
            "REPL-FALLBACK-SESSION": 0,
            "REPL-FALLBACK-STALE": 0,
            "REPL-LEADER-FAILOVERS": 0,
        }

    @property
    def level(self) -> ConsistencyLevel:
        return self._level

    @property
    def staleness_bound_s(self) -> float:
        return self._bound_s

    def counters(self) -> dict[str, int]:
        """Routing counters, merged into benchmark reports by the bindings."""
        with self._counter_lock:
            return {name: count for name, count in self._counters.items() if count}

    def _count(self, name: str) -> None:
        with self._counter_lock:
            self._counters[name] += 1

    # -- leader plumbing ------------------------------------------------------

    def _on_leader(self, operation):
        """Run an operation against the leader, retrying once on failover.

        A transport failure or a demoted leader triggers one
        ``view.refresh()`` — the client re-reading the lease table — and
        one retry against the (possibly new) leader.
        """
        try:
            return operation(self._view.leader().store)
        except (NotLeaderError, StoreUnavailable, TransientStoreError):
            self._view.refresh()
            self._count("REPL-LEADER-FAILOVERS")
            return operation(self._view.leader().store)

    def _pick_follower(self) -> ReplicaHandle | None:
        followers = self._view.followers()
        if not followers:
            return None
        return followers[self._rng.randrange(len(followers))]

    # -- reads ----------------------------------------------------------------

    def get_with_meta(self, key: str) -> VersionedValue | None:
        follower = None
        if self._level is not ConsistencyLevel.STRONG:
            follower = self._pick_follower()
        if follower is not None:
            if self._level is ConsistencyLevel.READ_YOUR_WRITES:
                try:
                    versioned = follower.store.get_with_meta(key)
                except StoreError:
                    versioned = None  # dead follower: fall back to the leader
                else:
                    if self.session.admits(key, versioned):
                        self._count("REPL-FOLLOWER-READS")
                        self.session.note_observed(key, versioned)
                        return versioned
                self._count("REPL-FALLBACK-SESSION")
            elif self._level is ConsistencyLevel.BOUNDED_STALENESS:
                try:
                    if self._freshness.fresh_within(follower, self._bound_s):
                        versioned = follower.store.get_with_meta(key)
                        self._count("REPL-FOLLOWER-READS")
                        self.session.note_observed(key, versioned)
                        return versioned
                except StoreError:
                    pass  # dead follower: fall back to the leader
                self._count("REPL-FALLBACK-STALE")
        self._count("REPL-LEADER-READS")
        versioned = self._on_leader(lambda store: store.get_with_meta(key))
        self.session.note_observed(key, versioned)
        return versioned

    def scan(self, start_key: str, record_count: int) -> list[tuple[str, Fields]]:
        # Range reads need one consistent line across keys: the leader.
        return self._on_leader(lambda store: store.scan(start_key, record_count))

    def keys(self):
        return self._on_leader(lambda store: iter(list(store.keys())))

    def size(self) -> int:
        return self._on_leader(lambda store: store.size())

    # -- writes ---------------------------------------------------------------

    def put(self, key: str, value: Mapping[str, str]) -> int:
        version = self._on_leader(lambda store: store.put(key, value))
        self.session.note_write(key, version)
        return version

    def put_if_version(
        self, key: str, value: Mapping[str, str], expected_version: int | None
    ) -> int | None:
        version = self._on_leader(
            lambda store: store.put_if_version(key, value, expected_version)
        )
        if version is not None:
            self.session.note_write(key, version)
        return version

    def put_versioned(self, key: str, versioned: VersionedValue) -> bool:
        installed = self._on_leader(lambda store: store.put_versioned(key, versioned))
        if installed:
            self.session.note_write(key, versioned.version)
        return installed

    def put_batch(self, records: Sequence[tuple[str, Mapping[str, str]]]) -> list[int]:
        def batch(store: KeyValueStore) -> list[int]:
            if hasattr(store, "put_batch"):
                return store.put_batch(records)
            return [store.put(key, value) for key, value in records]

        versions = self._on_leader(batch)
        for (key, _value), version in zip(records, versions):
            self.session.note_write(key, version)
        return versions

    def delete(self, key: str) -> bool:
        existed = self._on_leader(lambda store: store.delete(key))
        if existed:
            self.session.note_delete(key)
        return existed

    def delete_if_version(self, key: str, expected_version: int) -> bool | None:
        result = self._on_leader(
            lambda store: store.delete_if_version(key, expected_version)
        )
        if result is True:
            self.session.note_delete(key)
        return result
