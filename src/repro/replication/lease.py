"""Leader leases: who may accept writes, and until when.

A tiny lease oracle standing in for the external coordination service a
production deployment would use (ZooKeeper/etcd in the systems the paper
surveys).  One grant is live at a time; the holder must renew before
``expires_at`` or lose the right to lead.  A candidate may only acquire
after the current grant has *expired* — that wait is what makes failover
safe without fencing the old leader's in-flight writes: by the time the
new term starts, the old leader (if somehow alive) can no longer renew
and every grant carries a strictly increasing ``term``.

The table is driven by the ambient clock, so the same code runs under
wall time (HTTP campaign) and virtual time (conformance suite).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..sim.clock import ambient_now

__all__ = ["LeaderLease", "LeaseError", "LeaseTable"]


class LeaseError(Exception):
    """A lease operation the table's rules forbid."""


@dataclass(frozen=True, slots=True)
class LeaderLease:
    leader: str
    term: int
    expires_at: float


class LeaseTable:
    """Grant, renew, and hand over the single leader lease."""

    def __init__(self, duration_s: float = 1.0, clock=ambient_now):
        if duration_s <= 0:
            raise ValueError(f"lease duration must be positive, got {duration_s}")
        self._duration_s = duration_s
        self._clock = clock
        self._lock = threading.Lock()
        self._current: LeaderLease | None = None

    @property
    def duration_s(self) -> float:
        return self._duration_s

    def current(self) -> LeaderLease | None:
        with self._lock:
            return self._current

    def holder_alive(self) -> bool:
        """True while the current grant has not expired."""
        with self._lock:
            return self._current is not None and self._current.expires_at > self._clock()

    def remaining_s(self) -> float:
        """Seconds until the current grant expires (0 when none/expired)."""
        with self._lock:
            if self._current is None:
                return 0.0
            return max(0.0, self._current.expires_at - self._clock())

    def grant(self, leader: str) -> LeaderLease:
        """Initial grant (or forced hand-over by the control plane).

        Always bumps the term — even a forced grant must fence the old
        regime's records.
        """
        with self._lock:
            term = (self._current.term if self._current else 0) + 1
            self._current = LeaderLease(leader, term, self._clock() + self._duration_s)
            return self._current

    def renew(self, leader: str) -> LeaderLease:
        """Extend the grant; only the live holder may renew."""
        with self._lock:
            current = self._current
            if current is None or current.leader != leader:
                raise LeaseError(f"{leader!r} does not hold the lease")
            if current.expires_at <= self._clock():
                raise LeaseError(f"{leader!r}'s lease expired; cannot renew")
            self._current = LeaderLease(
                leader, current.term, self._clock() + self._duration_s
            )
            return self._current

    def acquire(self, candidate: str) -> LeaderLease:
        """Take the lease after the current grant expired; bumps the term."""
        with self._lock:
            current = self._current
            if current is not None and current.expires_at > self._clock():
                raise LeaseError(
                    f"lease still held by {current.leader!r} "
                    f"for {current.expires_at - self._clock():.3f}s"
                )
            term = (current.term if current else 0) + 1
            self._current = LeaderLease(
                candidate, term, self._clock() + self._duration_s
            )
            return self._current
