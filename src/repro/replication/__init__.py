"""Leader–follower replication with tunable consistency tiers.

The protocol layer the paper's consistency-versus-performance experiments
need: real leader/follower nodes (in-process or behind HTTP servers),
leader leases, async log shipping, anti-entropy repair, and a
client-side routed store exposing per-read consistency levels.  See
docs/REPLICATION.md for the protocol description and the consistency
matrix.
"""

from .cluster import InProcessReplicaSet, ReplicationCluster
from .history import ConformanceReport, History
from .lease import LeaderLease, LeaseError, LeaseTable
from .log import DurableReplicationLog, ReplicationLog, ReplicationRecord
from .node import (
    LeaderStoreAdapter,
    NodeRole,
    NodeStatus,
    NotLeaderError,
    ReplicationNode,
)
from .probe import ProbeResult, run_probe
from .routed import (
    ConsistencyLevel,
    ReplicaHandle,
    ReplicaRoutedStore,
    ReplicaSession,
    ReplicaSetView,
    StaticReplicaSet,
)
from .ship import HttpReplLink, InProcessLink, LogShipper, anti_entropy, rejoin_follower

__all__ = [
    "ConformanceReport",
    "ConsistencyLevel",
    "DurableReplicationLog",
    "History",
    "HttpReplLink",
    "InProcessLink",
    "InProcessReplicaSet",
    "LeaderLease",
    "LeaderStoreAdapter",
    "LeaseError",
    "LeaseTable",
    "LogShipper",
    "NodeRole",
    "NodeStatus",
    "NotLeaderError",
    "ProbeResult",
    "ReplicaHandle",
    "ReplicaRoutedStore",
    "ReplicaSession",
    "ReplicaSetView",
    "ReplicationCluster",
    "ReplicationLog",
    "ReplicationNode",
    "StaticReplicaSet",
    "anti_entropy",
    "rejoin_follower",
    "run_probe",
]
