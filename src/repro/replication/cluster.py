"""Replica sets: wiring nodes, links, leases and shippers together.

Two assemblies over the same protocol objects:

:class:`InProcessReplicaSet`
    nodes as plain objects, links in-process, shipping driven explicitly
    (``ship_once``) or as a virtual-time task — the deterministic
    substrate for the conformance suite and the ``consistency_frontier``
    experiment.

:class:`ReplicationCluster`
    one real :class:`~repro.http.server.KVStoreHTTPServer` per node
    (reusing the cluster package's launch/kill/revive machinery), a
    wall-clock :class:`~repro.replication.ship.LogShipper` thread that
    renews the leader's lease, and lease-based failover: after
    ``kill_leader`` the campaign waits out the lease, promotes the
    most-caught-up follower under a bumped term, and (for a *clean*
    failover) first drains the dead leader's durable log into the
    candidate so no acknowledged write is lost.  The harness plays the
    coordination service (it holds the :class:`LeaseTable`), exactly as
    documented in docs/REPLICATION.md.

Both expose ``routed(level, ...)`` returning a
:class:`~repro.replication.routed.ReplicaRoutedStore` whose view tracks
the lease table, so a client created before a failover keeps working
after it.
"""

from __future__ import annotations

import random
from pathlib import Path

from ..http import HttpKVStore, KVStoreHTTPServer
from ..kvstore.base import StoreUnavailable
from ..sim.clock import ambient_now, ambient_sleep
from .lease import LeaseTable
from .log import DurableReplicationLog, ReplicationLog
from .node import LeaderStoreAdapter, NodeRole, ReplicationNode
from .routed import (
    ConsistencyLevel,
    ReplicaHandle,
    ReplicaRoutedStore,
    ReplicaSession,
    ReplicaSetView,
)
from .ship import HttpReplLink, InProcessLink, LogShipper, anti_entropy, rejoin_follower

__all__ = ["InProcessReplicaSet", "ReplicationCluster"]


def _node_log(log_dir: str | Path | None, name: str) -> ReplicationLog | None:
    """A durable per-node log when a directory is given, else in-memory.

    Reopening the same directory restores each node from its own WAL —
    the follower-restart path the durable-log satellite exists for.
    """
    if log_dir is None:
        return None
    return DurableReplicationLog(Path(log_dir) / f"{name}.wal")


class _LeaseView(ReplicaSetView):
    """A replica-set view that believes whatever the lease table says."""

    def __init__(self, owner):
        self._owner = owner

    def leader(self) -> ReplicaHandle:
        return self._owner._leader_handle()

    def followers(self):
        return self._owner._follower_handles()

    def refresh(self) -> None:
        # The lease table *is* the source of truth; nothing cached here.
        pass


class InProcessReplicaSet:
    """Leader + N followers as in-process objects (virtual-time friendly)."""

    def __init__(
        self,
        follower_count: int = 2,
        lease_duration_s: float = 1.0,
        ship_interval_s: float = 0.05,
        clock=ambient_now,
        seed: int = 0,
        log_dir: str | Path | None = None,
    ):
        if follower_count < 1:
            raise ValueError(f"follower_count must be >= 1, got {follower_count}")
        self._clock = clock
        self.lease = LeaseTable(lease_duration_s, clock)
        lease = self.lease.grant("node0")
        self.nodes: dict[str, ReplicationNode] = {}
        leader = ReplicationNode("node0", clock=clock, log=_node_log(log_dir, "node0"))
        leader.promote(lease.term)
        self.nodes["node0"] = leader
        for index in range(1, follower_count + 1):
            name = f"node{index}"
            node = ReplicationNode(
                name, clock=clock, log=_node_log(log_dir, name)
            )
            node.demote(lease.term, "node0")
            self.nodes[node.name] = node
        self.shipper = LogShipper(
            leader,
            {
                name: InProcessLink(node)
                for name, node in self.nodes.items()
                if name != "node0"
            },
            interval_s=ship_interval_s,
            lease=self.lease,
        )
        self._rng = random.Random(seed)
        self._view = _LeaseView(self)

    # -- handles ---------------------------------------------------------------

    def _leader_name(self) -> str:
        lease = self.lease.current()
        if lease is None:
            raise StoreUnavailable("no leader lease granted")
        return lease.leader

    def _leader_handle(self) -> ReplicaHandle:
        node = self.nodes[self._leader_name()]
        return ReplicaHandle(node.name, LeaderStoreAdapter(node), node)

    def _follower_handles(self):
        leader = self._leader_name()
        return [
            ReplicaHandle(node.name, node.store, node)
            for name, node in self.nodes.items()
            if name != leader
        ]

    @property
    def leader_node(self) -> ReplicationNode:
        return self.nodes[self._leader_name()]

    def routed(
        self,
        level: ConsistencyLevel = ConsistencyLevel.STRONG,
        staleness_bound_s: float = 0.1,
        session: ReplicaSession | None = None,
        rng: random.Random | None = None,
    ) -> ReplicaRoutedStore:
        return ReplicaRoutedStore(
            self._view,
            level=level,
            staleness_bound_s=staleness_bound_s,
            session=session,
            rng=rng or random.Random(self._rng.randrange(2**31)),
            clock=self._clock,
        )

    # -- shipping --------------------------------------------------------------

    def ship_once(self) -> dict[str, int]:
        return self.shipper.ship_once()

    def flush(self) -> None:
        """Ship until every reachable follower holds the full leader log."""
        leader = self.leader_node
        while True:
            acked = self.ship_once()
            behind = [
                name for name, seq in acked.items()
                if name not in self.shipper.dead and seq < leader.log.last_seq
            ]
            if not behind:
                return

    # -- failover --------------------------------------------------------------

    def failover(self, clean: bool = True) -> dict:
        """Promote the most-caught-up follower once the lease has lapsed.

        ``clean=True`` first drains the dead leader's durable log into
        the candidate (a process crashed, its disk did not), so no
        acknowledged write is lost; ``clean=False`` models losing that
        disk — the candidate's prefix is all that survives, and the
        return value reports how many acknowledged records were lost.
        """
        old_name = self._leader_name()
        old_leader = self.nodes[old_name]
        if self.lease.holder_alive():
            raise RuntimeError("lease still live; wait it out before failover")
        followers = [node for name, node in self.nodes.items() if name != old_name]
        candidate = max(followers, key=lambda node: (node.applied_seq, node.name))
        if clean:
            anti_entropy(old_leader, candidate)
        lost = old_leader.log.last_seq - candidate.applied_seq
        lease = self.lease.acquire(candidate.name)
        candidate.promote(lease.term)
        for node in followers:
            if node is not candidate:
                node.demote(lease.term, candidate.name)
        self.shipper = LogShipper(
            candidate,
            {
                node.name: InProcessLink(node)
                for node in followers
                if node is not candidate
            },
            interval_s=self.shipper.interval_s,
            lease=self.lease,
        )
        return {"leader": candidate.name, "term": lease.term, "lost_records": max(0, lost)}

    def rejoin(self, name: str) -> dict:
        """Bring a previously-dead node back as a follower of the leader."""
        leader = self.leader_node
        node = self.nodes[name]
        result = rejoin_follower(leader, node)
        node.demote(leader.term, leader.name)
        self.shipper.add_follower(name, InProcessLink(node))
        return result


class ReplicationCluster:
    """Leader + N followers, each behind a real HTTP server."""

    def __init__(
        self,
        follower_count: int = 2,
        lease_duration_s: float = 0.5,
        ship_interval_s: float = 0.02,
        host: str = "127.0.0.1",
        seed: int = 0,
        log_dir: str | Path | None = None,
    ):
        if follower_count < 1:
            raise ValueError(f"follower_count must be >= 1, got {follower_count}")
        self._follower_count = follower_count
        self._host = host
        self._log_dir = log_dir
        self._ship_interval_s = ship_interval_s
        self.lease = LeaseTable(lease_duration_s)
        self.nodes: dict[str, ReplicationNode] = {}
        self.servers: dict[str, KVStoreHTTPServer] = {}
        self._clients: dict[str, HttpKVStore] = {}
        self.shipper: LogShipper | None = None
        self._rng = random.Random(seed)
        self._view = _LeaseView(self)
        self._started = False

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "ReplicationCluster":
        if self._started:
            raise RuntimeError("cluster already started")
        lease = self.lease.grant("node0")
        for index in range(self._follower_count + 1):
            name = f"node{index}"
            node = ReplicationNode(name, log=_node_log(self._log_dir, name))
            if name == "node0":
                node.promote(lease.term)
            else:
                node.demote(lease.term, "node0")
            self.nodes[name] = node
            # Every server fronts the *adapter*, so plain REST writes are
            # logged and shipped; followers answer reads and /repl only.
            server = KVStoreHTTPServer(
                LeaderStoreAdapter(node), host=self._host, replicator=node
            ).start()
            self.servers[name] = server
            self._clients[name] = HttpKVStore(server.address)
        self.shipper = LogShipper(
            self.nodes["node0"],
            self._links(exclude="node0"),
            interval_s=self._ship_interval_s,
            lease=self.lease,
        ).start()
        self._started = True
        return self

    def stop(self) -> None:
        if self.shipper is not None:
            self.shipper.stop()
        for client in self._clients.values():
            client.close()
        for server in self.servers.values():
            server.stop()
        self._clients.clear()
        self.servers.clear()
        self._started = False

    def __enter__(self) -> "ReplicationCluster":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _links(self, exclude: str) -> dict[str, HttpReplLink]:
        return {
            name: HttpReplLink(name, client)
            for name, client in self._clients.items()
            if name != exclude and not self.servers[name].crashed
        }

    # -- handles ---------------------------------------------------------------

    def _leader_name(self) -> str:
        lease = self.lease.current()
        if lease is None:
            raise StoreUnavailable("no leader lease granted")
        return lease.leader

    def _leader_handle(self) -> ReplicaHandle:
        name = self._leader_name()
        client = self._clients[name]
        return ReplicaHandle(name, client, HttpReplLink(name, client))

    def _follower_handles(self):
        leader = self._leader_name()
        return [
            ReplicaHandle(name, client, HttpReplLink(name, client))
            for name, client in self._clients.items()
            if name != leader and not self.servers[name].crashed
        ]

    @property
    def leader_node(self) -> ReplicationNode:
        return self.nodes[self._leader_name()]

    def routed(
        self,
        level: ConsistencyLevel = ConsistencyLevel.STRONG,
        staleness_bound_s: float = 0.1,
        session: ReplicaSession | None = None,
        rng: random.Random | None = None,
    ) -> ReplicaRoutedStore:
        return ReplicaRoutedStore(
            self._view,
            level=level,
            staleness_bound_s=staleness_bound_s,
            session=session,
            rng=rng or random.Random(self._rng.randrange(2**31)),
        )

    # -- failure & failover ----------------------------------------------------

    def kill_leader(self) -> str:
        """Crash the leader's process: server drops connections, shipper dies."""
        name = self._leader_name()
        if self.shipper is not None:
            self.shipper.stop()
            self.shipper = None
        self.servers[name].mark_crashed()
        return name

    def failover(self, clean: bool = True, timeout_s: float = 10.0) -> dict:
        """Lease-based failover: wait out the grant, promote, re-ship.

        Mirrors :meth:`InProcessReplicaSet.failover`; the dead leader's
        durable log is read object-side (its "disk" survived the process)
        for a clean catch-up.
        """
        deadline = ambient_now() + timeout_s
        while self.lease.holder_alive():
            if ambient_now() > deadline:
                raise TimeoutError("lease never expired")
            ambient_sleep(self.lease.remaining_s() + 0.01)
        old_name = self.lease.current().leader
        old_leader = self.nodes[old_name]
        candidates = [
            self.nodes[name]
            for name in self.nodes
            if name != old_name and not self.servers[name].crashed
        ]
        candidate = max(candidates, key=lambda node: (node.applied_seq, node.name))
        if clean:
            anti_entropy(old_leader, candidate)
        lost = old_leader.log.last_seq - candidate.applied_seq
        lease = self.lease.acquire(candidate.name)
        candidate.promote(lease.term)
        for node in candidates:
            if node is not candidate:
                node.demote(lease.term, candidate.name)
        self.shipper = LogShipper(
            candidate,
            self._links(exclude=candidate.name),
            interval_s=self._ship_interval_s,
            lease=self.lease,
        ).start()
        return {"leader": candidate.name, "term": lease.term, "lost_records": max(0, lost)}

    def rejoin(self, name: str) -> dict:
        """Revive a crashed node and fold it back in as a follower."""
        leader = self.leader_node
        node = self.nodes[name]
        result = rejoin_follower(leader, node)
        node.demote(leader.term, leader.name)
        self.servers[name].revive()
        if self.shipper is not None:
            self.shipper.add_follower(name, HttpReplLink(name, self._clients[name]))
        return result

    def wait_caught_up(self, timeout_s: float = 10.0) -> None:
        """Block until every live follower holds the full leader log."""
        deadline = ambient_now() + timeout_s
        leader = self.leader_node
        while True:
            live = [
                node for name, node in self.nodes.items()
                if name != leader.name and not self.servers[name].crashed
            ]
            if all(node.applied_seq >= leader.log.last_seq for node in live):
                return
            if ambient_now() > deadline:
                behind = {
                    node.name: node.applied_seq for node in live
                    if node.applied_seq < leader.log.last_seq
                }
                raise TimeoutError(
                    f"followers never caught up to seq {leader.log.last_seq}: {behind}"
                )
            ambient_sleep(self._ship_interval_s)
