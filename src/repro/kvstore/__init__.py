"""Key-value store substrates.

Every store implements :class:`~repro.kvstore.base.KeyValueStore`:
single-item atomic operations, ordered scans, and conditional writes —
the contract the paper assumes of NoSQL data stores and that the
transaction layer (:mod:`repro.txn`) builds upon.
"""

from .base import (
    Fields,
    KeyValueStore,
    RateLimitExceeded,
    StoreClosed,
    StoreError,
    StoreUnavailable,
    TransientStoreError,
    VersionedValue,
)
from .cloud import GCS_PROFILE, WAS_PROFILE, CloudStoreProfile, SimulatedCloudStore
from .faults import FaultInjectingStore, FaultProfile, FaultStats
from .latency import (
    ConstantLatency,
    LatencyInjectingStore,
    LatencyModel,
    LognormalLatency,
    NoLatency,
    UniformLatency,
)
from .lsm import LSMKVStore
from .memory import InMemoryKVStore
from .ratelimit import TokenBucket
from .replicated import ReadPreference, ReplicatedKVStore
from .sharded import ConsistentHashRing, ShardedKVStore

__all__ = [
    "Fields",
    "KeyValueStore",
    "RateLimitExceeded",
    "StoreClosed",
    "StoreError",
    "StoreUnavailable",
    "TransientStoreError",
    "VersionedValue",
    "GCS_PROFILE",
    "WAS_PROFILE",
    "CloudStoreProfile",
    "SimulatedCloudStore",
    "FaultInjectingStore",
    "FaultProfile",
    "FaultStats",
    "ConstantLatency",
    "LatencyInjectingStore",
    "LatencyModel",
    "LognormalLatency",
    "NoLatency",
    "UniformLatency",
    "LSMKVStore",
    "InMemoryKVStore",
    "TokenBucket",
    "ReadPreference",
    "ReplicatedKVStore",
    "ConsistentHashRing",
    "ShardedKVStore",
]
