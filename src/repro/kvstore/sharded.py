"""Hash-partitioned store over multiple child stores.

Models the *scale-out* property of §II-A: data and request load spread
across many nodes.  Also the substrate for the heterogeneous-transaction
example — the client-coordinated transaction manager can run transactions
whose keys land on different child stores (even stores of different types,
the "hybrid data stores" of §II-B).

Placement uses a consistent-hash ring with virtual nodes so that adding a
shard moves only ~1/n of the keys (the *elasticity* property).
"""

from __future__ import annotations

import bisect
import heapq
import threading
from collections.abc import Iterator, Mapping, Sequence

from ..generators.hashing import fnv1a_64
from .base import Fields, KeyValueStore, VersionedValue

__all__ = ["ConsistentHashRing", "ShardedKVStore"]


class ConsistentHashRing:
    """Consistent hashing with virtual nodes.

    Each shard name is hashed ``replicas`` times onto a 64-bit ring; a key
    is owned by the first virtual node clockwise from its hash.
    """

    def __init__(self, shard_names: Sequence[str], replicas: int = 64):
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self._replicas = replicas
        self._ring: list[tuple[int, str]] = []
        self._points: list[int] = []
        self._names: list[str] = []
        for name in shard_names:
            self.add_shard(name)

    @staticmethod
    def _hash(token: str) -> int:
        return fnv1a_64(token.encode("utf-8"))

    def add_shard(self, name: str) -> None:
        if name in self._names:
            raise ValueError(f"shard {name!r} already on the ring")
        self._names.append(name)
        for replica in range(self._replicas):
            point = self._hash(f"{name}#{replica}")
            index = bisect.bisect_left(self._ring, (point, name))
            self._ring.insert(index, (point, name))
        self._points = [point for point, _ in self._ring]

    def remove_shard(self, name: str) -> None:
        if name not in self._names:
            raise ValueError(f"shard {name!r} not on the ring")
        self._names.remove(name)
        self._ring = [(point, owner) for point, owner in self._ring if owner != name]
        self._points = [point for point, _ in self._ring]

    def shard_names(self) -> list[str]:
        return list(self._names)

    def owner(self, key: str) -> str:
        """Name of the shard owning ``key``."""
        if not self._ring:
            raise RuntimeError("hash ring is empty")
        point = self._hash(key)
        index = bisect.bisect_right(self._points, point)
        if index == len(self._ring):
            index = 0
        return self._ring[index][1]


class ShardedKVStore(KeyValueStore):
    """Routes each key to one of several child stores by consistent hash.

    Scans merge the per-shard ordered streams with a heap, so a ranged
    ``scan`` behaves exactly like it would on a single ordered store.
    """

    def __init__(self, shards: Mapping[str, KeyValueStore], replicas: int = 64):
        if not shards:
            raise ValueError("at least one shard is required")
        self._shards = dict(shards)
        self._ring = ConsistentHashRing(list(self._shards), replicas=replicas)
        self._lock = threading.Lock()

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def shard_for(self, key: str) -> KeyValueStore:
        """The child store that owns ``key``."""
        return self._shards[self._ring.owner(key)]

    def shard_names(self) -> list[str]:
        return self._ring.shard_names()

    def add_shard(self, name: str, store: KeyValueStore) -> int:
        """Attach a new shard and migrate the keys it now owns.

        Returns the number of keys moved — the elasticity metric: with a
        balanced ring this is about ``size / (n + 1)``.
        """
        with self._lock:
            if name in self._shards:
                raise ValueError(f"shard {name!r} already exists")
            moved = 0
            self._ring.add_shard(name)
            self._shards[name] = store
            for shard_name, shard in list(self._shards.items()):
                if shard_name == name:
                    continue
                for key in list(shard.keys()):
                    if self._ring.owner(key) == name:
                        versioned = shard.get_with_meta(key)
                        if versioned is None:
                            continue
                        store.put(key, versioned.value)
                        shard.delete(key)
                        moved += 1
            return moved

    # -- reads ---------------------------------------------------------------

    def get_with_meta(self, key: str) -> VersionedValue | None:
        return self.shard_for(key).get_with_meta(key)

    def scan(self, start_key: str, record_count: int) -> list[tuple[str, Fields]]:
        if record_count <= 0:
            return []
        per_shard = (shard.scan(start_key, record_count) for shard in self._shards.values())
        merged = heapq.merge(*per_shard, key=lambda pair: pair[0])
        return [pair for _, pair in zip(range(record_count), merged)]

    def keys(self) -> Iterator[str]:
        streams = [shard.keys() for shard in self._shards.values()]
        return iter(heapq.merge(*streams))

    def size(self) -> int:
        return sum(shard.size() for shard in self._shards.values())

    # -- writes --------------------------------------------------------------

    def put(self, key: str, value: Mapping[str, str]) -> int:
        return self.shard_for(key).put(key, value)

    def put_if_version(
        self, key: str, value: Mapping[str, str], expected_version: int | None
    ) -> int | None:
        return self.shard_for(key).put_if_version(key, value, expected_version)

    def delete(self, key: str) -> bool:
        return self.shard_for(key).delete(key)

    def delete_if_version(self, key: str, expected_version: int) -> bool | None:
        return self.shard_for(key).delete_if_version(key, expected_version)

    # -- lifecycle -----------------------------------------------------------

    def clear(self) -> None:
        for shard in self._shards.values():
            shard.clear()

    def close(self) -> None:
        for shard in self._shards.values():
            shard.close()
