"""Hash-partitioned store over multiple child stores.

Models the *scale-out* property of §II-A: data and request load spread
across many nodes.  Also the substrate for the heterogeneous-transaction
example — the client-coordinated transaction manager can run transactions
whose keys land on different child stores (even stores of different types,
the "hybrid data stores" of §II-B).

Placement uses a consistent-hash ring with virtual nodes so that adding a
shard moves only ~1/n of the keys (the *elasticity* property).

Migration-consistency guarantees (see docs/CLUSTER.md):

* Routing state is copy-on-write: readers and writers always see a
  complete ``(ring, shards)`` snapshot, never a half-mutated ring.
* Key moves preserve the full :class:`VersionedValue` (version counter
  included) via :meth:`KeyValueStore.put_versioned`, so conditional
  writes keep their test-and-set semantics across a migration.
* Each move is put-on-destination *before* delete-on-source; reads
  racing a migration fall back to the previous ring's owner, so a live
  key is never observed as missing.
* Writes to a key whose owner changed pull the key to its new owner
  first, and every write validates the routing epoch after applying: if
  the ring moved the key mid-write, the write is taken back and replayed
  on the current owner, so a migration cannot strand a write on a shard
  that no longer owns the key.

Residual caveat (documented in docs/CLUSTER.md): a *delete* racing the
migration of its own key can be resurrected by the in-flight copy; the
transaction layer is immune (its deletes are CAS-validated TxRecord
writes), and the crash campaigns run delete-free CEW for this reason.
"""

from __future__ import annotations

import bisect
import heapq
import threading
from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass

from ..generators.hashing import fnv1a_64
from .base import Fields, KeyValueStore, VersionedValue

__all__ = ["ConsistentHashRing", "ShardedKVStore"]


class ConsistentHashRing:
    """Consistent hashing with virtual nodes.

    Each shard name is hashed ``replicas`` times onto a 64-bit ring; a key
    is owned by the first virtual node at-or-clockwise-from its hash — a
    key hashing *exactly onto* a virtual-node point belongs to that node,
    matching the ``bisect_left`` order used at insertion time.
    """

    def __init__(self, shard_names: Sequence[str], replicas: int = 64):
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self._replicas = replicas
        self._ring: list[tuple[int, str]] = []
        self._points: list[int] = []
        self._names: list[str] = []
        for name in shard_names:
            self.add_shard(name)

    @staticmethod
    def _hash(token: str) -> int:
        return fnv1a_64(token.encode("utf-8"))

    def copy(self) -> "ConsistentHashRing":
        """An independent ring with the same shards and replica count."""
        duplicate = type(self)([], replicas=self._replicas)
        duplicate._ring = list(self._ring)
        duplicate._points = list(self._points)
        duplicate._names = list(self._names)
        return duplicate

    def add_shard(self, name: str) -> None:
        if name in self._names:
            raise ValueError(f"shard {name!r} already on the ring")
        self._names.append(name)
        for replica in range(self._replicas):
            point = self._hash(f"{name}#{replica}")
            index = bisect.bisect_left(self._ring, (point, name))
            self._ring.insert(index, (point, name))
        self._points = [point for point, _ in self._ring]

    def remove_shard(self, name: str) -> None:
        if name not in self._names:
            raise ValueError(f"shard {name!r} not on the ring")
        self._names.remove(name)
        self._ring = [(point, owner) for point, owner in self._ring if owner != name]
        self._points = [point for point, _ in self._ring]

    def shard_names(self) -> list[str]:
        return list(self._names)

    def owner(self, key: str) -> str:
        """Name of the shard owning ``key``."""
        if not self._ring:
            raise RuntimeError("hash ring is empty")
        point = self._hash(key)
        # bisect_left, symmetric with add_shard's insertion order: a key
        # whose hash equals a virtual-node point is owned by that node
        # (bisect_right would skip it and hand the key to the next node).
        index = bisect.bisect_left(self._points, point)
        if index == len(self._ring):
            index = 0
        return self._ring[index][1]


@dataclass(frozen=True, slots=True)
class _Routing:
    """One immutable routing snapshot, swapped atomically on membership change.

    ``prev_ring``/``prev_shards`` are only set while a migration is in
    flight: they let readers fall back to a key's previous owner and let
    writers pull not-yet-moved keys to their new owner.
    """

    ring: ConsistentHashRing
    shards: dict[str, KeyValueStore]
    prev_ring: ConsistentHashRing | None = None
    prev_shards: dict[str, KeyValueStore] | None = None


class ShardedKVStore(KeyValueStore):
    """Routes each key to one of several child stores by consistent hash.

    Scans merge the per-shard ordered streams with a heap, so a ranged
    ``scan`` behaves exactly like it would on a single ordered store.

    ``add_shard``/``remove_shard`` rebalance online: routing swaps to the
    new ring immediately (copy-on-write) and keys then move one at a time
    under a move mutex, preserving version metadata.  Concurrent reads
    and writes stay correct throughout — see the module docstring.
    """

    def __init__(self, shards: Mapping[str, KeyValueStore], replicas: int = 64):
        if not shards:
            raise ValueError("at least one shard is required")
        owned = dict(shards)
        self._routing = _Routing(
            ConsistentHashRing(list(owned), replicas=replicas), owned
        )
        # Serializes membership changes (one migration at a time).  Key
        # moves themselves are lock-free: `_move_key` is idempotent
        # (insert-if-absent on the target, conditional delete of exactly
        # the copied version on the source), so a migrator and a writer
        # pulling the same key forward cannot corrupt each other — and no
        # mutex is ever held across a store call, which keeps the store
        # deadlock-free under the cooperative sim scheduler.
        self._admin_lock = threading.Lock()

    @property
    def shard_count(self) -> int:
        return len(self._routing.shards)

    def shard_for(self, key: str) -> KeyValueStore:
        """The child store that owns ``key`` (current ring)."""
        snapshot = self._routing
        return snapshot.shards[snapshot.ring.owner(key)]

    def shard_names(self) -> list[str]:
        return self._routing.ring.shard_names()

    # -- migration ------------------------------------------------------------

    @staticmethod
    def _move_key(key: str, source: KeyValueStore, target: KeyValueStore) -> bool:
        """Move one key, version intact: install on target, then drop source.

        Insert-if-absent on the target means a newer client write there
        wins over the migrated copy; the conditional delete on the source
        removes exactly the copied version.  The protocol is idempotent,
        so concurrent moves of the same key are harmless.
        """
        versioned = source.get_with_meta(key)
        if versioned is None:
            return False
        installed = target.put_versioned(key, versioned)
        source.delete_if_version(key, versioned.version)
        return installed

    def _pull_forward(self, snapshot: _Routing, key: str, owner: str, store: KeyValueStore) -> None:
        """Move ``key`` to its new owner before writing, when a migration is
        in flight and the key's owner changed."""
        if snapshot.prev_ring is None:
            return
        prev_owner = snapshot.prev_ring.owner(key)
        if prev_owner == owner or prev_owner not in snapshot.prev_shards:
            return
        if not store.contains(key):
            self._move_key(key, snapshot.prev_shards[prev_owner], store)

    def _apply_write(self, key: str, op) -> object:
        """Apply ``op(store)`` on the key's owner with routing-epoch validation.

        ``op`` returns ``(result, undo_version)`` — the version the op
        created, or None when it wrote nothing.  If the ring moved the key
        to a different owner while the op was in flight, the write may
        have landed on a shard that no longer owns the key: take back
        exactly what we wrote and replay against the current owner.
        """
        while True:
            snapshot = self._routing
            owner = snapshot.ring.owner(key)
            store = snapshot.shards[owner]
            self._pull_forward(snapshot, key, owner, store)
            result, undo_version = op(store)
            current = self._routing
            if current is snapshot or current.ring.owner(key) == owner:
                return result
            if undo_version is not None:
                store.delete_if_version(key, undo_version)

    def add_shard(self, name: str, store: KeyValueStore) -> int:
        """Attach a new shard and migrate the keys it now owns.

        Returns the number of keys moved — the elasticity metric: with a
        balanced ring this is about ``size / (n + 1)``.
        """
        with self._admin_lock:
            snapshot = self._routing
            if name in snapshot.shards:
                raise ValueError(f"shard {name!r} already exists")
            new_ring = snapshot.ring.copy()
            new_ring.add_shard(name)
            new_shards = {**snapshot.shards, name: store}
            self._routing = _Routing(new_ring, new_shards, snapshot.ring, snapshot.shards)
            moved = 0
            try:
                for shard_name, shard in snapshot.shards.items():
                    for key in list(shard.keys()):
                        if new_ring.owner(key) != name:
                            continue
                        if self._move_key(key, shard, store):
                            moved += 1
            finally:
                self._routing = _Routing(new_ring, new_shards)
            return moved

    def remove_shard(self, name: str) -> int:
        """Detach a shard, draining its keys to their new owners first.

        The drain path the cluster needs for planned scale-in: routing
        swaps to the shrunk ring immediately, then every key on the
        leaving shard moves (version intact) to the shard that now owns
        it.  Returns the number of keys moved.
        """
        with self._admin_lock:
            snapshot = self._routing
            if name not in snapshot.shards:
                raise ValueError(f"shard {name!r} does not exist")
            if len(snapshot.shards) == 1:
                raise ValueError("cannot remove the last shard")
            new_ring = snapshot.ring.copy()
            new_ring.remove_shard(name)
            new_shards = {
                shard: store for shard, store in snapshot.shards.items() if shard != name
            }
            self._routing = _Routing(new_ring, new_shards, snapshot.ring, snapshot.shards)
            source = snapshot.shards[name]
            moved = 0
            try:
                for key in list(source.keys()):
                    target = new_shards[new_ring.owner(key)]
                    if self._move_key(key, source, target):
                        moved += 1
            finally:
                self._routing = _Routing(new_ring, new_shards)
            return moved

    # -- reads ---------------------------------------------------------------

    def get_with_meta(self, key: str) -> VersionedValue | None:
        while True:
            snapshot = self._routing
            owner = snapshot.ring.owner(key)
            if snapshot.prev_ring is not None:
                # Migration in flight: check the previous owner first.
                # Moves are put-before-delete, so prev-miss means the key
                # (if it exists) is already at its current owner.
                prev_owner = snapshot.prev_ring.owner(key)
                if prev_owner != owner and prev_owner in snapshot.prev_shards:
                    found = snapshot.prev_shards[prev_owner].get_with_meta(key)
                    if found is not None:
                        return found
            found = snapshot.shards[owner].get_with_meta(key)
            if found is not None or self._routing is snapshot:
                return found
            # The routing epoch changed underneath the read — the key may
            # have moved mid-read.  Retry against the fresh snapshot.

    def scan(self, start_key: str, record_count: int) -> list[tuple[str, Fields]]:
        if record_count <= 0:
            return []
        snapshot = self._routing
        stores: list[KeyValueStore] = list(snapshot.shards.values())
        if snapshot.prev_shards is not None:
            stores.extend(
                store for name, store in snapshot.prev_shards.items()
                if name not in snapshot.shards
            )
        per_shard = (store.scan(start_key, record_count) for store in stores)
        merged = heapq.merge(*per_shard, key=lambda pair: pair[0])
        results: list[tuple[str, Fields]] = []
        last_key: str | None = None
        for pair in merged:
            if pair[0] == last_key:  # key present on two shards mid-move
                continue
            results.append(pair)
            last_key = pair[0]
            if len(results) == record_count:
                break
        return results

    def keys(self) -> Iterator[str]:
        snapshot = self._routing
        streams = [store.keys() for store in snapshot.shards.values()]
        if snapshot.prev_shards is not None:
            streams.extend(
                store.keys() for name, store in snapshot.prev_shards.items()
                if name not in snapshot.shards
            )
        merged = heapq.merge(*streams)
        seen_last: list[str | None] = [None]

        def _dedup() -> Iterator[str]:
            for key in merged:
                if key != seen_last[0]:
                    seen_last[0] = key
                    yield key

        return _dedup()

    def size(self) -> int:
        snapshot = self._routing
        if snapshot.prev_shards is None:
            return sum(shard.size() for shard in snapshot.shards.values())
        # Mid-migration a key can briefly live on two shards; count distinct.
        return sum(1 for _ in self.keys())

    # -- writes --------------------------------------------------------------

    def put(self, key: str, value: Mapping[str, str]) -> int:
        def op(store: KeyValueStore):
            version = store.put(key, value)
            return version, version

        return self._apply_write(key, op)

    def put_if_version(
        self, key: str, value: Mapping[str, str], expected_version: int | None
    ) -> int | None:
        def op(store: KeyValueStore):
            version = store.put_if_version(key, value, expected_version)
            return version, version

        return self._apply_write(key, op)

    def put_versioned(self, key: str, versioned: VersionedValue) -> bool:
        def op(store: KeyValueStore):
            installed = store.put_versioned(key, versioned)
            return installed, versioned.version if installed else None

        return self._apply_write(key, op)

    def delete(self, key: str) -> bool:
        def op(store: KeyValueStore):
            return store.delete(key), None

        return self._apply_write(key, op)

    def delete_if_version(self, key: str, expected_version: int) -> bool | None:
        def op(store: KeyValueStore):
            return store.delete_if_version(key, expected_version), None

        return self._apply_write(key, op)

    # -- lifecycle -----------------------------------------------------------

    def clear(self) -> None:
        for shard in self._routing.shards.values():
            shard.clear()

    def close(self) -> None:
        for shard in self._routing.shards.values():
            shard.close()
