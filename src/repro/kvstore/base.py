"""Key-value store interface.

Every storage substrate in this repository — the in-memory hash store, the
log-structured engine, the simulated cloud stores, shards and replicas —
implements :class:`KeyValueStore`.  The interface deliberately mirrors what
the paper assumes of a NoSQL store (§II-A):

* single-item ``get``/``put``/``delete`` that are individually atomic,
* ``scan`` over a key range,
* *test-and-set* style conditional writes (``put_if_version``), the
  "richer operations such as test-and-set or conditional put" the paper
  mentions — the client-coordinated transaction layer is built on them.

Values are flat string-to-string field maps, matching YCSB records.  Each
key carries a monotonically increasing integer ``version`` that doubles as
an ETag for conditional operations.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterator, Mapping
from dataclasses import dataclass

__all__ = [
    "Fields",
    "VersionedValue",
    "KeyValueStore",
    "StoreError",
    "RateLimitExceeded",
    "StoreUnavailable",
    "StoreClosed",
    "TransientStoreError",
]

#: A record: field name -> field value.
Fields = dict[str, str]


class StoreError(Exception):
    """Base class for storage failures."""


class RateLimitExceeded(StoreError):
    """The store's request-rate ceiling rejected this request (HTTP 503)."""


class StoreUnavailable(StoreError):
    """The store (or the contacted replica) is temporarily unreachable."""


class StoreClosed(StoreError):
    """The store has been closed and can no longer serve requests."""


class TransientStoreError(StoreError):
    """A transient request failure (5xx, dropped connection, timeout).

    The request *may or may not* have been applied by the store — exactly
    the ambiguity a real cloud client faces when a write times out.  Safe
    to retry for idempotent operations; conditional writes must verify
    before deciding (see :mod:`repro.core.retry`).
    """


@dataclass(frozen=True, slots=True)
class VersionedValue:
    """A record value together with its version (ETag).

    ``version`` starts at 1 for a fresh key and increases with every
    successful write to that key.
    """

    value: Fields
    version: int


class KeyValueStore(ABC):
    """Abstract single-item-atomic key-value store.

    Implementations must make each individual method call atomic and
    thread-safe, but — exactly like the systems the paper studies — they
    promise nothing across calls: an unprotected read-modify-write is a
    race, and demonstrating the resulting anomalies is the point of the
    Closed Economy Workload.
    """

    # -- reads ---------------------------------------------------------------

    @abstractmethod
    def get_with_meta(self, key: str) -> VersionedValue | None:
        """The value and version of ``key``, or None if absent."""

    def get(self, key: str) -> Fields | None:
        """The value of ``key``, or None if absent."""
        found = self.get_with_meta(key)
        return None if found is None else found.value

    @abstractmethod
    def scan(self, start_key: str, record_count: int) -> list[tuple[str, Fields]]:
        """Up to ``record_count`` records with key >= ``start_key``.

        Results are ordered by key.  ``record_count <= 0`` returns an
        empty list.
        """

    def contains(self, key: str) -> bool:
        """True when ``key`` currently exists."""
        return self.get_with_meta(key) is not None

    @abstractmethod
    def keys(self) -> Iterator[str]:
        """All live keys, in sorted order (snapshot semantics not required)."""

    @abstractmethod
    def size(self) -> int:
        """Number of live keys."""

    # -- writes --------------------------------------------------------------

    @abstractmethod
    def put(self, key: str, value: Mapping[str, str]) -> int:
        """Unconditionally write ``key``; returns the new version."""

    @abstractmethod
    def put_if_version(
        self, key: str, value: Mapping[str, str], expected_version: int | None
    ) -> int | None:
        """Conditional write (test-and-set).

        ``expected_version=None`` means *insert-if-absent*.  Returns the
        new version on success, or None when the precondition failed (the
        key's current version differs, or the key exists for an insert).
        """

    def put_versioned(self, key: str, versioned: VersionedValue) -> bool:
        """Restore ``key`` to an exact :class:`VersionedValue` — migration hook.

        Unlike :meth:`put`, the version counter is *preserved*, so a key
        moved between shards keeps its ETag history and in-flight
        conditional writes keep their semantics.  The restore is
        insert-if-absent: if the key already exists (e.g. a client wrote
        to the destination shard while the migration was in flight) the
        newer write wins and the restore is skipped.

        Returns True when the value was installed, False when the key
        already existed.  Stores that cannot restore versions raise
        ``NotImplementedError``; wrappers delegate to their inner store.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support versioned restore"
        )

    @abstractmethod
    def delete(self, key: str) -> bool:
        """Remove ``key``; True when it existed."""

    @abstractmethod
    def delete_if_version(self, key: str, expected_version: int) -> bool | None:
        """Conditional delete.

        Returns True on success, None when the precondition failed, and
        False when the key did not exist at all.
        """

    # -- lifecycle -----------------------------------------------------------

    def clear(self) -> None:
        """Remove every key.  Default: delete one by one."""
        for key in list(self.keys()):
            self.delete(key)

    def close(self) -> None:
        """Release resources.  Default: no-op."""

    def __enter__(self) -> "KeyValueStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
