"""Simulated cloud object stores (Windows Azure Storage / Google Cloud Storage).

The paper's Fig. 2 experiments ran YCSB+T on EC2 against a single WAS
container.  Three properties of that setup shape the curve and are modelled
here explicitly:

* **per-request latency** — WAN round trip plus service time; drawn from a
  lognormal model (long right tail),
* **a per-container request-rate ceiling** — both WAS and GCS throttle a
  container; once client threads collectively exceed it, extra threads add
  queueing delay, not throughput (the plateau between 16 and 32 threads),
* **single-item atomicity with conditional operations** — ETags / ``If-Match``
  map onto the :meth:`~repro.kvstore.base.KeyValueStore.put_if_version`
  interface, which the client-coordinated transaction layer builds on.

Latency values default to roughly one tenth of the real services' so that
experiments complete in seconds; the scale factor is configurable and the
shape of the results does not depend on it.
"""

from __future__ import annotations

import random
import threading
from collections.abc import Iterator, Mapping
from dataclasses import dataclass

from ..sim.clock import ambient_monotonic, ambient_sleep
from .base import Fields, KeyValueStore, RateLimitExceeded, VersionedValue
from .latency import LatencyModel, LognormalLatency, NoLatency
from .memory import InMemoryKVStore
from .ratelimit import TokenBucket

__all__ = ["CloudStoreProfile", "SimulatedCloudStore", "WAS_PROFILE", "GCS_PROFILE"]


@dataclass(frozen=True)
class CloudStoreProfile:
    """Shape parameters of a simulated cloud store.

    Attributes:
        name: profile label used in reports.
        read_median_s / write_median_s: median service times.
        sigma: lognormal spread of the latency distributions.
        requests_per_second: container-wide request-rate ceiling.
        burst: token-bucket burst capacity (requests).
        reject_on_throttle: True → throttled requests fail with
            :class:`RateLimitExceeded` (HTTP 503); False → they queue,
            which is how a client library with built-in retry behaves and
            is what produces the paper's plateau rather than errors.
    """

    name: str
    read_median_s: float
    write_median_s: float
    sigma: float
    requests_per_second: float
    burst: float
    reject_on_throttle: bool = False

    def scaled(self, factor: float) -> "CloudStoreProfile":
        """Speed the profile up by ``factor`` (latency / f, rate * f)."""
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        return CloudStoreProfile(
            name=self.name,
            read_median_s=self.read_median_s / factor,
            write_median_s=self.write_median_s / factor,
            sigma=self.sigma,
            requests_per_second=self.requests_per_second * factor,
            burst=self.burst * factor,
            reject_on_throttle=self.reject_on_throttle,
        )


#: Windows Azure Storage, as observed from an EC2 client (same-coast WAN).
#: Real-world medians are ~15 ms reads / ~25 ms writes with a container
#: ceiling of ~500 requests/s — the numbers behind Fig. 2's 491 tps plateau.
WAS_PROFILE = CloudStoreProfile(
    name="was",
    read_median_s=0.015,
    write_median_s=0.025,
    sigma=0.35,
    requests_per_second=1000.0,
    burst=64.0,
)

#: Google Cloud Storage: slightly higher latency, similar ceiling.
GCS_PROFILE = CloudStoreProfile(
    name="gcs",
    read_median_s=0.020,
    write_median_s=0.030,
    sigma=0.40,
    requests_per_second=900.0,
    burst=64.0,
)


class SimulatedCloudStore(KeyValueStore):
    """An in-memory store behind a simulated cloud request path.

    Every data-path request pays: token-bucket admission (queueing or 503),
    then a sampled service time.  ``keys()``/``size()`` bypass the request
    path — they exist for validation stages and tests, not for the
    benchmark data path.
    """

    def __init__(
        self,
        profile: CloudStoreProfile = WAS_PROFILE,
        scale: float = 1.0,
        rng: random.Random | None = None,
        sleep=ambient_sleep,
        clock=ambient_monotonic,
    ):
        profile = profile.scaled(scale) if scale != 1.0 else profile
        self._profile = profile
        self._rng = rng or random.Random()
        self._sleep = sleep
        self._inner = InMemoryKVStore()
        self._read_latency: LatencyModel = (
            LognormalLatency(profile.read_median_s, profile.sigma, self._rng)
            if profile.read_median_s > 0
            else NoLatency()
        )
        self._write_latency: LatencyModel = (
            LognormalLatency(profile.write_median_s, profile.sigma, self._rng)
            if profile.write_median_s > 0
            else NoLatency()
        )
        self._bucket = TokenBucket(profile.requests_per_second, profile.burst, clock=clock)
        self._throttle_lock = threading.Lock()
        self._throttled_requests = 0

    @property
    def profile(self) -> CloudStoreProfile:
        return self._profile

    @property
    def backing_store(self) -> InMemoryKVStore:
        """Direct, latency-free access to the stored data.

        For experiment *setup* (bulk pre-population) and verification —
        never for the measured data path, which must go through the
        request machinery.
        """
        return self._inner

    @property
    def throttled_requests(self) -> int:
        """Requests that hit the rate ceiling (queued or rejected)."""
        return self._throttled_requests

    @property
    def bucket(self) -> TokenBucket:
        """The container's admission token bucket (fault injection drains it)."""
        return self._bucket

    def _admit(self) -> None:
        if self._bucket.try_acquire():
            return
        with self._throttle_lock:
            self._throttled_requests += 1
        if self._profile.reject_on_throttle:
            raise RateLimitExceeded(
                f"{self._profile.name}: container request rate exceeded"
            )
        self._bucket.acquire(sleep=self._sleep)

    def _request(self, latency: LatencyModel) -> None:
        self._admit()
        delay = latency.sample()
        if delay > 0:
            self._sleep(delay)

    # -- reads ---------------------------------------------------------------

    def get_with_meta(self, key: str) -> VersionedValue | None:
        self._request(self._read_latency)
        return self._inner.get_with_meta(key)

    def scan(self, start_key: str, record_count: int) -> list[tuple[str, Fields]]:
        self._request(self._read_latency)
        return self._inner.scan(start_key, record_count)

    def keys(self) -> Iterator[str]:
        return self._inner.keys()

    def size(self) -> int:
        return self._inner.size()

    # -- writes --------------------------------------------------------------

    def put(self, key: str, value: Mapping[str, str]) -> int:
        self._request(self._write_latency)
        return self._inner.put(key, value)

    def put_versioned(self, key, versioned) -> bool:
        self._request(self._write_latency)
        return self._inner.put_versioned(key, versioned)

    def put_if_version(
        self, key: str, value: Mapping[str, str], expected_version: int | None
    ) -> int | None:
        self._request(self._write_latency)
        return self._inner.put_if_version(key, value, expected_version)

    def delete(self, key: str) -> bool:
        self._request(self._write_latency)
        return self._inner.delete(key)

    def delete_if_version(self, key: str, expected_version: int) -> bool | None:
        self._request(self._write_latency)
        return self._inner.delete_if_version(key, expected_version)

    # -- lifecycle -----------------------------------------------------------

    def clear(self) -> None:
        self._inner.clear()

    def close(self) -> None:
        self._inner.close()
