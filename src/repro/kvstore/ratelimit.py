"""Token-bucket rate limiting.

Azure Storage and Google Cloud Storage throttle each container/bucket at a
target request rate; exceeding it yields 503 "server busy" responses.  The
paper attributes Figure 2's throughput plateau at 32 threads to exactly
such a per-container ceiling ("we are hitting a request rate limit").  The
token bucket here reproduces that behaviour for the simulated cloud store.
"""

from __future__ import annotations

import threading

from ..sim.clock import ambient_monotonic, ambient_sleep

__all__ = ["TokenBucket"]

#: Tokens within this of the requirement count as available.  Refill
#: arithmetic leaves float dust (a deficit of ~1e-15 tokens), and waiting
#: it out would mean pauses too small to advance a virtual clock at all
#: (now + 1e-18 == now in float64) — a Zeno loop that freezes simulated
#: time.  Wall clocks self-advance, which is why only simulation hits it.
_TOKEN_EPSILON = 1e-9

#: Smallest blocking pause: short enough to be invisible in any measured
#: latency, large enough that a virtual clock reliably moves forward.
_MIN_PAUSE_S = 1e-7


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, capacity ``burst``.

    :meth:`try_acquire` is non-blocking (a rejected request models a 503);
    :meth:`acquire` blocks until a token is available (models client-side
    retry with backoff folded into latency).
    """

    def __init__(self, rate: float, burst: float | None = None, clock=ambient_monotonic):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self._rate = rate
        self._capacity = burst if burst is not None else rate
        if self._capacity <= 0:
            raise ValueError(f"burst must be positive, got {burst}")
        self._tokens = self._capacity
        self._clock = clock
        self._last_refill = clock()
        self._lock = threading.Lock()

    @property
    def rate(self) -> float:
        return self._rate

    def _refill_locked(self) -> None:
        now = self._clock()
        elapsed = now - self._last_refill
        if elapsed > 0:
            self._tokens = min(self._capacity, self._tokens + elapsed * self._rate)
            self._last_refill = now
        elif elapsed < 0:
            # The clock moved backwards: the ambient clock switched between
            # wall and virtual time after construction. Re-anchor instead of
            # freezing refills forever.
            self._last_refill = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; False otherwise (no waiting)."""
        with self._lock:
            self._refill_locked()
            if self._tokens + _TOKEN_EPSILON >= tokens:
                self._tokens = max(0.0, self._tokens - tokens)
                return True
            return False

    def acquire(self, tokens: float = 1.0, sleep=ambient_sleep) -> float:
        """Block until ``tokens`` are available; returns seconds waited."""
        waited = 0.0
        while True:
            with self._lock:
                self._refill_locked()
                if self._tokens + _TOKEN_EPSILON >= tokens:
                    self._tokens = max(0.0, self._tokens - tokens)
                    return waited
                deficit = tokens - self._tokens
                pause = max(deficit / self._rate, _MIN_PAUSE_S)
            sleep(pause)
            waited += pause

    def available(self) -> float:
        """Approximate tokens currently available."""
        with self._lock:
            self._refill_locked()
            return self._tokens

    def drain(self) -> float:
        """Take every available token; returns how many were taken.

        Models a throttle burst: an external event (a noisy neighbour, a
        background compaction) momentarily consumes the container's whole
        request budget, so subsequent requests queue or get 503s until the
        bucket refills.
        """
        with self._lock:
            self._refill_locked()
            taken = self._tokens
            self._tokens = 0.0
            return taken
