"""Primary/replica store with asynchronous replication.

Models the *synchronous versus asynchronous replication* trade-off of
§II-A and the weak-consistency reads of early NoSQL systems: writes go to
the primary and are applied to replicas after a replication delay, so a
read served by a replica can return **stale** data (the paper's
"time-line" / eventual-consistency regimes).

Replication here is logical, not threaded: each write enqueues a
replication event stamped with ``apply_at = now + lag``; replica reads
first apply every event that has come due.  That keeps behaviour fully
deterministic under an injected clock, which the consistency-tier tests
rely on.
"""

from __future__ import annotations

import random
import threading
from collections import deque
from collections.abc import Iterator, Mapping
from dataclasses import dataclass
from enum import Enum

from .base import Fields, KeyValueStore, VersionedValue
from ..sim.clock import ambient_monotonic
from .memory import InMemoryKVStore

__all__ = ["ReadPreference", "ReplicatedKVStore"]


class ReadPreference(Enum):
    """Where reads are served from."""

    PRIMARY = "primary"
    REPLICA = "replica"
    RANDOM = "random"


@dataclass(frozen=True, slots=True)
class _ReplicationEvent:
    apply_at: float
    key: str
    value: Fields | None  # None is a delete
    version: int
    #: Store-wide monotonic stamp.  Per-key versions restart at 1 after a
    #: delete+reinsert, so they cannot totally order a delayed delete
    #: against a later put to the same key; ``seq`` can.
    seq: int = 0


class ReplicatedKVStore(KeyValueStore):
    """One primary, N asynchronous replicas, bounded replication lag.

    Args:
        replica_count: number of read replicas.
        lag_seconds: replication delay applied to every write.
        read_preference: which node serves ``get``/``scan``.
        clock: injectable monotonic clock (tests pass a fake).
    """

    def __init__(
        self,
        replica_count: int = 1,
        lag_seconds: float = 0.05,
        read_preference: ReadPreference = ReadPreference.REPLICA,
        rng: random.Random | None = None,
        clock=ambient_monotonic,
    ):
        if replica_count < 1:
            raise ValueError(f"replica_count must be >= 1, got {replica_count}")
        if lag_seconds < 0:
            raise ValueError(f"lag_seconds must be >= 0, got {lag_seconds}")
        self._primary = InMemoryKVStore()
        self._replicas = [InMemoryKVStore() for _ in range(replica_count)]
        self._queues: list[deque[_ReplicationEvent]] = [deque() for _ in range(replica_count)]
        self._lag = lag_seconds
        self._read_preference = read_preference
        self._rng = rng or random.Random()
        self._clock = clock
        self._lock = threading.RLock()
        self._seq = 0  # store-wide event order; see _ReplicationEvent.seq

    @property
    def lag_seconds(self) -> float:
        return self._lag

    @property
    def replica_count(self) -> int:
        return len(self._replicas)

    # -- replication machinery -----------------------------------------------

    def _enqueue(self, key: str, value: Fields | None, version: int) -> None:
        self._seq += 1
        event = _ReplicationEvent(
            self._clock() + self._lag, key, value, version, self._seq
        )
        for queue in self._queues:
            queue.append(event)

    def _apply_due(self, replica_index: int) -> None:
        now = self._clock()
        queue = self._queues[replica_index]
        replica = self._replicas[replica_index]
        while queue and queue[0].apply_at <= now:
            event = queue.popleft()
            if event.value is None:
                replica.delete(event.key)
            else:
                replica.put(event.key, event.value)

    def flush_replication(self) -> None:
        """Apply every pending event regardless of its due time."""
        with self._lock:
            for index, queue in enumerate(self._queues):
                replica = self._replicas[index]
                while queue:
                    event = queue.popleft()
                    if event.value is None:
                        replica.delete(event.key)
                    else:
                        replica.put(event.key, event.value)

    def replication_backlog(self) -> int:
        """Total number of pending replication events."""
        with self._lock:
            return sum(len(queue) for queue in self._queues)

    def _read_node(self) -> KeyValueStore:
        preference = self._read_preference
        if preference is ReadPreference.PRIMARY:
            return self._primary
        if preference is ReadPreference.RANDOM and self._rng.random() < 0.5:
            return self._primary
        index = self._rng.randrange(len(self._replicas))
        self._apply_due(index)
        return self._replicas[index]

    # -- reads ---------------------------------------------------------------

    def get_with_meta(self, key: str) -> VersionedValue | None:
        with self._lock:
            return self._read_node().get_with_meta(key)

    def scan(self, start_key: str, record_count: int) -> list[tuple[str, Fields]]:
        with self._lock:
            return self._read_node().scan(start_key, record_count)

    def keys(self) -> Iterator[str]:
        # Materialised under the lock: the snapshot must not depend on the
        # backing store handing out an already-safe iterator, and must stay
        # valid while writers keep mutating the primary.
        with self._lock:
            return iter(list(self._primary.keys()))

    def size(self) -> int:
        with self._lock:
            return self._primary.size()

    # -- writes (always through the primary) ----------------------------------

    def put(self, key: str, value: Mapping[str, str]) -> int:
        with self._lock:
            version = self._primary.put(key, value)
            self._enqueue(key, dict(value), version)
            return version

    def put_if_version(
        self, key: str, value: Mapping[str, str], expected_version: int | None
    ) -> int | None:
        with self._lock:
            version = self._primary.put_if_version(key, value, expected_version)
            if version is not None:
                self._enqueue(key, dict(value), version)
            return version

    def delete(self, key: str) -> bool:
        with self._lock:
            current = self._primary.get_with_meta(key)
            existed = self._primary.delete(key)
            if existed:
                # A tombstone stamped version 0 would sort *before* the put
                # it deletes; stamp it one past the version it removed so
                # the per-key version sequence stays monotonic.
                self._enqueue(key, None, current.version + 1)
            return existed

    def delete_if_version(self, key: str, expected_version: int) -> bool | None:
        with self._lock:
            result = self._primary.delete_if_version(key, expected_version)
            if result is True:
                self._enqueue(key, None, expected_version + 1)
            return result

    # -- lifecycle -----------------------------------------------------------

    def clear(self) -> None:
        with self._lock:
            self._primary.clear()
            for replica in self._replicas:
                replica.clear()
            for queue in self._queues:
                queue.clear()

    def close(self) -> None:
        with self._lock:
            self._primary.close()
            for replica in self._replicas:
                replica.close()
