"""Thread-safe in-memory hash store.

This is the "raw" store of the evaluation: each individual call is atomic
(guarded by one mutex), nothing is atomic across calls.  It stands in for
the WiredTiger instance of §V-C when no durability is needed.
"""

from __future__ import annotations

import bisect
import threading
from collections.abc import Iterator, Mapping

from .base import Fields, KeyValueStore, StoreClosed, VersionedValue

__all__ = ["InMemoryKVStore"]


class InMemoryKVStore(KeyValueStore):
    """Mutex-protected dict store with per-key versions and ordered scans.

    A sorted key index is maintained incrementally so that ``scan`` is
    O(log n + k) instead of sorting the whole key set per call — scans are
    on CEW's critical path (the validation stage reads every record).
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._data: dict[str, VersionedValue] = {}
        self._sorted_keys: list[str] = []
        self._closed = False

    # -- internal helpers ----------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosed("store is closed")

    def _index_add(self, key: str) -> None:
        index = bisect.bisect_left(self._sorted_keys, key)
        if index == len(self._sorted_keys) or self._sorted_keys[index] != key:
            self._sorted_keys.insert(index, key)

    def _index_remove(self, key: str) -> None:
        index = bisect.bisect_left(self._sorted_keys, key)
        if index < len(self._sorted_keys) and self._sorted_keys[index] == key:
            del self._sorted_keys[index]

    # -- reads ---------------------------------------------------------------

    def get_with_meta(self, key: str) -> VersionedValue | None:
        with self._lock:
            self._check_open()
            found = self._data.get(key)
            if found is None:
                return None
            # Copy the field map so callers can mutate their view safely.
            return VersionedValue(dict(found.value), found.version)

    def scan(self, start_key: str, record_count: int) -> list[tuple[str, Fields]]:
        if record_count <= 0:
            return []
        with self._lock:
            self._check_open()
            start = bisect.bisect_left(self._sorted_keys, start_key)
            selected = self._sorted_keys[start : start + record_count]
            return [(key, dict(self._data[key].value)) for key in selected]

    def keys(self) -> Iterator[str]:
        with self._lock:
            self._check_open()
            snapshot = list(self._sorted_keys)
        return iter(snapshot)

    def size(self) -> int:
        with self._lock:
            self._check_open()
            return len(self._data)

    # -- writes --------------------------------------------------------------

    def put(self, key: str, value: Mapping[str, str]) -> int:
        with self._lock:
            self._check_open()
            current = self._data.get(key)
            version = 1 if current is None else current.version + 1
            self._data[key] = VersionedValue(dict(value), version)
            if current is None:
                self._index_add(key)
            return version

    def put_if_version(
        self, key: str, value: Mapping[str, str], expected_version: int | None
    ) -> int | None:
        with self._lock:
            self._check_open()
            current = self._data.get(key)
            if expected_version is None:
                if current is not None:
                    return None
                version = 1
            else:
                if current is None or current.version != expected_version:
                    return None
                version = current.version + 1
            self._data[key] = VersionedValue(dict(value), version)
            if current is None:
                self._index_add(key)
            return version

    def put_versioned(self, key: str, versioned: VersionedValue) -> bool:
        with self._lock:
            self._check_open()
            if key in self._data:
                return False
            self._data[key] = VersionedValue(dict(versioned.value), versioned.version)
            self._index_add(key)
            return True

    def delete(self, key: str) -> bool:
        with self._lock:
            self._check_open()
            if key not in self._data:
                return False
            del self._data[key]
            self._index_remove(key)
            return True

    def delete_if_version(self, key: str, expected_version: int) -> bool | None:
        with self._lock:
            self._check_open()
            current = self._data.get(key)
            if current is None:
                return False
            if current.version != expected_version:
                return None
            del self._data[key]
            self._index_remove(key)
            return True

    # -- lifecycle -----------------------------------------------------------

    def clear(self) -> None:
        with self._lock:
            self._check_open()
            self._data.clear()
            self._sorted_keys.clear()

    def close(self) -> None:
        with self._lock:
            self._closed = True
