"""In-memory write buffer (memtable) for the log-structured store.

Holds the most recent version of every key written since the last flush,
including tombstones for deletes.  Keys are kept in a sorted index so the
memtable can serve ordered scans and be flushed to a sorted segment file
without a final sort.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterator
from dataclasses import dataclass

from ..base import Fields

__all__ = ["MemtableEntry", "Memtable"]


@dataclass(frozen=True, slots=True)
class MemtableEntry:
    """Latest buffered state of one key.

    ``value is None`` marks a tombstone (the key was deleted).
    """

    key: str
    sequence: int
    value: Fields | None

    @property
    def is_tombstone(self) -> bool:
        return self.value is None


class Memtable:
    """Sorted write buffer.  Not thread-safe: the store serialises access."""

    def __init__(self) -> None:
        self._entries: dict[str, MemtableEntry] = {}
        self._sorted_keys: list[str] = []
        self._approximate_bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def approximate_bytes(self) -> int:
        """Rough memory footprint, used for the flush threshold."""
        return self._approximate_bytes

    def _index_add(self, key: str) -> None:
        index = bisect.bisect_left(self._sorted_keys, key)
        if index == len(self._sorted_keys) or self._sorted_keys[index] != key:
            self._sorted_keys.insert(index, key)

    def upsert(self, key: str, sequence: int, value: Fields | None) -> None:
        """Buffer a put (``value``) or delete (``None``) of ``key``."""
        previous = self._entries.get(key)
        if previous is not None:
            self._approximate_bytes -= self._entry_size(previous)
        entry = MemtableEntry(key, sequence, None if value is None else dict(value))
        self._entries[key] = entry
        self._approximate_bytes += self._entry_size(entry)
        if previous is None:
            self._index_add(key)

    @staticmethod
    def _entry_size(entry: MemtableEntry) -> int:
        size = len(entry.key) + 16
        if entry.value is not None:
            size += sum(len(field) + len(value) for field, value in entry.value.items())
        return size

    def lookup(self, key: str) -> MemtableEntry | None:
        """Buffered entry for ``key`` (may be a tombstone), or None."""
        return self._entries.get(key)

    def range_from(self, start_key: str) -> Iterator[MemtableEntry]:
        """Entries with key >= ``start_key`` in key order (incl. tombstones)."""
        index = bisect.bisect_left(self._sorted_keys, start_key)
        for key in self._sorted_keys[index:]:
            yield self._entries[key]

    def entries(self) -> Iterator[MemtableEntry]:
        """All entries in key order (including tombstones)."""
        for key in self._sorted_keys:
            yield self._entries[key]

    def clear(self) -> None:
        self._entries.clear()
        self._sorted_keys.clear()
        self._approximate_bytes = 0
