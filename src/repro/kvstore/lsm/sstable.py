"""Immutable sorted segment files (SSTables) with bloom filters.

A segment holds key-ordered JSON records, each carrying a sequence number
and either a value or a tombstone marker.  Readers keep a full in-memory
key index (segments here are small; a sparse index would be the next step
at scale) plus a bloom filter so that point lookups for absent keys skip
the file entirely — the read-amplification countermeasure every
log-structured engine uses.
"""

from __future__ import annotations

import bisect
import json
from collections.abc import Iterable, Iterator
from pathlib import Path

from ..base import StoreError
from ...generators.hashing import fnv1a_64
from .memtable import MemtableEntry

__all__ = ["BloomFilter", "SSTable", "SSTableCorruptionError"]


class SSTableCorruptionError(StoreError):
    """An SSTable file failed to parse."""


class BloomFilter:
    """Plain k-hash bloom filter over a bit array.

    Double hashing (Kirsch–Mitzenmacher) derives the k probe positions
    from two FNV hashes, which is standard practice and avoids k full
    hash computations.
    """

    def __init__(self, expected_items: int, bits_per_item: int = 10):
        if expected_items < 0:
            raise ValueError("expected_items must be >= 0")
        self._size = max(8, expected_items * bits_per_item)
        self._hash_count = max(1, int(round(bits_per_item * 0.693)))  # k = m/n * ln2
        self._bits = bytearray((self._size + 7) // 8)

    @property
    def size_bits(self) -> int:
        return self._size

    @property
    def hash_count(self) -> int:
        return self._hash_count

    def _positions(self, key: str) -> Iterator[int]:
        data = key.encode("utf-8")
        h1 = fnv1a_64(data)
        h2 = fnv1a_64(data + b"\x00salt") | 1  # odd => full-period stride
        for i in range(self._hash_count):
            yield (h1 + i * h2) % self._size

    def add(self, key: str) -> None:
        for position in self._positions(key):
            self._bits[position >> 3] |= 1 << (position & 7)

    def may_contain(self, key: str) -> bool:
        """False means definitely absent; True means probably present."""
        return all(
            self._bits[position >> 3] & (1 << (position & 7))
            for position in self._positions(key)
        )


class SSTable:
    """A read-only sorted segment on disk.

    File format — line 1 is a JSON header ``{"format": 1, "count": n,
    "min_seq": a, "max_seq": b}``; each following line is one record
    ``{"key": k, "seq": s, "value": {...}}`` (``"value": null`` is a
    tombstone), in strictly ascending key order.
    """

    FORMAT_VERSION = 1

    def __init__(self, path: str | Path):
        self._path = Path(path)
        self._index: dict[str, int] = {}  # key -> byte offset of its line
        self._ordered_keys: list[str] = []
        self._bloom: BloomFilter | None = None
        self.min_sequence = 0
        self.max_sequence = 0
        self._load_index()

    @property
    def path(self) -> Path:
        return self._path

    def __len__(self) -> int:
        return len(self._ordered_keys)

    # -- construction ----------------------------------------------------------

    @classmethod
    def write(cls, path: str | Path, entries: Iterable[MemtableEntry]) -> "SSTable":
        """Persist ``entries`` (already key-ordered) as a new segment."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        materialised = list(entries)
        for earlier, later in zip(materialised, materialised[1:]):
            if earlier.key >= later.key:
                raise ValueError(
                    f"entries not in strictly ascending key order: "
                    f"{earlier.key!r} before {later.key!r}"
                )
        sequences = [entry.sequence for entry in materialised]
        header = {
            "format": cls.FORMAT_VERSION,
            "count": len(materialised),
            "min_seq": min(sequences) if sequences else 0,
            "max_seq": max(sequences) if sequences else 0,
        }
        tmp_path = path.with_suffix(path.suffix + ".tmp")
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header, separators=(",", ":")) + "\n")
            for entry in materialised:
                record = {"key": entry.key, "seq": entry.sequence, "value": entry.value}
                handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        tmp_path.replace(path)  # atomic publish
        return cls(path)

    def _load_index(self) -> None:
        try:
            with open(self._path, "rb") as handle:
                header_line = handle.readline()
                header = json.loads(header_line)
                if header.get("format") != self.FORMAT_VERSION:
                    raise SSTableCorruptionError(
                        f"{self._path}: unsupported format {header.get('format')!r}"
                    )
                self.min_sequence = int(header.get("min_seq", 0))
                self.max_sequence = int(header.get("max_seq", 0))
                expected = int(header.get("count", 0))
                bloom = BloomFilter(expected)
                offset = handle.tell()
                for raw in handle:
                    record = json.loads(raw)
                    key = str(record["key"])
                    self._index[key] = offset
                    self._ordered_keys.append(key)
                    bloom.add(key)
                    offset += len(raw)
                if len(self._ordered_keys) != expected:
                    raise SSTableCorruptionError(
                        f"{self._path}: header promises {expected} records, "
                        f"found {len(self._ordered_keys)}"
                    )
                self._bloom = bloom
        except (OSError, json.JSONDecodeError, KeyError, ValueError) as exc:
            raise SSTableCorruptionError(f"{self._path}: unreadable segment") from exc

    # -- reads -----------------------------------------------------------------

    def _read_at(self, offset: int) -> MemtableEntry:
        with open(self._path, "rb") as handle:
            handle.seek(offset)
            record = json.loads(handle.readline())
        return MemtableEntry(
            key=str(record["key"]), sequence=int(record["seq"]), value=record["value"]
        )

    def lookup(self, key: str) -> MemtableEntry | None:
        """The segment's entry for ``key`` (may be a tombstone), or None."""
        if self._bloom is not None and not self._bloom.may_contain(key):
            return None
        offset = self._index.get(key)
        if offset is None:
            return None
        return self._read_at(offset)

    def range_from(self, start_key: str) -> Iterator[MemtableEntry]:
        """Entries with key >= ``start_key`` in key order (incl. tombstones)."""
        index = bisect.bisect_left(self._ordered_keys, start_key)
        for key in self._ordered_keys[index:]:
            yield self._read_at(self._index[key])

    def entries(self) -> Iterator[MemtableEntry]:
        """All entries in key order."""
        return self.range_from("")

    def keys(self) -> list[str]:
        return list(self._ordered_keys)

    def delete_file(self) -> None:
        """Remove the backing file (after compaction superseded it)."""
        self._path.unlink(missing_ok=True)
