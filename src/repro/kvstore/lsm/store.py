"""The log-structured key-value store (WiredTiger stand-in).

Write path: WAL append → memtable upsert; when the memtable exceeds its
threshold it is flushed to a new SSTable and the WAL is truncated.  Read
path: memtable, then segments newest-first, bloom filters pruning misses.
Deletes write tombstones that full compaction finally drops.  Restarting
the store on the same directory replays the WAL, so the engine survives a
crash anywhere outside the (atomic) segment publish.

Versioning: a single store-wide sequence number stamps every mutation;
a key's version is the sequence of its latest write, which is per-key
monotonic as the :class:`~repro.kvstore.base.KeyValueStore` contract
requires.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from collections.abc import Iterator, Mapping
from pathlib import Path

from ...recovery.crashpoints import crashpoint
from ..base import Fields, KeyValueStore, StoreClosed, VersionedValue
from .memtable import Memtable, MemtableEntry
from .sstable import SSTable
from .wal import WalRecord, WriteAheadLog

__all__ = ["LSMKVStore"]

_SEGMENT_GLOB = "segment-*.sst"


class LSMKVStore(KeyValueStore):
    """Durable log-structured store rooted at a directory.

    Args:
        directory: where the WAL and segment files live.
        memtable_bytes: flush threshold for the write buffer.
        sync_writes: fsync the WAL on every append (durability over latency).
    """

    def __init__(
        self,
        directory: str | Path,
        memtable_bytes: int = 1 << 20,
        sync_writes: bool = False,
    ):
        if memtable_bytes < 1:
            raise ValueError(f"memtable_bytes must be >= 1, got {memtable_bytes}")
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._memtable_bytes = memtable_bytes
        self._lock = threading.RLock()
        self._closed = False
        self._memtable = Memtable()
        self._segments: list[SSTable] = []  # oldest first
        self._wal = WriteAheadLog(self._directory / "wal.log", sync_writes=sync_writes)
        self._sequence = 0
        self._recover()

    # -- recovery --------------------------------------------------------------

    def _recover(self) -> None:
        for path in sorted(self._directory.glob(_SEGMENT_GLOB)):
            segment = SSTable(path)
            self._segments.append(segment)
            self._sequence = max(self._sequence, segment.max_sequence)
        for record in self._wal.replay():
            self._memtable.upsert(record.key, record.sequence, record.value)
            self._sequence = max(self._sequence, record.sequence)

    # -- internal lookups --------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosed("store is closed")

    def _lookup_entry(self, key: str) -> MemtableEntry | None:
        """Newest entry for ``key`` across memtable and segments."""
        entry = self._memtable.lookup(key)
        if entry is not None:
            return entry
        for segment in reversed(self._segments):
            entry = segment.lookup(key)
            if entry is not None:
                return entry
        return None

    def _next_sequence(self) -> int:
        self._sequence += 1
        return self._sequence

    def _apply(self, key: str, value: Fields | None) -> int:
        """Log and buffer one mutation; returns its sequence number."""
        sequence = self._next_sequence()
        op = "delete" if value is None else "put"
        self._wal.append(WalRecord(sequence, op, key, value))
        self._memtable.upsert(key, sequence, value)
        if self._memtable.approximate_bytes >= self._memtable_bytes:
            self._flush_locked()
        return sequence

    # -- flush & compaction --------------------------------------------------------

    def _segment_path(self) -> Path:
        existing = sorted(self._directory.glob(_SEGMENT_GLOB))
        next_id = 0
        if existing:
            last = existing[-1].stem  # "segment-000042"
            next_id = int(last.split("-")[1]) + 1
        return self._directory / f"segment-{next_id:06d}.sst"

    def _flush_locked(self) -> None:
        if len(self._memtable) == 0:
            return
        segment = SSTable.write(self._segment_path(), self._memtable.entries())
        self._segments.append(segment)
        # Crash window: the segment is published but the WAL still holds the
        # flushed records.  Recovery replays them over the segment — upserts
        # are idempotent by sequence, so no acknowledged write is lost.
        crashpoint("lsm.mid_checkpoint")
        self._memtable.clear()
        self._wal.truncate()

    def flush(self) -> None:
        """Force the memtable to disk."""
        with self._lock:
            self._check_open()
            self._flush_locked()

    def compact(self) -> int:
        """Merge all segments into one, dropping shadowed versions and
        tombstones.  Returns the number of records discarded."""
        with self._lock:
            self._check_open()
            self._flush_locked()
            if len(self._segments) <= 1 and not any(
                entry.is_tombstone
                for segment in self._segments
                for entry in segment.entries()
            ):
                return 0
            # Newest version of each key wins; count everything else.
            latest: dict[str, MemtableEntry] = {}
            total = 0
            for segment in self._segments:
                for entry in segment.entries():
                    total += 1
                    current = latest.get(entry.key)
                    if current is None or entry.sequence > current.sequence:
                        latest[entry.key] = entry
            live = [latest[key] for key in sorted(latest) if not latest[key].is_tombstone]
            discarded = total - len(live)
            new_segment = SSTable.write(self._segment_path(), live)
            for old in self._segments:
                old.delete_file()
            self._segments = [new_segment]
            return discarded

    @property
    def segment_count(self) -> int:
        with self._lock:
            return len(self._segments)

    # -- KeyValueStore: reads ----------------------------------------------------

    def get_with_meta(self, key: str) -> VersionedValue | None:
        with self._lock:
            self._check_open()
            entry = self._lookup_entry(key)
            if entry is None or entry.is_tombstone:
                return None
            return VersionedValue(dict(entry.value or {}), entry.sequence)

    def scan(self, start_key: str, record_count: int) -> list[tuple[str, Fields]]:
        if record_count <= 0:
            return []
        with self._lock:
            self._check_open()
            streams = [self._memtable.range_from(start_key)]
            streams.extend(segment.range_from(start_key) for segment in self._segments)
            merged = heapq.merge(*streams, key=lambda entry: (entry.key, -entry.sequence))
            results: list[tuple[str, Fields]] = []
            for key, group in itertools.groupby(merged, key=lambda entry: entry.key):
                newest = next(group)
                if newest.is_tombstone:
                    continue
                results.append((key, dict(newest.value or {})))
                if len(results) >= record_count:
                    break
            return results

    def keys(self) -> Iterator[str]:
        with self._lock:
            self._check_open()
            collected = [key for key, _ in self.scan("", self.size() or 0)]
        return iter(collected)

    def size(self) -> int:
        with self._lock:
            self._check_open()
            live: set[str] = set()
            dead: set[str] = set()
            decided: set[str] = set()
            for entry in self._memtable.entries():
                (dead if entry.is_tombstone else live).add(entry.key)
                decided.add(entry.key)
            for segment in reversed(self._segments):
                for entry in segment.entries():
                    if entry.key in decided:
                        continue
                    (dead if entry.is_tombstone else live).add(entry.key)
                    decided.add(entry.key)
            return len(live)

    # -- KeyValueStore: writes ----------------------------------------------------

    def put(self, key: str, value: Mapping[str, str]) -> int:
        with self._lock:
            self._check_open()
            return self._apply(key, dict(value))

    def put_batch(self, items: list[tuple[str, Mapping[str, str]]]) -> list[int]:
        """Write many records under one lock acquisition and one WAL flush.

        Group commit: the whole batch is appended to the WAL with a single
        flush (and, with ``sync_writes``, a single fsync), amortising the
        per-write durability cost — the point of the bulk-load extension.
        """
        with self._lock:
            self._check_open()
            versions = []
            wal_records = []
            for key, value in items:
                sequence = self._next_sequence()
                wal_records.append(WalRecord(sequence, "put", key, dict(value)))
                versions.append(sequence)
            self._wal.append_batch(wal_records)
            for record in wal_records:
                self._memtable.upsert(record.key, record.sequence, record.value)
            if self._memtable.approximate_bytes >= self._memtable_bytes:
                self._flush_locked()
            return versions

    def put_if_version(
        self, key: str, value: Mapping[str, str], expected_version: int | None
    ) -> int | None:
        with self._lock:
            self._check_open()
            entry = self._lookup_entry(key)
            exists = entry is not None and not entry.is_tombstone
            if expected_version is None:
                if exists:
                    return None
            else:
                if not exists or entry is None or entry.sequence != expected_version:
                    return None
            return self._apply(key, dict(value))

    def delete(self, key: str) -> bool:
        with self._lock:
            self._check_open()
            entry = self._lookup_entry(key)
            if entry is None or entry.is_tombstone:
                return False
            self._apply(key, None)
            return True

    def delete_if_version(self, key: str, expected_version: int) -> bool | None:
        with self._lock:
            self._check_open()
            entry = self._lookup_entry(key)
            if entry is None or entry.is_tombstone:
                return False
            if entry.sequence != expected_version:
                return None
            self._apply(key, None)
            return True

    # -- lifecycle ------------------------------------------------------------------

    def clear(self) -> None:
        with self._lock:
            self._check_open()
            for key in list(self.keys()):
                self._apply(key, None)
            self.compact()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._flush_locked()
            self._wal.close()
            self._closed = True
