"""Log-structured storage engine (WAL + memtable + SSTables)."""

from .memtable import Memtable, MemtableEntry
from .sstable import BloomFilter, SSTable, SSTableCorruptionError
from .store import LSMKVStore
from .wal import WalCorruptionError, WalRecord, WriteAheadLog

__all__ = [
    "Memtable",
    "MemtableEntry",
    "BloomFilter",
    "SSTable",
    "SSTableCorruptionError",
    "LSMKVStore",
    "WalCorruptionError",
    "WalRecord",
    "WriteAheadLog",
]
