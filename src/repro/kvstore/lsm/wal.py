"""Write-ahead log for the log-structured store.

Each record is one JSON line carrying a sequence number, operation, key
and (for puts) the value.  The *latency versus durability* trade-off of
§II-A is explicit here: with ``sync_writes=True`` every append is
``fsync``-ed (durable, slow); with the default ``False`` the OS page cache
absorbs writes (fast, loses the tail on a crash) — exactly the dial the
paper describes NoSQL systems turning.

Torn final records (a crash mid-append) are tolerated on replay: a
truncated or corrupt last line is skipped, anything after it is not.
"""

from __future__ import annotations

import json
import os
import threading
from collections.abc import Iterator
from dataclasses import dataclass
from pathlib import Path

from ...recovery.crashpoints import CrashError, get_crash_injector
from ..base import Fields, StoreError

__all__ = ["WalRecord", "WriteAheadLog", "WalCorruptionError"]


class WalCorruptionError(StoreError):
    """A WAL record other than the final one failed to parse."""


@dataclass(frozen=True, slots=True)
class WalRecord:
    """One logged mutation."""

    sequence: int
    op: str  # "put" | "delete"
    key: str
    value: Fields | None = None

    def to_json(self) -> str:
        document: dict[str, object] = {"seq": self.sequence, "op": self.op, "key": self.key}
        if self.value is not None:
            document["value"] = self.value
        return json.dumps(document, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "WalRecord":
        document = json.loads(line)
        return cls(
            sequence=int(document["seq"]),
            op=str(document["op"]),
            key=str(document["key"]),
            value=document.get("value"),
        )


class WriteAheadLog:
    """Append-only log file with replay."""

    def __init__(self, path: str | Path, sync_writes: bool = False):
        self._path = Path(path)
        self._sync_writes = sync_writes
        self._lock = threading.Lock()
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self._path, "a", encoding="utf-8")

    @property
    def path(self) -> Path:
        return self._path

    def append(self, record: WalRecord) -> None:
        """Durably (or lazily, per ``sync_writes``) append ``record``."""
        line = record.to_json() + "\n"
        injector = get_crash_injector()
        if injector is not None:
            try:
                injector.hit("wal.mid_append")
            except CrashError:
                # Die with the record half on disk: a torn tail with no
                # trailing newline, exactly what an interrupted write +
                # partial page flush leaves behind.  Replay must drop it.
                with self._lock:
                    self._file.write(line[: max(1, len(line) // 2)])
                    self._file.flush()
                    if self._sync_writes:
                        os.fsync(self._file.fileno())
                raise
        with self._lock:
            self._file.write(line)
            self._file.flush()
            if self._sync_writes:
                os.fsync(self._file.fileno())

    def append_batch(self, records: list[WalRecord]) -> None:
        """Append many records with a single flush (and single fsync).

        This is where bulk loading earns its speedup: the group commit
        amortises the per-write durability cost over the whole batch —
        all-or-nothing durability for the batch's tail is acceptable for
        a load phase that is re-runnable.
        """
        if not records:
            return
        payload = "".join(record.to_json() + "\n" for record in records)
        with self._lock:
            self._file.write(payload)
            self._file.flush()
            if self._sync_writes:
                os.fsync(self._file.fileno())

    def replay(self) -> Iterator[WalRecord]:
        """Yield every intact record in append order.

        A malformed *final* line is treated as a torn write and skipped;
        a malformed line followed by good data indicates real corruption
        and raises :class:`WalCorruptionError`.
        """
        if not self._path.exists():
            return
        with open(self._path, encoding="utf-8") as handle:
            lines = handle.readlines()
        for index, line in enumerate(lines):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                yield WalRecord.from_json(stripped)
            except (json.JSONDecodeError, KeyError, ValueError) as exc:
                if index == len(lines) - 1:
                    return  # torn tail record from a crash mid-append
                raise WalCorruptionError(
                    f"{self._path}: corrupt WAL record at line {index + 1}"
                ) from exc

    def truncate(self) -> None:
        """Discard the log contents (called after a successful flush)."""
        with self._lock:
            self._file.close()
            self._file = open(self._path, "w", encoding="utf-8")
            self._file.flush()
            if self._sync_writes:
                os.fsync(self._file.fileno())

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()
