"""Seedable fault injection for any :class:`~repro.kvstore.base.KeyValueStore`.

The simulated stores fail in exactly one benign way (a clean
``RateLimitExceeded``), which makes the Tier 5/6 metrics trivially easy:
nothing ever misbehaves.  Real WAS/GCS clients face transient 5xx errors,
latency spikes, throttle bursts, and — worst of all — *torn* conditional
writes where the operation applied but the response was lost.
:class:`FaultInjectingStore` composes those failure modes over any store,
drawing every fault decision from one seeded :class:`random.Random` so a
test run is exactly reproducible.

Fault types (all rates are independent per-request probabilities):

* **transient errors** — the request fails with
  :class:`~repro.kvstore.base.TransientStoreError` *before* reaching the
  store (nothing was applied; blind retry is safe);
* **latency spikes** — the request pays an extra service time drawn from a
  :class:`~repro.kvstore.latency.LatencyModel` (a stall, not an error);
* **throttle bursts** — a :class:`~repro.kvstore.ratelimit.TokenBucket`
  (typically the simulated cloud container's admission bucket) is drained,
  so the *following* requests queue or see 503s until it refills;
* **torn conditional writes** — the write **is applied** and then a
  :class:`TransientStoreError` is raised anyway: the classic
  ambiguous-commit case that a retry layer must verify, not blindly retry.
"""

from __future__ import annotations

import random
import threading
from collections.abc import Iterator, Mapping
from dataclasses import dataclass

from ..sim.clock import ambient_sleep
from .base import Fields, KeyValueStore, TransientStoreError, VersionedValue
from .latency import ConstantLatency, LatencyModel
from .ratelimit import TokenBucket

__all__ = ["FaultProfile", "FaultStats", "FaultInjectingStore"]


@dataclass(frozen=True)
class FaultProfile:
    """Per-request fault probabilities.

    Attributes:
        error_rate: probability of a transient error (nothing applied).
        latency_spike_rate: probability of an injected latency spike.
        latency_spike_s: spike duration when a plain number is wanted;
            ignored when ``latency_spike_model`` is set.
        latency_spike_model: optional latency model for spike durations.
        throttle_burst_rate: probability of draining the token bucket.
        torn_write_rate: probability that a *successful* write raises a
            transient error after applying (reads are never torn).
    """

    error_rate: float = 0.0
    latency_spike_rate: float = 0.0
    latency_spike_s: float = 0.05
    latency_spike_model: LatencyModel | None = None
    throttle_burst_rate: float = 0.0
    torn_write_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("error_rate", "latency_spike_rate", "throttle_burst_rate", "torn_write_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {rate}")
        if self.latency_spike_s < 0:
            raise ValueError(f"latency_spike_s must be >= 0, got {self.latency_spike_s}")

    @property
    def enabled(self) -> bool:
        """True when any fault can ever fire."""
        return (
            self.error_rate > 0
            or self.latency_spike_rate > 0
            or self.throttle_burst_rate > 0
            or self.torn_write_rate > 0
        )

    def spike_model(self) -> LatencyModel:
        return self.latency_spike_model or ConstantLatency(self.latency_spike_s)

    @classmethod
    def from_properties(cls, properties) -> "FaultProfile | None":
        """Build a profile from workload properties; None when disabled.

        Properties (all optional):
        ``fault.error_rate``, ``fault.latency_spike_rate``,
        ``fault.latency_spike_ms`` [50], ``fault.throttle_burst_rate``,
        ``fault.torn_write_rate``.  ``fault.rate`` is a shorthand that sets
        the transient-error rate.
        """
        error_rate = properties.get_float(
            "fault.error_rate", properties.get_float("fault.rate", 0.0)
        )
        profile = cls(
            error_rate=error_rate,
            latency_spike_rate=properties.get_float("fault.latency_spike_rate", 0.0),
            latency_spike_s=properties.get_float("fault.latency_spike_ms", 50.0) / 1000.0,
            throttle_burst_rate=properties.get_float("fault.throttle_burst_rate", 0.0),
            torn_write_rate=properties.get_float("fault.torn_write_rate", 0.0),
        )
        return profile if profile.enabled else None


class FaultStats:
    """Thread-safe counts of injected faults (shared across client threads)."""

    _FIELDS = ("operations", "transient_errors", "latency_spikes", "throttle_bursts", "torn_writes")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.operations = 0
        self.transient_errors = 0
        self.latency_spikes = 0
        self.throttle_bursts = 0
        self.torn_writes = 0

    def bump(self, counter: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + amount)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {name: getattr(self, name) for name in self._FIELDS}

    def counters(self) -> dict[str, int]:
        """Report-facing counter names (``[FAULTS-*], Count`` lines)."""
        with self._lock:
            return {
                "FAULTS-TRANSIENT": self.transient_errors,
                "FAULTS-LATENCY-SPIKE": self.latency_spikes,
                "FAULTS-THROTTLE-BURST": self.throttle_bursts,
                "FAULTS-TORN-WRITE": self.torn_writes,
            }


class FaultInjectingStore(KeyValueStore):
    """Wraps a store, injecting seeded faults around every data-path call.

    ``keys()``/``size()`` bypass injection — like the simulated cloud
    store, they exist for validation stages and tests, not the measured
    data path.  The profile is a settable property so a harness can load
    cleanly and then turn faults on for the measured phase.
    """

    def __init__(
        self,
        inner: KeyValueStore,
        profile: FaultProfile | None = None,
        seed: int | None = 0,
        rng: random.Random | None = None,
        token_bucket: TokenBucket | None = None,
        sleep=ambient_sleep,
    ):
        self._inner = inner
        self._profile = profile or FaultProfile()
        self._spike_model = self._profile.spike_model()
        self._rng = rng or random.Random(seed)
        self._rng_lock = threading.Lock()
        self._bucket = token_bucket if token_bucket is not None else getattr(inner, "bucket", None)
        self._sleep = sleep
        self.stats = FaultStats()

    @property
    def inner(self) -> KeyValueStore:
        return self._inner

    @property
    def profile(self) -> FaultProfile:
        return self._profile

    @profile.setter
    def profile(self, profile: FaultProfile) -> None:
        self._profile = profile
        self._spike_model = profile.spike_model()

    def counters(self) -> dict[str, int]:
        return self.stats.counters()

    # -- fault machinery -----------------------------------------------------

    def _inject(self, write: bool) -> None:
        """Pre-operation faults.  Raises when the request fails outright."""
        profile = self._profile
        self.stats.bump("operations")
        if not profile.enabled:
            return
        # One draw per fault category, in a fixed order, under a lock:
        # the fault sequence is a pure function of the seed and the
        # number of preceding operations.
        with self._rng_lock:
            error = self._rng.random() < profile.error_rate
            burst = self._rng.random() < profile.throttle_burst_rate
            spike = self._rng.random() < profile.latency_spike_rate
            spike_s = self._spike_model.sample() if spike else 0.0
        if burst and self._bucket is not None:
            self.stats.bump("throttle_bursts")
            self._bucket.drain()
        if error:
            self.stats.bump("transient_errors")
            kind = "write" if write else "read"
            raise TransientStoreError(f"injected transient {kind} failure")
        if spike:
            self.stats.bump("latency_spikes")
            if spike_s > 0:
                self._sleep(spike_s)

    def _maybe_tear(self) -> None:
        """Post-apply fault: the write landed but the response is 'lost'."""
        profile = self._profile
        if profile.torn_write_rate <= 0:
            return
        with self._rng_lock:
            torn = self._rng.random() < profile.torn_write_rate
        if torn:
            self.stats.bump("torn_writes")
            raise TransientStoreError("injected torn write: applied but reported failed")

    # -- reads ---------------------------------------------------------------

    def get_with_meta(self, key: str) -> VersionedValue | None:
        self._inject(write=False)
        return self._inner.get_with_meta(key)

    def scan(self, start_key: str, record_count: int) -> list[tuple[str, Fields]]:
        self._inject(write=False)
        return self._inner.scan(start_key, record_count)

    def keys(self) -> Iterator[str]:
        return self._inner.keys()

    def size(self) -> int:
        return self._inner.size()

    # -- writes --------------------------------------------------------------

    def put(self, key: str, value: Mapping[str, str]) -> int:
        self._inject(write=True)
        version = self._inner.put(key, value)
        self._maybe_tear()
        return version

    def put_if_version(
        self, key: str, value: Mapping[str, str], expected_version: int | None
    ) -> int | None:
        self._inject(write=True)
        result = self._inner.put_if_version(key, value, expected_version)
        if result is not None:  # only an *applied* write can tear
            self._maybe_tear()
        return result

    def put_versioned(self, key, versioned) -> bool:
        self._inject(write=True)
        return self._inner.put_versioned(key, versioned)

    def delete(self, key: str) -> bool:
        self._inject(write=True)
        existed = self._inner.delete(key)
        if existed:
            self._maybe_tear()
        return existed

    def delete_if_version(self, key: str, expected_version: int) -> bool | None:
        self._inject(write=True)
        result = self._inner.delete_if_version(key, expected_version)
        if result is True:
            self._maybe_tear()
        return result

    # -- lifecycle -----------------------------------------------------------

    def clear(self) -> None:
        self._inner.clear()

    def close(self) -> None:
        self._inner.close()
