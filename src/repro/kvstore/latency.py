"""Latency models and the latency-injecting store wrapper.

The paper's measurements are dominated by where the store lives: WAS/GCS
behind a WAN (tens of milliseconds per request, Fig. 2), or a local HTTP
server (~1.5 ms, Listing 3).  A :class:`LatencyModel` turns either setting
into a per-request service time; :class:`LatencyInjectingStore` applies it
to any inner store.  Time is spent with ``time.sleep``, so client threads
block exactly the way they would on real network I/O — which is what makes
thread-scaling experiments meaningful under the GIL.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections.abc import Iterator, Mapping

from ..sim.clock import ambient_sleep
from .base import Fields, KeyValueStore, VersionedValue

__all__ = [
    "LatencyModel",
    "NoLatency",
    "ConstantLatency",
    "UniformLatency",
    "LognormalLatency",
    "LatencyInjectingStore",
]


class LatencyModel(ABC):
    """Produces one service time (in seconds) per request."""

    @abstractmethod
    def sample(self) -> float:
        """Service time for the next request, in seconds (>= 0)."""

    def mean(self) -> float:
        """Expected service time in seconds."""
        raise NotImplementedError


class NoLatency(LatencyModel):
    """Zero added latency (pass-through)."""

    def sample(self) -> float:
        return 0.0

    def mean(self) -> float:
        return 0.0


class ConstantLatency(LatencyModel):
    """Every request takes exactly ``seconds``."""

    def __init__(self, seconds: float):
        if seconds < 0:
            raise ValueError(f"latency must be >= 0, got {seconds}")
        self._seconds = seconds

    def sample(self) -> float:
        return self._seconds

    def mean(self) -> float:
        return self._seconds


class UniformLatency(LatencyModel):
    """Uniform service time in ``[low, high]`` seconds."""

    def __init__(self, low: float, high: float, rng: random.Random | None = None):
        if low < 0 or high < low:
            raise ValueError(f"invalid latency range [{low}, {high}]")
        self._low = low
        self._high = high
        self._rng = rng or random.Random()

    def sample(self) -> float:
        return self._rng.uniform(self._low, self._high)

    def mean(self) -> float:
        return (self._low + self._high) / 2.0


class LognormalLatency(LatencyModel):
    """Lognormal service time — the classic fit for cloud request latency.

    Parameterised by its median and the sigma of the underlying normal;
    a long right tail appears for sigma around 0.3–0.7, matching the
    max-latency outliers in Listing 3.
    """

    def __init__(self, median_seconds: float, sigma: float = 0.4, rng: random.Random | None = None):
        if median_seconds <= 0:
            raise ValueError(f"median must be positive, got {median_seconds}")
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        import math

        self._mu = math.log(median_seconds)
        self._sigma = sigma
        self._rng = rng or random.Random()

    def sample(self) -> float:
        return self._rng.lognormvariate(self._mu, self._sigma)

    def mean(self) -> float:
        import math

        return math.exp(self._mu + self._sigma**2 / 2.0)


class LatencyInjectingStore(KeyValueStore):
    """Wraps a store, sleeping a sampled service time around every call.

    Reads and writes may use different models (cloud stores commonly have
    cheaper reads than writes).  Scans pay the read latency once per
    request, not per record, mirroring a single ranged HTTP request.
    """

    def __init__(
        self,
        inner: KeyValueStore,
        read_latency: LatencyModel,
        write_latency: LatencyModel | None = None,
        sleep=ambient_sleep,
    ):
        self._inner = inner
        self._read_latency = read_latency
        self._write_latency = write_latency or read_latency
        self._sleep = sleep

    @property
    def inner(self) -> KeyValueStore:
        return self._inner

    def _pay_read(self) -> None:
        delay = self._read_latency.sample()
        if delay > 0:
            self._sleep(delay)

    def _pay_write(self) -> None:
        delay = self._write_latency.sample()
        if delay > 0:
            self._sleep(delay)

    # -- reads ---------------------------------------------------------------

    def get_with_meta(self, key: str) -> VersionedValue | None:
        self._pay_read()
        return self._inner.get_with_meta(key)

    def scan(self, start_key: str, record_count: int) -> list[tuple[str, Fields]]:
        self._pay_read()
        return self._inner.scan(start_key, record_count)

    def keys(self) -> Iterator[str]:
        return self._inner.keys()

    def size(self) -> int:
        return self._inner.size()

    # -- writes --------------------------------------------------------------

    def put(self, key: str, value: Mapping[str, str]) -> int:
        self._pay_write()
        return self._inner.put(key, value)

    def put_if_version(
        self, key: str, value: Mapping[str, str], expected_version: int | None
    ) -> int | None:
        self._pay_write()
        return self._inner.put_if_version(key, value, expected_version)

    def put_versioned(self, key, versioned) -> bool:
        self._pay_write()
        return self._inner.put_versioned(key, versioned)

    def delete(self, key: str) -> bool:
        self._pay_write()
        return self._inner.delete(key)

    def delete_if_version(self, key: str, expected_version: int) -> bool | None:
        self._pay_write()
        return self._inner.delete_if_version(key, expected_version)

    # -- lifecycle -----------------------------------------------------------

    def clear(self) -> None:
        self._inner.clear()

    def close(self) -> None:
        self._inner.close()
