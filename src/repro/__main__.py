"""``python -m repro`` — the YCSB+T command line."""

import sys

from .core.cli import main

sys.exit(main())
