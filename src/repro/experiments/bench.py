"""The extended ``BENCH_*.json`` shape and its readers.

Version 2 documents carry repetition statistics: every numeric metric at
every series point becomes ``{n, mean, stddev, ci95, min, max, values}``
with the per-repetition raw values preserved.  Version 1 is the original
single-run shape (scalar ``throughput`` etc. per point, written by
``render_experiment_json``); :func:`load_bench_document` reads both and
normalises them into one comparable view so ``ycsbt exp diff`` can gate
a fresh aggregate against any historical trajectory.
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import Any

from .aggregate import AggregateResult, LatencyAggregate, MetricSample
from .stats import SampleStats

__all__ = [
    "BENCH_SCHEMA_V2",
    "render_bench_document",
    "render_bench_json",
    "render_aggregate_text",
    "write_bench",
    "BenchView",
    "load_bench",
    "load_bench_document",
]

BENCH_SCHEMA_V2 = "ycsbt-bench/2"


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------

def _metric_payload(sample: MetricSample) -> dict[str, Any]:
    stats = sample.stats
    return {
        "n": stats.n,
        "mean": stats.mean,
        "stddev": stats.stddev,
        "ci95": stats.ci95,
        "min": stats.min,
        "max": stats.max,
        "values": list(sample.values),
    }


def _latency_payload(entry: LatencyAggregate) -> dict[str, Any]:
    return {
        "count": entry.count,
        "mean_us": entry.mean_us,
        "p50_us": entry.p50_us,
        "p95_us": entry.p95_us,
        "p99_us": entry.p99_us,
        "max_us": entry.max_us,
        "mean_per_rep": _metric_payload(entry.mean_per_rep),
        "p95_per_rep": _metric_payload(entry.p95_per_rep),
        "p99_per_rep": _metric_payload(entry.p99_per_rep),
    }


def render_bench_document(aggregate: AggregateResult) -> dict[str, Any]:
    """The schema-v2 document for one aggregated experiment."""
    document: dict[str, Any] = {
        "schema": BENCH_SCHEMA_V2,
        "experiment": aggregate.spec.name,
        "description": aggregate.description,
        "notes": list(aggregate.notes),
        "spec": aggregate.spec.to_dict(),
        "repetitions": aggregate.repetitions,
        "seeds": list(aggregate.seeds),
        # Wall-clock repetition times are deliberately NOT serialised:
        # they are harness noise, and a deterministic spec's document
        # must be byte-identical for the same seed.
        "deterministic": aggregate.spec.deterministic,
        "series": [
            {
                "label": series.label,
                "points": [
                    {
                        "x": point.x,
                        "metrics": {
                            name: _metric_payload(sample)
                            for name, sample in sorted(point.metrics.items())
                        },
                    }
                    for point in series.points
                ],
            }
            for series in aggregate.series
        ],
        "tables": {
            name: [
                {
                    column: (
                        _metric_payload(cell)
                        if isinstance(cell, MetricSample)
                        else cell
                    )
                    for column, cell in row.items()
                }
                for row in rows
            ]
            for name, rows in aggregate.tables.items()
        },
    }
    if aggregate.latency:
        # Added only when a runner attaches histograms, so documents of
        # latency-free experiments stay byte-identical to their committed
        # baselines.  ``load_bench_document`` reads only series/tables,
        # so the latency section is informational for ``exp diff``.
        document["latency"] = {
            operation: _latency_payload(entry)
            for operation, entry in sorted(aggregate.latency.items())
        }
    return document


def render_bench_json(aggregate: AggregateResult) -> str:
    return json.dumps(render_bench_document(aggregate), indent=2, sort_keys=True)


def write_bench(aggregate: AggregateResult, directory: str | Path) -> Path:
    """Write ``BENCH_<name>.json`` under ``directory``; returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{aggregate.spec.name}.json"
    path.write_text(render_bench_json(aggregate) + "\n", encoding="utf-8")
    return path


def _format_stat(sample: MetricSample, precision: int = 1) -> str:
    stats = sample.stats
    if stats.ci95 is None:
        return f"{stats.mean:,.{precision}f}"
    return f"{stats.mean:,.{precision}f} ±{stats.ci95:,.{precision}f}"


def render_aggregate_text(aggregate: AggregateResult) -> str:
    """Human-readable report: mean ± 95 % CI per metric per point."""
    out = io.StringIO()
    spec = aggregate.spec
    out.write(
        f"== {spec.name}: {aggregate.description} ==\n"
        f"   runner {spec.runner} ({spec.info.engine}), "
        f"{aggregate.repetitions} repetitions, seeds {aggregate.seeds}\n"
    )
    for note in aggregate.notes:
        out.write(f"   note: {note}\n")
    if aggregate.repetition_wall_s:
        total = sum(aggregate.repetition_wall_s)
        out.write(f"   wall time: {total:.1f} s across repetitions\n")
    for series in aggregate.series:
        out.write(f"\n-- {series.label} --\n")
        header = f"{spec.x_label:>12}  {'throughput (mean ±95% CI)':>28}"
        has_anomaly = any("anomaly_score" in p.metrics for p in series.points)
        if has_anomaly:
            header += f"  {'anomaly (mean ±95% CI)':>24}"
        out.write(header + "\n")
        for point in series.points:
            x = int(point.x) if float(point.x).is_integer() else point.x
            row = f"{x:>12}"
            throughput = point.metrics.get("throughput")
            row += (
                f"  {_format_stat(throughput):>28}"
                if throughput is not None
                else f"  {'-':>28}"
            )
            if has_anomaly:
                anomaly = point.metrics.get("anomaly_score")
                row += (
                    f"  {_format_stat(anomaly, precision=6):>24}"
                    if anomaly is not None
                    else f"  {'-':>24}"
                )
            out.write(row + "\n")
    for name, rows in aggregate.tables.items():
        out.write(f"\n-- table: {name} --\n")
        for row in rows:
            cells = []
            for column, cell in row.items():
                if isinstance(cell, MetricSample):
                    cells.append(f"{column}={_format_stat(cell, precision=3)}")
                else:
                    cells.append(f"{column}={cell}")
            out.write("  " + "  ".join(cells) + "\n")
    if aggregate.latency:
        out.write("\n-- latency (us, pooled across repetitions) --\n")
        out.write(
            f"{'operation':>22}  {'count':>9}  {'mean':>9}  {'p50':>9}"
            f"  {'p95':>9}  {'p99':>9}  {'p99 ±95% CI':>18}\n"
        )
        for operation, entry in sorted(aggregate.latency.items()):
            out.write(
                f"{operation:>22}  {entry.count:>9,}  {entry.mean_us:>9,.0f}"
                f"  {entry.p50_us:>9,.0f}  {entry.p95_us:>9,.0f}"
                f"  {entry.p99_us:>9,.0f}"
                f"  {_format_stat(entry.p99_per_rep, precision=0):>18}\n"
            )
    return out.getvalue()


# ---------------------------------------------------------------------------
# Reading (v1 and v2)
# ---------------------------------------------------------------------------

class BenchView:
    """Schema-independent view of a trajectory for comparison.

    ``points`` maps ``(series_label, x, metric_name)`` to
    :class:`SampleStats` — single-run v1 documents become n=1 samples
    with no variance information, which the diff layer treats with a
    coarser legacy threshold.
    """

    def __init__(
        self,
        experiment: str,
        schema_version: int,
        points: dict[tuple[str, float, str], SampleStats],
        repetitions: int = 1,
    ):
        self.experiment = experiment
        self.schema_version = schema_version
        self.points = points
        self.repetitions = repetitions

    def metrics_for(self, metric: str) -> dict[tuple[str, float], SampleStats]:
        return {
            (label, x): stats
            for (label, x, name), stats in self.points.items()
            if name == metric
        }


def _stats_from_payload(payload: dict[str, Any]) -> SampleStats:
    values = payload.get("values")
    n = int(payload.get("n", len(values) if values else 1))
    mean = float(payload["mean"])
    stddev = payload.get("stddev")
    if payload.get("m2") is not None:
        m2 = float(payload["m2"])
    elif stddev is not None and n > 1:
        m2 = float(stddev) ** 2 * (n - 1)
    else:
        m2 = 0.0
    low = float(payload.get("min", mean))
    high = float(payload.get("max", mean))
    return SampleStats(n=n, mean=mean, m2=m2, min=low, max=high)


def _scalar_stats(value: float) -> SampleStats:
    value = float(value)
    return SampleStats(n=1, mean=value, m2=0.0, min=value, max=value)


def load_bench_document(data: dict[str, Any], source: str = "<document>") -> BenchView:
    """Normalise a BENCH document of either schema into a :class:`BenchView`."""
    if not isinstance(data, dict) or "experiment" not in data:
        raise ValueError(f"{source}: not a BENCH document (no 'experiment' key)")
    schema = data.get("schema")
    points: dict[tuple[str, float, str], SampleStats] = {}
    if schema == BENCH_SCHEMA_V2:
        for series in data.get("series", []):
            label = series["label"]
            for point in series.get("points", []):
                x = float(point["x"])
                for metric, payload in point.get("metrics", {}).items():
                    points[(label, x, metric)] = _stats_from_payload(payload)
        return BenchView(
            experiment=data["experiment"],
            schema_version=2,
            points=points,
            repetitions=int(data.get("repetitions", 1)),
        )
    if schema is not None:
        raise ValueError(
            f"{source}: unsupported BENCH schema {schema!r} "
            f"(this reader knows v1 and {BENCH_SCHEMA_V2!r})"
        )
    # Schema v1: the original single-run shape from render_experiment_json.
    for series in data.get("series", []):
        label = series["label"]
        for point in series.get("points", []):
            x = float(point["x"])
            for metric in ("throughput", "anomaly_score", "operations",
                           "failed_operations"):
                value = point.get(metric)
                if value is not None:
                    points[(label, x, metric)] = _scalar_stats(value)
            for key, value in (point.get("extra") or {}).items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    points[(label, x, key)] = _scalar_stats(value)
    return BenchView(
        experiment=data["experiment"], schema_version=1, points=points, repetitions=1
    )


def load_bench(path: str | Path) -> BenchView:
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ValueError(f"no BENCH file at {path}") from None
    except json.JSONDecodeError as exc:
        raise ValueError(f"cannot parse {path}: {exc}") from None
    return load_bench_document(data, source=str(path))
