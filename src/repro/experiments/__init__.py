"""Declarative experiment runner with N-repetition statistics.

The pipeline: an :class:`ExperimentSpec` (built-in, dict, JSON or TOML)
compiles through a registered runner onto one of the engines (wall-clock
harness, virtual-time simulation, multi-process scale-out), executes N
repetitions with distinct seeds, and aggregates every numeric metric
into mean / stddev / 95 % confidence intervals — the extended
``BENCH_*.json`` shape that ``ycsbt exp diff`` compares
significance-aware, and that the CI perf gate runs on.
"""

from .aggregate import (
    AggregatePoint,
    AggregateResult,
    AggregateSeries,
    MetricSample,
    aggregate_results,
    run_spec,
)
from .bench import (
    BENCH_SCHEMA_V2,
    BenchView,
    load_bench,
    load_bench_document,
    render_aggregate_text,
    render_bench_document,
    render_bench_json,
    write_bench,
)
from .diff import DEFAULT_GATE_METRICS, DiffResult, MetricDelta, compare_views
from .runners import RUNNERS, RunnerInfo, SpecValidationError, runner_names
from .spec import (
    BUILTIN_SPECS,
    ExperimentSpec,
    builtin_spec,
    builtin_spec_names,
    load_spec,
    spec_from_dict,
)
from .stats import SampleStats, T_TABLE_95, merge, percentile, summarize, t_critical_95

__all__ = [
    "AggregatePoint",
    "AggregateResult",
    "AggregateSeries",
    "MetricSample",
    "aggregate_results",
    "run_spec",
    "BENCH_SCHEMA_V2",
    "BenchView",
    "load_bench",
    "load_bench_document",
    "render_aggregate_text",
    "render_bench_document",
    "render_bench_json",
    "write_bench",
    "DEFAULT_GATE_METRICS",
    "DiffResult",
    "MetricDelta",
    "compare_views",
    "RUNNERS",
    "RunnerInfo",
    "SpecValidationError",
    "runner_names",
    "BUILTIN_SPECS",
    "ExperimentSpec",
    "builtin_spec",
    "builtin_spec_names",
    "load_spec",
    "spec_from_dict",
    "SampleStats",
    "T_TABLE_95",
    "merge",
    "percentile",
    "summarize",
    "t_critical_95",
]
