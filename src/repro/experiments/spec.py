"""Declarative experiment specs.

An :class:`ExperimentSpec` names everything one experiment needs — which
runner (and therefore which engine), its parameters, how many
repetitions, the base seed — as plain data, so the same cell can come
from Python code, a JSON/TOML file, or the built-in catalogue, and the
experiment runner can execute it N times and aggregate without knowing
what it measures.

Validation is strict and early: unknown runners, unknown parameter keys,
``repetitions < 1``, bad bindings or conflicting phases all raise
:class:`SpecValidationError` with a message that says what to change,
before any engine starts.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from .runners import RUNNERS, SpecValidationError, runner_names

__all__ = [
    "ExperimentSpec",
    "SpecValidationError",
    "BUILTIN_SPECS",
    "builtin_spec",
    "builtin_spec_names",
    "load_spec",
    "spec_from_dict",
]

_SPEC_KEYS = frozenset(
    {
        "name",
        "runner",
        "repetitions",
        "seed",
        "quick",
        "vary_seed",
        "params",
        "description",
    }
)


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment cell: runner x params x repetitions x seeding.

    ``vary_seed=True`` (the default) runs repetition *i* with
    ``seed + i`` — independent samples for the confidence interval.
    ``vary_seed=False`` repeats the identical seed, which is only useful
    for measuring wall-clock noise of a deterministic workload or for
    determinism tests (every repetition must then agree exactly).
    """

    name: str
    runner: str
    repetitions: int = 3
    seed: int = 42
    quick: bool = True
    vary_seed: bool = True
    params: Mapping[str, Any] = field(default_factory=dict)
    description: str = ""

    def __post_init__(self) -> None:
        self.validate()

    @property
    def info(self):
        return RUNNERS[self.runner]

    @property
    def x_label(self) -> str:
        return self.info.x_label

    @property
    def deterministic(self) -> bool:
        return self.info.deterministic

    def seeds(self) -> list[int]:
        if self.vary_seed:
            return [self.seed + rep for rep in range(self.repetitions)]
        return [self.seed] * self.repetitions

    def validate(self) -> None:
        if not self.name or not all(
            ch.isalnum() or ch in "-_." for ch in self.name
        ):
            raise SpecValidationError(
                f"bad spec name {self.name!r}: names become BENCH_<name>.json "
                "files, use letters, digits, '-', '_' and '.'"
            )
        if self.runner not in RUNNERS:
            raise SpecValidationError(
                f"unknown runner {self.runner!r}; available runners: "
                f"{', '.join(runner_names())}"
            )
        if not isinstance(self.repetitions, int) or isinstance(self.repetitions, bool):
            raise SpecValidationError(
                f"repetitions must be an int >= 1, got {self.repetitions!r}"
            )
        if self.repetitions < 1:
            raise SpecValidationError(
                f"repetitions must be >= 1, got {self.repetitions} "
                "(a cell that never runs has no statistics)"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise SpecValidationError(f"seed must be an int, got {self.seed!r}")
        if not isinstance(self.params, Mapping):
            raise SpecValidationError(
                f"params must be a mapping, got {type(self.params).__name__}"
            )
        info = RUNNERS[self.runner]
        unknown = set(self.params) - set(info.allowed_params)
        if unknown:
            raise SpecValidationError(
                f"runner {self.runner!r} does not accept params "
                f"{sorted(unknown)}; allowed: {sorted(info.allowed_params)}"
            )
        if info.validate is not None:
            info.validate(self.params)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "runner": self.runner,
            "repetitions": self.repetitions,
            "seed": self.seed,
            "quick": self.quick,
            "vary_seed": self.vary_seed,
            "params": _plain(self.params),
            "description": self.description,
        }

    def with_overrides(
        self,
        repetitions: int | None = None,
        seed: int | None = None,
        quick: bool | None = None,
    ) -> "ExperimentSpec":
        updated = self
        if repetitions is not None:
            updated = replace(updated, repetitions=repetitions)
        if seed is not None:
            updated = replace(updated, seed=seed)
        if quick is not None:
            updated = replace(updated, quick=quick)
        return updated


def _plain(value: Any) -> Any:
    """JSON-safe copy: mappings to dicts, tuples to lists, keys to str."""
    if isinstance(value, Mapping):
        return {str(key): _plain(entry) for key, entry in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(entry) for entry in value]
    return value


def spec_from_dict(data: Mapping[str, Any], source: str = "<dict>") -> ExperimentSpec:
    """Build and validate a spec from parsed JSON/TOML/dict data."""
    if not isinstance(data, Mapping):
        raise SpecValidationError(
            f"{source}: a spec must be a mapping, got {type(data).__name__}"
        )
    unknown = set(data) - _SPEC_KEYS
    if unknown:
        raise SpecValidationError(
            f"{source}: unknown spec keys {sorted(unknown)}; "
            f"allowed keys: {sorted(_SPEC_KEYS)}"
        )
    if "name" not in data:
        raise SpecValidationError(f"{source}: a spec needs a 'name'")
    values = dict(data)
    values.setdefault("runner", values["name"])
    # Sequences from JSON/TOML arrive as lists; normalise params tuples.
    params = values.get("params", {})
    if isinstance(params, Mapping):
        values["params"] = {
            key: tuple(entry) if isinstance(entry, list) else entry
            for key, entry in params.items()
        }
    try:
        return ExperimentSpec(**values)
    except TypeError as exc:
        raise SpecValidationError(f"{source}: {exc}") from None


def load_spec(source: str | Path) -> ExperimentSpec:
    """Resolve ``source`` to a spec: built-in name, ``.json`` or ``.toml`` file.

    A path wins over a name when the file exists; otherwise the built-in
    catalogue is consulted, and failing both the error lists what would
    have worked.
    """
    path = Path(source)
    if path.suffix in (".json", ".toml") or path.exists():
        return _load_spec_file(path)
    name = str(source)
    if name in BUILTIN_SPECS:
        return BUILTIN_SPECS[name]
    raise SpecValidationError(
        f"no spec file at {source!r} and no built-in spec by that name; "
        f"built-ins: {', '.join(builtin_spec_names())}"
    )


def _load_spec_file(path: Path) -> ExperimentSpec:
    if not path.exists():
        raise SpecValidationError(f"spec file {path} does not exist")
    if path.suffix == ".toml":
        try:
            import tomllib
        except ImportError:  # Python 3.10: no stdlib TOML parser
            raise SpecValidationError(
                f"cannot read {path}: TOML specs need Python 3.11+ "
                "(tomllib); use the JSON spec shape instead"
            ) from None
        data = tomllib.loads(path.read_text(encoding="utf-8"))
    elif path.suffix == ".json":
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise SpecValidationError(f"cannot parse {path}: {exc}") from None
    else:
        raise SpecValidationError(
            f"unsupported spec file type {path.suffix!r}; use .json or .toml"
        )
    return spec_from_dict(data, source=str(path))


# ---------------------------------------------------------------------------
# Built-in catalogue: the existing experiments, ported onto specs
# ---------------------------------------------------------------------------

BUILTIN_SPECS: dict[str, ExperimentSpec] = {}


def _builtin(spec: ExperimentSpec) -> None:
    BUILTIN_SPECS[spec.name] = spec


def builtin_spec(name: str) -> ExperimentSpec:
    try:
        return BUILTIN_SPECS[name]
    except KeyError:
        raise SpecValidationError(
            f"unknown built-in spec {name!r}; built-ins: "
            f"{', '.join(builtin_spec_names())}"
        ) from None


def builtin_spec_names() -> list[str]:
    return sorted(BUILTIN_SPECS)


_builtin(
    ExperimentSpec(
        name="ci_smoke",
        runner="cew",
        repetitions=3,
        seed=1000,
        params={
            "binding": "txn",
            "schedule": "baseline",
            "thread_counts": (2, 6),
            "properties": {"recordcount": "24", "operationcount": "240"},
        },
        description=(
            "fast deterministic virtual-time CEW sweep for the CI perf gate "
            "(txn binding, baseline faults, 2 and 6 simulated threads)"
        ),
    )
)
_builtin(
    ExperimentSpec(
        name="cew_raw_vs_faults",
        runner="cew",
        repetitions=5,
        seed=2000,
        params={
            "binding": "raw",
            "schedule": "torn-heavy",
            "thread_counts": (4, 8),
        },
        description=(
            "raw binding under torn-write-heavy faults: the anomaly-score "
            "confidence interval quantifies how often money leaks"
        ),
    )
)
_builtin(
    ExperimentSpec(
        name="fig2",
        runner="fig2",
        repetitions=3,
        seed=42,
        description="Fig. 2 with repetition statistics (wall time)",
    )
)
_builtin(
    ExperimentSpec(
        name="sim_figure2",
        runner="sim_figure2",
        repetitions=2,
        seed=42,
        params={"thread_counts": (1, 4, 16, 64), "mixes": (0.9,)},
        description="Fig. 2 in virtual time, reduced sweep, deterministic",
    )
)
_builtin(
    ExperimentSpec(
        name="fig2mp",
        runner="fig2mp",
        repetitions=2,
        seed=42,
        params={"process_counts": (1, 2, 4)},
        description="Fig. 2 with real worker processes (scale-out engine)",
    )
)
_builtin(
    ExperimentSpec(
        name="fig3",
        runner="fig3",
        repetitions=3,
        seed=42,
        description="Fig. 3 transactional overhead with repetition statistics",
    )
)
_builtin(
    ExperimentSpec(
        name="fig4",
        runner="fig4",
        repetitions=3,
        seed=42,
        description="Fig. 4 anomaly score with repetition statistics",
    )
)
_builtin(
    ExperimentSpec(
        name="fig5",
        runner="fig5",
        repetitions=3,
        seed=42,
        description="Fig. 5 raw scaling with repetition statistics",
    )
)
_builtin(
    ExperimentSpec(
        name="tier5",
        runner="tier5",
        repetitions=3,
        seed=42,
        description="Tier-5 per-operation overhead with repetition statistics",
    )
)
_builtin(
    ExperimentSpec(
        name="tier6",
        runner="tier6",
        repetitions=3,
        seed=42,
        description="Tier-6 consistency table with repetition statistics",
    )
)
_builtin(
    ExperimentSpec(
        name="ablation",
        runner="ablation",
        repetitions=3,
        seed=42,
        description="coordinator ablation with repetition statistics",
    )
)
_builtin(
    ExperimentSpec(
        name="shard_scaling",
        runner="shard_scaling",
        repetitions=2,
        seed=500,
        params={
            "shard_counts": (1, 2, 4, 8),
            "bindings": ("raw", "txn"),
            "properties": {"recordcount": "40", "operationcount": "400"},
        },
        description=(
            "CEW over a live shard cluster, 1 to 8 shards: Tier-5 "
            "throughput should rise with the shard count, Tier-6 anomaly "
            "stays 0 on the 2PC binding (wall clock; gate loosely)"
        ),
    )
)
_builtin(
    ExperimentSpec(
        name="consistency_frontier",
        runner="consistency_frontier",
        repetitions=2,
        seed=800,
        params={
            "lag_ms": (5, 20, 80, 160, 280),
            "levels": ("strong", "read_your_writes", "bounded_staleness"),
            "staleness_bound_ms": 300,
        },
        description=(
            "consistency level x replication lag over the leader-follower "
            "protocol: strong pins anomaly 0, relaxed levels trade a "
            "monotonically growing anomaly score for follower offload "
            "(virtual time, deterministic, CI-gated)"
        ),
    )
)
_builtin(
    ExperimentSpec(
        name="replicated_shard_frontier",
        runner="replicated_shard_frontier",
        repetitions=2,
        seed=900,
        params={
            "lag_ms": (10, 40, 120),
            "levels": ("strong", "quorum", "read_your_writes", "bounded_staleness"),
            "staleness_bound_ms": 300,
            "shard_count": 2,
            "follower_count": 2,
            "nemesis": True,
        },
        description=(
            "consistency level x replication lag over replica-set shards "
            "with cross-shard 2PC and a mid-run leader kill + lease "
            "failover: strong and quorum pin anomaly 0 through the "
            "failover, every cell must converge — total cash preserved, "
            "zero residual locks (virtual time, deterministic, CI-gated)"
        ),
    )
)
_builtin(
    ExperimentSpec(
        name="synth_cew",
        runner="synth_cew",
        repetitions=3,
        seed=7000,
        params={"scenario": "diurnal", "binding": "txn"},
        description=(
            "synthesized diurnal campaign on the txn binding: achieved "
            "rate tracks the target curve, per-tenant ceilings hold, "
            "gamma stays 0, pooled HDR latency with CI bands "
            "(virtual time, deterministic, CI-gated)"
        ),
    )
)
_builtin(
    ExperimentSpec(
        name="staleness",
        runner="staleness",
        repetitions=3,
        seed=3,
        description="staleness curve with repetition statistics (fake clock)",
    )
)
