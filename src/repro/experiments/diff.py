"""Significance-aware comparison of two BENCH trajectories.

``ycsbt exp diff old.json new.json`` answers one question: did a gated
metric get *significantly* worse?  "Significantly" is the whole point —
single-run diffs cannot tell a perf regression from run-to-run noise,
which is why the old trajectories were never gated.  With repetition
statistics on both sides the rule is:

* both sides carry a 95 % confidence interval (n >= 2): flag only when
  the intervals are **disjoint** *and* the relative change exceeds
  ``min_effect`` (CI separation alone can be statistically significant
  but practically irrelevant at large N);
* either side is a single run (the legacy v1 shape): no variance
  information exists, so fall back to a deliberately coarser
  ``legacy_threshold`` on the relative change.

Lower throughput is a regression; higher anomaly score is a regression;
other metrics are reported but never gate.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Any

from .bench import BenchView
from .stats import SampleStats

__all__ = ["MetricDelta", "DiffResult", "compare_views", "DEFAULT_GATE_METRICS"]

#: Metrics that gate by default, with the direction that counts as worse.
#: ``+1``: larger is worse (anomaly score); ``-1``: smaller is worse.
DEFAULT_GATE_METRICS: dict[str, int] = {
    "throughput": -1,
    "anomaly_score": +1,
}


@dataclass(frozen=True)
class MetricDelta:
    """One (series, x, metric) compared across two trajectories."""

    series: str
    x: float
    metric: str
    old: SampleStats
    new: SampleStats
    #: Relative change of the mean, new vs old (+0.10 = 10 % higher).
    relative_change: float
    #: Confidence intervals exist on both sides and do not overlap.
    ci_disjoint: bool | None
    #: Direction-aware verdicts.
    regression: bool
    improvement: bool
    reason: str

    @property
    def significant(self) -> bool:
        return self.regression or self.improvement


@dataclass
class DiffResult:
    experiment: str
    deltas: list[MetricDelta] = field(default_factory=list)
    missing_in_new: list[tuple[str, float, str]] = field(default_factory=list)
    added_in_new: list[tuple[str, float, str]] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricDelta]:
        return [delta for delta in self.deltas if delta.regression]

    @property
    def improvements(self) -> list[MetricDelta]:
        return [delta for delta in self.deltas if delta.improvement]

    @property
    def passed(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        out = io.StringIO()
        out.write(f"== exp diff: {self.experiment} ==\n")
        gated = [d for d in self.deltas if d.metric in DEFAULT_GATE_METRICS]
        informational = [d for d in self.deltas if d.metric not in DEFAULT_GATE_METRICS]
        for delta in gated:
            marker = (
                "REGRESSION"
                if delta.regression
                else "improvement" if delta.improvement else "ok"
            )
            old_ci = f" ±{delta.old.ci95:,.2f}" if delta.old.ci95 is not None else ""
            new_ci = f" ±{delta.new.ci95:,.2f}" if delta.new.ci95 is not None else ""
            out.write(
                f"  {delta.series} @ {delta.x:g} {delta.metric}: "
                f"{delta.old.mean:,.2f}{old_ci} -> {delta.new.mean:,.2f}{new_ci} "
                f"({delta.relative_change:+.1%}) {marker} [{delta.reason}]\n"
            )
        if informational:
            noteworthy = [d for d in informational if abs(d.relative_change) >= 0.05]
            if noteworthy:
                out.write("  other metrics with >=5% mean shift (informational):\n")
                for delta in noteworthy:
                    out.write(
                        f"    {delta.series} @ {delta.x:g} {delta.metric}: "
                        f"{delta.old.mean:,.2f} -> {delta.new.mean:,.2f} "
                        f"({delta.relative_change:+.1%})\n"
                    )
        for key in self.missing_in_new:
            out.write(f"  warning: {key} present in old but missing in new\n")
        verdict = "PASS" if self.passed else "FAIL"
        out.write(
            f"  {len(self.regressions)} regression(s), "
            f"{len(self.improvements)} improvement(s) -> {verdict}\n"
        )
        return out.getvalue()

    def to_dict(self) -> dict[str, Any]:
        def delta_payload(delta: MetricDelta) -> dict[str, Any]:
            return {
                "series": delta.series,
                "x": delta.x,
                "metric": delta.metric,
                "old_mean": delta.old.mean,
                "new_mean": delta.new.mean,
                "old_ci95": delta.old.ci95,
                "new_ci95": delta.new.ci95,
                "relative_change": delta.relative_change,
                "ci_disjoint": delta.ci_disjoint,
                "regression": delta.regression,
                "improvement": delta.improvement,
                "reason": delta.reason,
            }

        return {
            "experiment": self.experiment,
            "passed": self.passed,
            "deltas": [delta_payload(d) for d in self.deltas],
            "missing_in_new": [list(key) for key in self.missing_in_new],
            "added_in_new": [list(key) for key in self.added_in_new],
        }


def _relative_change(old_mean: float, new_mean: float) -> float:
    if old_mean == 0.0:
        return 0.0 if new_mean == 0.0 else float("inf") * (1 if new_mean > 0 else -1)
    return (new_mean - old_mean) / abs(old_mean)


def _intervals_disjoint(old: SampleStats, new: SampleStats) -> bool | None:
    old_interval = old.ci95_interval
    new_interval = new.ci95_interval
    if old_interval is None or new_interval is None:
        return None
    return old_interval[1] < new_interval[0] or new_interval[1] < old_interval[0]


def _judge(
    metric: str,
    old: SampleStats,
    new: SampleStats,
    min_effect: float,
    legacy_threshold: float,
    gate_metrics: dict[str, int],
) -> tuple[bool, bool, str, float, bool | None]:
    relative = _relative_change(old.mean, new.mean)
    disjoint = _intervals_disjoint(old, new)
    direction = gate_metrics.get(metric)
    if direction is None:
        return False, False, "not gated", relative, disjoint
    worse = relative * direction > 0 or (relative == float("inf") and direction > 0) \
        or (relative == float("-inf") and direction < 0)
    magnitude = abs(relative)
    if disjoint is None:
        # At least one side is a single run: no CI, coarse threshold.
        if magnitude >= legacy_threshold:
            reason = (
                f"single-run comparison, |Δ| {magnitude:.1%} >= "
                f"legacy threshold {legacy_threshold:.0%}"
            )
            return (worse, not worse, reason, relative, disjoint)
        return (
            False,
            False,
            f"single-run comparison, |Δ| {magnitude:.1%} below legacy "
            f"threshold {legacy_threshold:.0%}",
            relative,
            disjoint,
        )
    if not disjoint:
        return False, False, "95% CIs overlap (noise)", relative, disjoint
    if magnitude < min_effect:
        return (
            False,
            False,
            f"CIs disjoint but effect {magnitude:.1%} < min effect "
            f"{min_effect:.0%}",
            relative,
            disjoint,
        )
    reason = f"CIs disjoint, effect {magnitude:.1%} >= {min_effect:.0%}"
    return (worse, not worse, reason, relative, disjoint)


def compare_views(
    old: BenchView,
    new: BenchView,
    min_effect: float = 0.05,
    legacy_threshold: float = 0.25,
    gate_metrics: dict[str, int] | None = None,
) -> DiffResult:
    """Compare two trajectories point by point.

    Metrics outside ``gate_metrics`` are compared and reported but never
    fail the diff.  Points present on only one side are listed as
    warnings (structural drift is visible, not fatal — a spec may
    legitimately grow a sweep point).
    """
    if old.experiment != new.experiment:
        raise ValueError(
            f"cannot diff different experiments: {old.experiment!r} vs "
            f"{new.experiment!r}"
        )
    gates = dict(DEFAULT_GATE_METRICS if gate_metrics is None else gate_metrics)
    result = DiffResult(experiment=new.experiment)
    shared = sorted(set(old.points) & set(new.points))
    result.missing_in_new = sorted(set(old.points) - set(new.points))
    result.added_in_new = sorted(set(new.points) - set(old.points))
    for key in shared:
        label, x, metric = key
        old_stats = old.points[key]
        new_stats = new.points[key]
        regression, improvement, reason, relative, disjoint = _judge(
            metric, old_stats, new_stats, min_effect, legacy_threshold, gates
        )
        result.deltas.append(
            MetricDelta(
                series=label,
                x=x,
                metric=metric,
                old=old_stats,
                new=new_stats,
                relative_change=relative,
                ci_disjoint=disjoint,
                regression=regression,
                improvement=improvement,
                reason=reason,
            )
        )
    return result
