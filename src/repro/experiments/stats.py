"""Scipy-free summary statistics for repeated experiment runs.

One experiment cell runs N times; every metric (throughput, anomaly
score, ...) becomes a sample of N values.  This module turns such samples
into the mean / sample standard deviation / 95 % confidence interval the
extended ``BENCH_*.json`` shape reports, using the Student t distribution
for small N (repetition counts of 2-10 are the norm, where the normal
z = 1.96 would understate the interval badly).

Mergeability matters for scale-out: two workers can summarise their own
repetitions and the pooled summary must equal the summary of the pooled
values.  :func:`merge` implements Chan et al.'s parallel variance update,
which is exact (up to float association) rather than an approximation.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from ..measurements.histogram import nearest_rank

__all__ = [
    "SampleStats",
    "summarize",
    "merge",
    "t_critical_95",
    "percentile",
    "T_TABLE_95",
]

#: Two-sided 95 % Student-t critical values by degrees of freedom.
#: Standard table values (Abramowitz & Stegun 26.7); entries above 30
#: step through 40/60/120 to the normal limit 1.960.
T_TABLE_95: dict[int, float] = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
    40: 2.021, 60: 2.000, 120: 1.980,
}

#: Normal-approximation limit used for df > 120.
_T_INFINITY = 1.960


def t_critical_95(degrees_of_freedom: int) -> float:
    """Two-sided 95 % t critical value for ``degrees_of_freedom``.

    Exact table lookup through df=30; above that the next *lower*
    tabulated df is used (a slightly wider, i.e. conservative, interval),
    converging on 1.960 beyond df=120.
    """
    if degrees_of_freedom < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {degrees_of_freedom}")
    if degrees_of_freedom in T_TABLE_95:
        return T_TABLE_95[degrees_of_freedom]
    if degrees_of_freedom > 120:
        return _T_INFINITY
    # Between tabulated rows (31..119): conservative step-down lookup.
    floor_df = max(df for df in T_TABLE_95 if df <= degrees_of_freedom)
    return T_TABLE_95[floor_df]


@dataclass(frozen=True)
class SampleStats:
    """Moments of one metric across N repetitions.

    ``m2`` is the sum of squared deviations from the mean (Welford's
    second moment), carried so that :func:`merge` stays exact; the
    sample variance is ``m2 / (n - 1)``.
    """

    n: int
    mean: float
    m2: float
    min: float
    max: float

    @property
    def variance(self) -> float | None:
        """Sample variance (ddof=1); ``None`` below two samples."""
        if self.n < 2:
            return None
        return self.m2 / (self.n - 1)

    @property
    def stddev(self) -> float | None:
        variance = self.variance
        if variance is None:
            return None
        # Guard tiny negative residue from float cancellation.
        return math.sqrt(max(0.0, variance))

    @property
    def standard_error(self) -> float | None:
        stddev = self.stddev
        if stddev is None:
            return None
        return stddev / math.sqrt(self.n)

    @property
    def ci95(self) -> float | None:
        """Half-width of the 95 % confidence interval for the mean.

        Student t with n-1 degrees of freedom; ``None`` below two
        samples (a single run carries no variance information).
        """
        error = self.standard_error
        if error is None:
            return None
        return t_critical_95(self.n - 1) * error

    @property
    def ci95_interval(self) -> tuple[float, float] | None:
        half_width = self.ci95
        if half_width is None:
            return None
        return (self.mean - half_width, self.mean + half_width)

    def to_dict(self) -> dict[str, float | int | None]:
        """JSON-safe summary (computed fields expanded, ``m2`` kept)."""
        return {
            "n": self.n,
            "mean": self.mean,
            "stddev": self.stddev,
            "ci95": self.ci95,
            "min": self.min,
            "max": self.max,
            "m2": self.m2,
        }


def summarize(values: Sequence[float]) -> SampleStats:
    """Single-pass Welford summary of ``values``."""
    if not values:
        raise ValueError("cannot summarize an empty sample")
    count = 0
    mean = 0.0
    m2 = 0.0
    low = math.inf
    high = -math.inf
    for value in values:
        value = float(value)
        count += 1
        delta = value - mean
        mean += delta / count
        m2 += delta * (value - mean)
        low = min(low, value)
        high = max(high, value)
    return SampleStats(n=count, mean=mean, m2=m2, min=low, max=high)


def merge(a: SampleStats, b: SampleStats) -> SampleStats:
    """Pooled summary of two disjoint samples (Chan et al. update).

    ``merge(summarize(xs), summarize(ys))`` equals
    ``summarize(xs + ys)`` up to floating-point association, so workers
    can aggregate their own repetitions and the coordinator can pool
    them without access to the raw values.
    """
    if a.n == 0:
        return b
    if b.n == 0:
        return a
    total = a.n + b.n
    delta = b.mean - a.mean
    mean = a.mean + delta * (b.n / total)
    m2 = a.m2 + b.m2 + delta * delta * (a.n * b.n / total)
    return SampleStats(
        n=total, mean=mean, m2=m2, min=min(a.min, b.min), max=max(a.max, b.max)
    )


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile, matching the measurement layer's definition.

    Uses the same ``ceil(fraction * n)`` rank as the latency histograms
    (see :func:`repro.measurements.histogram.nearest_rank`), so a p95
    over repetition values and a p95 over latency samples agree on what
    "95th percentile" means.
    """
    if not values:
        raise ValueError("cannot take a percentile of an empty sample")
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    ordered = sorted(float(value) for value in values)
    rank = nearest_rank(fraction, len(ordered))
    return ordered[min(rank, len(ordered)) - 1]
