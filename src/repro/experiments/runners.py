"""Spec runners: the bridge from declarative specs to the engines.

Each entry compiles one ``ExperimentSpec`` cell into a call against an
existing engine — the wall-clock harness experiments, the virtual-time
simulation engine, or the multi-process scale-out engine — and returns
the engine's :class:`~repro.harness.results.ExperimentResult`.  The
experiment runner calls the same entry once per repetition with a
distinct seed; everything above this layer deals in aggregates only.

The ``cew`` runner is the fully generic cell: binding x fault schedule x
phases x properties against the Closed Economy Workload in virtual time,
deterministic per seed — the cell the CI perf gate runs, because its
numbers are reproducible across machines.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field

from ..harness.results import ExperimentResult, Point, Series

__all__ = ["RunnerInfo", "RUNNERS", "SpecValidationError", "runner_names"]


class SpecValidationError(ValueError):
    """An experiment spec that cannot run; the message says how to fix it."""


@dataclass(frozen=True)
class RunnerInfo:
    """One registered spec runner.

    ``fn(seed=..., quick=..., **params)`` must return an
    :class:`ExperimentResult`.  ``allowed_params`` is the closed set of
    spec ``params`` keys the runner accepts (unknown keys are spec
    errors, not silently ignored kwargs); ``validate`` may add
    runner-specific checks beyond key membership.
    """

    name: str
    fn: Callable[..., ExperimentResult]
    engine: str  # "wall" | "sim" | "scaleout"
    x_label: str = "threads"
    allowed_params: frozenset[str] = frozenset()
    description: str = ""
    validate: Callable[[Mapping[str, object]], None] | None = None
    #: Runners whose output is a pure function of the seed (virtual or
    #: fake time only) — safe to gate CI on across machines.
    deterministic: bool = False


# ---------------------------------------------------------------------------
# The generic virtual-time CEW cell
# ---------------------------------------------------------------------------

#: Phases a cew cell may run, in their only legal order.
CEW_PHASES = ("load", "run")


def _validate_cew_params(params: Mapping[str, object]) -> None:
    from ..sim.campaign import FAULT_SCHEDULES, SIM_BINDINGS

    binding = params.get("binding", "txn")
    if binding not in SIM_BINDINGS:
        raise SpecValidationError(
            f"unknown binding {binding!r}; the cew runner accepts one of "
            f"{sorted(SIM_BINDINGS)} (HTTP bindings need the scaleout "
            "engine — use the fig2mp runner)"
        )
    schedule = params.get("schedule", "baseline")
    if isinstance(schedule, str):
        if schedule != "none" and schedule not in FAULT_SCHEDULES:
            raise SpecValidationError(
                f"unknown fault schedule {schedule!r}; use one of "
                f"{sorted(FAULT_SCHEDULES) + ['none']} or an inline "
                "{'fault.<knob>': value} mapping"
            )
    elif not isinstance(schedule, Mapping):
        raise SpecValidationError(
            f"schedule must be a name or a mapping, got {type(schedule).__name__}"
        )
    phases = params.get("phases", CEW_PHASES)
    if isinstance(phases, str) or not isinstance(phases, Sequence):
        raise SpecValidationError(
            f"phases must be a sequence of phase names, got {phases!r}"
        )
    phases = tuple(phases)
    if len(set(phases)) != len(phases):
        raise SpecValidationError(
            f"conflicting phases {list(phases)}: each phase may appear once"
        )
    for phase in phases:
        if phase not in CEW_PHASES:
            raise SpecValidationError(
                f"unknown phase {phase!r}; valid phases are {list(CEW_PHASES)}"
            )
    if not phases:
        raise SpecValidationError("phases must not be empty")
    if phases == ("run",):
        raise SpecValidationError(
            "conflicting phases ['run']: the run phase needs the load phase "
            "first (every seed starts from an empty store); use "
            "['load', 'run']"
        )
    if phases not in (("load",), ("load", "run")):
        raise SpecValidationError(
            f"phases {list(phases)} are out of order; the only legal orders "
            f"are ['load'] and ['load', 'run']"
        )
    thread_counts = params.get("thread_counts")
    if thread_counts is not None:
        if isinstance(thread_counts, str) or not isinstance(thread_counts, Sequence):
            raise SpecValidationError(
                f"thread_counts must be a sequence of ints, got {thread_counts!r}"
            )
        for count in thread_counts:
            if not isinstance(count, int) or count < 1:
                raise SpecValidationError(
                    f"thread_counts entries must be ints >= 1, got {count!r}"
                )
    properties = params.get("properties", {})
    if not isinstance(properties, Mapping):
        raise SpecValidationError(
            f"properties must be a mapping of workload properties, got "
            f"{type(properties).__name__}"
        )


def run_cew_cell(
    seed: int = 0,
    quick: bool = True,
    binding: str = "txn",
    schedule: str | Mapping[str, str] = "baseline",
    phases: Sequence[str] = CEW_PHASES,
    thread_counts: Sequence[int] | None = None,
    properties: Mapping[str, str] | None = None,
) -> ExperimentResult:
    """One generic CEW cell in deterministic virtual time.

    Built on the simulation campaign's single-run machinery: load phase
    fault-free, the named fault schedule switched on for the measured run
    phase, every sleep on a fresh :class:`SimClock`.  ``thread_counts``
    turns the cell into a sweep (one point per thread count, each on its
    own clock and store); without it the cell is a single point at the
    configured ``threadcount``.
    """
    from ..sim.campaign import run_sim

    _validate_cew_params(
        {
            "binding": binding,
            "schedule": schedule,
            "phases": tuple(phases),
            "thread_counts": tuple(thread_counts) if thread_counts is not None else None,
            "properties": properties or {},
        }
    )
    phases = tuple(phases)
    overrides = {str(key): str(value) for key, value in (properties or {}).items()}
    if not quick:
        # The full variant runs 4x the operations unless the spec pins them.
        base_ops = int(overrides.get("operationcount", "400"))
        overrides.setdefault("operationcount", str(base_ops * 4))
    schedule_arg: str | Mapping[str, str]
    if schedule == "none":
        schedule_arg = {}
    else:
        schedule_arg = schedule

    schedule_label = schedule if isinstance(schedule, str) else "custom"
    result = ExperimentResult(
        experiment="cew",
        description=(
            f"Closed Economy Workload cell: {binding} binding, "
            f"{schedule_label} fault schedule, virtual time"
        ),
        notes=[
            f"phases: {'+'.join(phases)}",
            "deterministic: every metric is a pure function of the seed",
        ],
    )
    series = Series(label=f"{binding}/{schedule_label}")
    sweep = tuple(thread_counts) if thread_counts else (None,)
    for threads in sweep:
        point_overrides = dict(overrides)
        if threads is not None:
            point_overrides["threadcount"] = str(threads)
        run = run_sim(
            binding=binding,
            properties=point_overrides,
            seed=seed,
            schedule=schedule_arg,
            trace=False,
        )
        if run.errors:
            raise RuntimeError(
                f"cew cell (seed {seed}, threads {threads}) reported errors: "
                f"{run.errors}"
            )
        measured_run = phases != ("load",)
        operations = run.operations if measured_run else run.load_operations
        virtual_s = run.run_time_virtual_s
        x = float(threads) if threads is not None else float(
            int(run.properties.get("threadcount", "1"))
        )
        series.points.append(
            Point(
                x=x,
                throughput=(operations / virtual_s) if virtual_s > 0 else 0.0,
                anomaly_score=run.gamma,
                operations=operations,
                failed_operations=run.failed_operations,
                extra={
                    "events_processed": run.events_processed,
                    "virtual_run_time_s": virtual_s,
                },
            )
        )
    result.series.append(series)
    return result


# ---------------------------------------------------------------------------
# The shard-scaling cell: CEW against a live multi-shard cluster
# ---------------------------------------------------------------------------

#: Per-shard request ceiling for the scaling cell.  Latency is kept tiny
#: (the wire adds its own); the token bucket is what makes throughput a
#: function of shard count — one shard plateaus at the bucket rate, N
#: shards at N buckets, the paper's Fig. 2 plateau story scaled out.
_SHARD_PROFILE_PARAMS = {
    "name": "shard",
    "read_median_s": 0.001,
    "write_median_s": 0.0015,
    "sigma": 0.25,
    "requests_per_second": 400.0,
    "burst": 32.0,
    "reject_on_throttle": False,
}

_SHARD_SCALING_BINDINGS = ("raw", "txn")


def _validate_shard_scaling_params(params: Mapping[str, object]) -> None:
    shard_counts = params.get("shard_counts")
    if shard_counts is not None:
        if isinstance(shard_counts, str) or not isinstance(shard_counts, Sequence):
            raise SpecValidationError(
                f"shard_counts must be a sequence of ints, got {shard_counts!r}"
            )
        for count in shard_counts:
            if not isinstance(count, int) or count < 1:
                raise SpecValidationError(
                    f"shard_counts entries must be ints >= 1, got {count!r}"
                )
    bindings = params.get("bindings")
    if bindings is not None:
        if isinstance(bindings, str) or not isinstance(bindings, Sequence):
            raise SpecValidationError(
                f"bindings must be a sequence of binding names, got {bindings!r}"
            )
        for binding in bindings:
            if binding not in _SHARD_SCALING_BINDINGS:
                raise SpecValidationError(
                    f"unknown binding {binding!r}; the shard_scaling runner "
                    f"accepts {list(_SHARD_SCALING_BINDINGS)}"
                )
    properties = params.get("properties", {})
    if not isinstance(properties, Mapping):
        raise SpecValidationError(
            f"properties must be a mapping of workload properties, got "
            f"{type(properties).__name__}"
        )


def run_shard_scaling(
    seed: int = 0,
    quick: bool = True,
    shard_counts: Sequence[int] = (1, 2, 4, 8),
    bindings: Sequence[str] = ("raw", "txn"),
    properties: Mapping[str, str] | None = None,
) -> ExperimentResult:
    """Tier-5 throughput + Tier-6 anomaly as the shard count grows.

    Each point launches a fresh :class:`~repro.cluster.cluster.
    ShardCluster` whose shards are rate-limited simulated cloud stores
    behind real HTTP servers, then runs the CEW against it — the ``raw``
    binding through the shard router, the ``txn`` binding through
    cross-shard two-phase commit.  Throughput should rise with the shard
    count (each shard brings its own request ceiling) while the anomaly
    score stays 0 on ``txn`` at every scale; ``raw`` is the racing
    baseline.  Wall-clock: real sockets, real sleeps — gate with wide
    margins only.
    """
    import random

    from ..bindings.kv import KVStoreDB
    from ..bindings.txn import TxnDB
    from ..cluster.campaign import DEFAULT_CLUSTER_PROPERTIES
    from ..cluster.cluster import ShardCluster
    from ..core.client import Client
    from ..core.closed_economy import ClosedEconomyWorkload
    from ..core.properties import Properties
    from ..core.retry import RetryPolicy
    from ..kvstore.cloud import CloudStoreProfile, SimulatedCloudStore
    from ..measurements.registry import Measurements

    _validate_shard_scaling_params(
        {
            "shard_counts": tuple(shard_counts),
            "bindings": tuple(bindings),
            "properties": properties or {},
        }
    )
    values = dict(DEFAULT_CLUSTER_PROPERTIES)
    # Enough client concurrency to saturate the largest cluster's
    # aggregate ceiling; specs may still override it.
    values["threadcount"] = "12"
    values.update({str(key): str(value) for key, value in (properties or {}).items()})
    if not quick:
        base_ops = int(values.get("operationcount", "400"))
        values["operationcount"] = str(base_ops * 4)
    values["seed"] = str(seed)
    values["retry.seed"] = str(seed + 2)
    props = Properties(values)
    profile = CloudStoreProfile(**_SHARD_PROFILE_PARAMS)

    result = ExperimentResult(
        experiment="shard_scaling",
        description=(
            "CEW over a live shard cluster: throughput vs shard count "
            "(per-shard request ceiling), anomaly score per binding"
        ),
        notes=[
            f"per-shard ceiling: {profile.requests_per_second:.0f} requests/s",
            "wall-clock over real HTTP servers: NOT deterministic",
        ],
    )
    for binding in bindings:
        series = Series(label=binding)
        for count in shard_counts:
            cell_rng = random.Random((seed * 1000003 + count) % (2**31))
            with ShardCluster(
                count,
                store_factory=lambda name: SimulatedCloudStore(
                    profile, rng=random.Random(cell_rng.getrandbits(32))
                ),
                lock_lease_ms=props.get_float("txn.lock_lease_ms", 1000.0),
                retry_policy_factory=lambda: RetryPolicy.from_properties(props),
            ) as cluster:
                if binding == "txn":
                    manager = cluster.manager(client_id=f"scale{seed}")
                    db_factory = lambda: TxnDB(props, manager=manager)  # noqa: E731
                else:
                    router = cluster.router()
                    db_factory = lambda: KVStoreDB(router, props)  # noqa: E731
                workload = ClosedEconomyWorkload()
                measurements = Measurements.from_properties(props)
                workload.init(props, measurements)
                client = Client(workload, db_factory, props, measurements)
                load = client.load()
                run = client.run()
                workload.cleanup()
            if load.errors or run.errors:
                raise RuntimeError(
                    f"shard_scaling cell (binding {binding}, {count} shards, "
                    f"seed {seed}) reported errors: {load.errors + run.errors}"
                )
            series.points.append(
                Point(
                    x=float(count),
                    throughput=run.throughput,
                    anomaly_score=run.anomaly_score if run.anomaly_score is not None else 0.0,
                    operations=run.operations,
                    failed_operations=run.failed_operations,
                    extra={"run_time_s": run.run_time_ms / 1000.0},
                )
            )
        result.series.append(series)
    return result


# ---------------------------------------------------------------------------
# The workload-synthesis cell: a statistical campaign as an experiment
# ---------------------------------------------------------------------------

_SYNTH_BINDINGS = ("raw", "txn")


def _validate_synth_params(params: Mapping[str, object]) -> None:
    from ..synth.spec import scenario_names

    scenario = params.get("scenario", "diurnal")
    if not isinstance(scenario, str) or not scenario:
        raise SpecValidationError(
            f"scenario must be a scenario name or spec-file path, got {scenario!r}"
        )
    binding = params.get("binding")
    if binding is not None and binding not in _SYNTH_BINDINGS:
        raise SpecValidationError(
            f"unknown binding {binding!r}; the synth_cew runner accepts "
            f"{list(_SYNTH_BINDINGS)} (or omit it to use the spec's own)"
        )
    duration_s = params.get("duration_s")
    if duration_s is not None and (
        not isinstance(duration_s, (int, float))
        or isinstance(duration_s, bool)
        or duration_s <= 0
    ):
        raise SpecValidationError(f"duration_s must be > 0, got {duration_s!r}")
    properties = params.get("properties", {})
    if not isinstance(properties, Mapping):
        raise SpecValidationError(
            f"properties must be a mapping of workload properties, got "
            f"{type(properties).__name__}"
        )
    # Resolve built-in names eagerly so typos fail at spec time, not run
    # time; file paths are checked when the cell runs.
    from pathlib import Path

    if not Path(scenario).suffix and not Path(scenario).exists():
        if scenario not in scenario_names():
            raise SpecValidationError(
                f"unknown synth scenario {scenario!r}; built-ins: "
                f"{', '.join(scenario_names())}"
            )


def run_synth_cell(
    seed: int = 0,
    quick: bool = True,
    scenario: str = "diurnal",
    binding: str | None = None,
    duration_s: float | None = None,
    properties: Mapping[str, str] | None = None,
) -> ExperimentResult:
    """One synthesized statistical campaign as a deterministic experiment.

    Compiles the scenario's :class:`~repro.synth.spec.SynthSpec` through
    :func:`~repro.synth.engine.run_synth` and reports the campaign as an
    experiment cell: one series point per conformance bucket (achieved
    rate vs the target curve), tables for tenants and assertions, and
    the per-operation HDR histograms attached so the aggregation layer
    computes pooled percentiles with CI bands across repetitions.  A
    failed deterministic assertion raises — the cell must conform, not
    just complete.  ``quick`` caps the campaign at 300 virtual seconds.
    """
    import dataclasses

    from ..synth.engine import run_synth
    from ..synth.spec import load_synth_spec

    _validate_synth_params(
        {
            "scenario": scenario,
            "binding": binding,
            "duration_s": duration_s,
            "properties": properties or {},
        }
    )
    spec = load_synth_spec(scenario)
    if duration_s is None and quick:
        duration_s = min(spec.duration_s, 300.0)
    spec = spec.with_overrides(binding=binding, duration_s=duration_s)
    if properties:
        merged = dict(spec.properties)
        merged.update({str(key): str(value) for key, value in properties.items()})
        spec = dataclasses.replace(spec, properties=merged)
    run = run_synth(spec, seed=seed)
    if run.violation:
        failed = [a.name for a in run.assertions if not a.passed]
        details = "; ".join(
            a.detail for a in run.assertions if not a.passed
        )
        raise RuntimeError(
            f"synth_cew cell (scenario {spec.name}, binding {run.binding}, "
            f"seed {seed}) violated assertions {failed}: {details}"
        )

    buckets = len(run.target_by_bucket)
    step = spec.duration_s / buckets if buckets else 0.0
    series = Series(label=f"{spec.name}/{run.binding}")
    for index in range(buckets):
        executed = run.executed_by_bucket[index]
        series.points.append(
            Point(
                x=round(index * step, 6),
                throughput=(executed / step) if step > 0 else 0.0,
                operations=executed,
                extra={
                    "target_rate": run.target_by_bucket[index],
                    "arrivals": run.arrivals_by_bucket[index],
                },
            )
        )
    result = ExperimentResult(
        experiment="synth_cew",
        description=(
            f"synthesized campaign {spec.name!r} on the {run.binding} "
            "binding: achieved rate per conformance bucket vs the target "
            "curve, virtual time"
        ),
        notes=[
            f"{spec.users:,} simulated users, {run.distinct_users:,} active "
            f"this run, peak {run.peak_user_states} resident",
            "deterministic: every metric is a pure function of the seed",
        ],
        series=[series],
        histograms=dict(run.histograms),
    )
    result.tables["campaign"] = [
        {
            "operations": run.operations,
            "failed_operations": run.failed_operations,
            "throttled_operations": run.throttled_operations,
            "anomaly_score": run.gamma,
            "peak_user_states": run.peak_user_states,
            "distinct_users": run.distinct_users,
            "virtual_time_s": run.virtual_time_s,
        }
    ]
    result.tables["tenants"] = [
        {
            "tenant": name,
            "offered": run.tenant_offered[name],
            "admitted": run.tenant_admitted[name],
            "throttled": run.tenant_throttled[name],
        }
        for name in sorted(run.tenant_offered)
    ]
    result.tables["assertions"] = [
        {"assertion": outcome.name, "passed": outcome.passed}
        for outcome in run.assertions
    ]
    return result


# ---------------------------------------------------------------------------
# The consistency frontier: read level x replication lag, virtual time
# ---------------------------------------------------------------------------

_FRONTIER_LEVELS = ("strong", "read_your_writes", "bounded_staleness")


def _validate_consistency_frontier_params(params: Mapping[str, object]) -> None:
    lag_ms = params.get("lag_ms")
    if lag_ms is not None:
        if isinstance(lag_ms, str) or not isinstance(lag_ms, Sequence):
            raise SpecValidationError(
                f"lag_ms must be a sequence of positive numbers, got {lag_ms!r}"
            )
        for lag in lag_ms:
            if not isinstance(lag, (int, float)) or isinstance(lag, bool) or lag <= 0:
                raise SpecValidationError(
                    f"lag_ms entries must be > 0 (a zero shipping interval "
                    f"never advances virtual time), got {lag!r}"
                )
    levels = params.get("levels")
    if levels is not None:
        if isinstance(levels, str) or not isinstance(levels, Sequence):
            raise SpecValidationError(
                f"levels must be a sequence of level names, got {levels!r}"
            )
        for level in levels:
            if level not in _FRONTIER_LEVELS:
                raise SpecValidationError(
                    f"unknown consistency level {level!r}; the "
                    f"consistency_frontier runner accepts {list(_FRONTIER_LEVELS)}"
                )
    bound = params.get("staleness_bound_ms")
    if bound is not None and (
        not isinstance(bound, (int, float)) or isinstance(bound, bool) or bound <= 0
    ):
        raise SpecValidationError(
            f"staleness_bound_ms must be > 0, got {bound!r}"
        )
    for key in ("sessions", "ops_per_session", "follower_count"):
        value = params.get(key)
        if value is not None and (
            not isinstance(value, int) or isinstance(value, bool) or value < 1
        ):
            raise SpecValidationError(f"{key} must be an int >= 1, got {value!r}")


def run_consistency_frontier(
    seed: int = 0,
    quick: bool = True,
    lag_ms: Sequence[float] = (5, 20, 80, 160, 280),
    levels: Sequence[str] = _FRONTIER_LEVELS,
    staleness_bound_ms: float = 300.0,
    sessions: int = 4,
    ops_per_session: int = 80,
    follower_count: int = 2,
) -> ExperimentResult:
    """The consistency-versus-staleness frontier in virtual time.

    One :func:`~repro.replication.probe.run_probe` per (level, lag)
    cell: N session tasks against a leader + followers replica set whose
    log shipper wakes every ``lag`` milliseconds.  Each point reports the
    Tier-6-style anomaly score (fraction of reads that missed the
    newest write) plus the conformance-oracle violation counts for the
    guarantees the level actually promises.  ``strong`` must sit at
    anomaly 0 with zero violations at every lag; relaxed levels trade a
    growing anomaly score for follower offload while their own
    guarantees (session order, the staleness bound) stay at zero
    violations.  Deterministic: every number is a pure function of the
    seed, so CI pins the whole frontier against a committed baseline.

    The default sweep keeps every lag at or below the staleness bound;
    beyond the bound the bounded level routes back to the leader and its
    anomaly score falls again, which would break the monotone-frontier
    reading of the figure.
    """
    from ..replication.probe import run_probe

    _validate_consistency_frontier_params(
        {
            "lag_ms": tuple(lag_ms),
            "levels": tuple(levels),
            "staleness_bound_ms": staleness_bound_ms,
            "sessions": sessions,
            "ops_per_session": ops_per_session,
            "follower_count": follower_count,
        }
    )
    if not quick:
        ops_per_session *= 4
    result = ExperimentResult(
        experiment="consistency_frontier",
        description=(
            "per-read consistency level x replication lag: anomaly score "
            "and conformance violations over the replication protocol"
        ),
        notes=[
            f"staleness bound: {staleness_bound_ms:g} ms; "
            f"{sessions} sessions x {ops_per_session} ops; "
            f"{follower_count} followers",
            "deterministic: every metric is a pure function of the seed",
        ],
    )
    for level in levels:
        series = Series(label=level)
        for lag in lag_ms:
            probe = run_probe(
                seed=seed,
                level=level,
                ship_interval_s=lag / 1000.0,
                staleness_bound_s=staleness_bound_ms / 1000.0,
                sessions=sessions,
                ops_per_session=ops_per_session,
                follower_count=follower_count,
            )
            report = probe.report
            if not probe.followers_prefix_ok or not probe.followers_caught_up:
                raise RuntimeError(
                    f"consistency_frontier cell (level {level}, lag {lag} ms, "
                    f"seed {seed}): replication did not converge"
                )
            operations = report.reads + report.writes
            elapsed = probe.virtual_elapsed_s
            series.points.append(
                Point(
                    x=float(lag),
                    throughput=(operations / elapsed) if elapsed > 0 else 0.0,
                    anomaly_score=report.anomaly_score,
                    operations=operations,
                    failed_operations=0,
                    extra={
                        "stale_reads": report.stale_reads,
                        "ryw_violations": len(report.ryw_violations),
                        "monotonic_violations": len(report.monotonic_violations),
                        "bounded_violations": len(report.bounded_violations),
                        "follower_read_fraction": probe.follower_read_fraction,
                        "virtual_run_time_s": elapsed,
                    },
                )
            )
        result.series.append(series)
    return result


# ---------------------------------------------------------------------------
# The replicated-shard frontier: consistency x lag over replicated shards
# ---------------------------------------------------------------------------

_REPLICATED_LEVELS = ("strong", "quorum", "read_your_writes", "bounded_staleness")


def _validate_replicated_frontier_params(params: Mapping[str, object]) -> None:
    lag_ms = params.get("lag_ms")
    if lag_ms is not None:
        if isinstance(lag_ms, str) or not isinstance(lag_ms, Sequence):
            raise SpecValidationError(
                f"lag_ms must be a sequence of positive numbers, got {lag_ms!r}"
            )
        for lag in lag_ms:
            if not isinstance(lag, (int, float)) or isinstance(lag, bool) or lag <= 0:
                raise SpecValidationError(
                    f"lag_ms entries must be > 0 (a zero shipping interval "
                    f"never advances virtual time), got {lag!r}"
                )
    levels = params.get("levels")
    if levels is not None:
        if isinstance(levels, str) or not isinstance(levels, Sequence):
            raise SpecValidationError(
                f"levels must be a sequence of level names, got {levels!r}"
            )
        for level in levels:
            if level not in _REPLICATED_LEVELS:
                raise SpecValidationError(
                    f"unknown consistency level {level!r}; the "
                    f"replicated_shard_frontier runner accepts "
                    f"{list(_REPLICATED_LEVELS)}"
                )
    bound = params.get("staleness_bound_ms")
    if bound is not None and (
        not isinstance(bound, (int, float)) or isinstance(bound, bool) or bound <= 0
    ):
        raise SpecValidationError(f"staleness_bound_ms must be > 0, got {bound!r}")
    for key in ("sessions", "ops_per_session", "shard_count", "follower_count"):
        value = params.get(key)
        if value is not None and (
            not isinstance(value, int) or isinstance(value, bool) or value < 1
        ):
            raise SpecValidationError(f"{key} must be an int >= 1, got {value!r}")
    nemesis = params.get("nemesis")
    if nemesis is not None and not isinstance(nemesis, bool):
        raise SpecValidationError(f"nemesis must be a bool, got {nemesis!r}")


def run_replicated_shard_frontier(
    seed: int = 0,
    quick: bool = True,
    lag_ms: Sequence[float] = (10, 40, 120),
    levels: Sequence[str] = _REPLICATED_LEVELS,
    staleness_bound_ms: float = 300.0,
    shard_count: int = 2,
    follower_count: int = 2,
    sessions: int = 4,
    ops_per_session: int = 40,
    nemesis: bool = True,
) -> ExperimentResult:
    """The consistency frontier over the *replicated shard* topology.

    One :func:`~repro.cluster.probe.run_replicated_probe` per
    (level, lag) cell: N session tasks mixing unique-marker operations
    with cross-shard 2PC transfers over a closed economy against a
    cluster of replica-set shards, while — with ``nemesis`` on — one
    shard's leader is killed mid-run and the shard fails over on its
    lease.  Each point reports the anomaly score under that level's
    guarantee plus the convergence verdict of the repair phase: total
    cash preserved through the failover, zero residual locks, every
    follower log a prefix of its leader's.  ``strong`` and ``quorum``
    must sit at anomaly 0 at every lag *including through the leader
    kill*; every cell must converge.  Deterministic: every number is a
    pure function of the seed.
    """
    from ..cluster.probe import run_replicated_probe

    _validate_replicated_frontier_params(
        {
            "lag_ms": tuple(lag_ms),
            "levels": tuple(levels),
            "staleness_bound_ms": staleness_bound_ms,
            "shard_count": shard_count,
            "follower_count": follower_count,
            "sessions": sessions,
            "ops_per_session": ops_per_session,
            "nemesis": nemesis,
        }
    )
    if not quick:
        ops_per_session *= 4
    result = ExperimentResult(
        experiment="replicated_shard_frontier",
        description=(
            "consistency level x replication lag over replica-set shards "
            "with cross-shard 2PC and a mid-run leader failover"
        ),
        notes=[
            f"{shard_count} shards x {1 + follower_count} replicas; "
            f"staleness bound {staleness_bound_ms:g} ms; "
            f"{sessions} sessions x {ops_per_session} ops; "
            f"nemesis={'leader kill + lease failover' if nemesis else 'off'}",
            "deterministic: every metric is a pure function of the seed",
        ],
    )
    for level in levels:
        series = Series(label=level)
        for lag in lag_ms:
            probe = run_replicated_probe(
                seed=seed,
                level=level,
                shard_count=shard_count,
                follower_count=follower_count,
                ship_interval_s=lag / 1000.0,
                staleness_bound_s=staleness_bound_ms / 1000.0,
                sessions=sessions,
                ops_per_session=ops_per_session,
                nemesis={"at_s": 0.3, "rejoin_after_s": 0.5} if nemesis else None,
            )
            report = probe.report
            if not probe.converged:
                raise RuntimeError(
                    f"replicated_shard_frontier cell (level {level}, lag "
                    f"{lag} ms, seed {seed}): cluster did not converge "
                    f"(economy {probe.economy_total}/{probe.economy_expected}, "
                    f"residual locks {probe.residual_locks}, "
                    f"prefix_ok {probe.followers_prefix_ok})"
                )
            if level in ("strong", "quorum") and report.anomaly_score > 0.0:
                raise RuntimeError(
                    f"replicated_shard_frontier cell (level {level}, lag "
                    f"{lag} ms, seed {seed}): anomaly score "
                    f"{report.anomaly_score} > 0 under a strong guarantee"
                )
            operations = report.reads + report.writes
            elapsed = probe.virtual_elapsed_s
            series.points.append(
                Point(
                    x=float(lag),
                    throughput=(operations / elapsed) if elapsed > 0 else 0.0,
                    anomaly_score=report.anomaly_score,
                    operations=operations,
                    failed_operations=probe.ops_unavailable,
                    extra={
                        "stale_reads": report.stale_reads,
                        "ryw_violations": len(report.ryw_violations),
                        "monotonic_violations": len(report.monotonic_violations),
                        "bounded_violations": len(report.bounded_violations),
                        "transfers_committed": probe.transfers_committed,
                        "transfers_aborted": probe.transfers_aborted,
                        "failovers": len(probe.failovers),
                        "residual_locks": probe.residual_locks,
                        "economy_ok": probe.economy_ok,
                        "virtual_run_time_s": elapsed,
                    },
                )
            )
        result.series.append(series)
    return result


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

def _harness(name: str):
    """Late import of a harness experiment (keeps import cost off the CLI)."""
    def call(seed: int = 42, quick: bool = True, **params):
        from .. import harness

        return getattr(harness, name)(quick=quick, seed=seed, **params)

    return call


RUNNERS: dict[str, RunnerInfo] = {}


def _register(info: RunnerInfo) -> None:
    RUNNERS[info.name] = info


def runner_names() -> list[str]:
    return sorted(RUNNERS)


_register(
    RunnerInfo(
        name="cew",
        fn=run_cew_cell,
        engine="sim",
        x_label="threads",
        allowed_params=frozenset(
            {"binding", "schedule", "phases", "thread_counts", "properties"}
        ),
        description="generic CEW cell: binding x fault schedule x phases, virtual time",
        validate=_validate_cew_params,
        deterministic=True,
    )
)
_register(
    RunnerInfo(
        name="fig2",
        fn=_harness("fig2_cloud_scaling"),
        engine="wall",
        allowed_params=frozenset({"thread_counts", "mixes", "scale"}),
        description="Fig. 2: throughput vs threads against the simulated WAS container",
    )
)
_register(
    RunnerInfo(
        name="sim_figure2",
        fn=_harness("sim_figure2"),
        engine="sim",
        allowed_params=frozenset({"thread_counts", "mixes"}),
        description="Fig. 2 regenerated in deterministic virtual time",
        deterministic=True,
    )
)
_register(
    RunnerInfo(
        name="fig2mp",
        fn=_harness("figure2_multiprocess"),
        engine="scaleout",
        x_label="processes",
        allowed_params=frozenset({"process_counts", "threads_per_worker"}),
        description="Fig. 2 with real worker processes over the scale-out engine",
    )
)
_register(
    RunnerInfo(
        name="fig3",
        fn=_harness("fig3_transaction_overhead"),
        engine="wall",
        allowed_params=frozenset({"thread_counts", "scale"}),
        description="Fig. 3: transactional vs raw throughput",
    )
)
_register(
    RunnerInfo(
        name="fig4",
        fn=_harness("fig4_anomaly_score"),
        engine="wall",
        allowed_params=frozenset({"thread_counts", "scale"}),
        description="Fig. 4: threads vs anomaly score",
    )
)
_register(
    RunnerInfo(
        name="fig5",
        fn=_harness("fig5_raw_scaling"),
        engine="wall",
        allowed_params=frozenset({"thread_counts", "scale"}),
        description="Fig. 5: threads vs raw throughput",
    )
)
_register(
    RunnerInfo(
        name="tier5",
        fn=_harness("tier5_operation_overhead"),
        engine="wall",
        allowed_params=frozenset({"scale", "threads"}),
        description="Tier 5: per-operation transactional overhead table",
    )
)
_register(
    RunnerInfo(
        name="tier6",
        fn=_harness("tier6_consistency"),
        engine="wall",
        allowed_params=frozenset({"scale", "threads"}),
        description="Tier 6: consistency validation, raw vs transactional",
    )
)
_register(
    RunnerInfo(
        name="ablation",
        fn=_harness("ablation_coordinators"),
        engine="wall",
        x_label="oracle RPC delay (ms)",
        allowed_params=frozenset({"oracle_delays_ms", "scale", "threads"}),
        description="coordinator designs vs central-oracle RPC delay",
    )
)
_register(
    RunnerInfo(
        name="isolation",
        fn=_harness("isolation_matrix"),
        engine="wall",
        allowed_params=frozenset({"scale", "threads"}),
        description="anomaly-targeting workloads vs isolation level",
    )
)
_register(
    RunnerInfo(
        name="shard_scaling",
        fn=run_shard_scaling,
        engine="wall",
        x_label="shards",
        allowed_params=frozenset({"shard_counts", "bindings", "properties"}),
        description=(
            "CEW over a live shard cluster: throughput + anomaly vs shard "
            "count (raw router and cross-shard 2PC)"
        ),
        validate=_validate_shard_scaling_params,
    )
)
_register(
    RunnerInfo(
        name="synth_cew",
        fn=run_synth_cell,
        engine="sim",
        x_label="virtual time (s)",
        allowed_params=frozenset(
            {"scenario", "binding", "duration_s", "properties"}
        ),
        description=(
            "synthesized statistical campaign (arrival curve x drifting "
            "skew x tenants) as a conformance-checked cell, virtual time"
        ),
        validate=_validate_synth_params,
        deterministic=True,
    )
)
_register(
    RunnerInfo(
        name="consistency_frontier",
        fn=run_consistency_frontier,
        engine="sim",
        x_label="replication lag (ms)",
        allowed_params=frozenset(
            {
                "lag_ms",
                "levels",
                "staleness_bound_ms",
                "sessions",
                "ops_per_session",
                "follower_count",
            }
        ),
        description=(
            "consistency level x replication lag over the real replication "
            "protocol: anomaly score + conformance violations, virtual time"
        ),
        validate=_validate_consistency_frontier_params,
        deterministic=True,
    )
)
_register(
    RunnerInfo(
        name="replicated_shard_frontier",
        fn=run_replicated_shard_frontier,
        engine="sim",
        x_label="replication lag (ms)",
        allowed_params=frozenset(
            {
                "lag_ms",
                "levels",
                "staleness_bound_ms",
                "shard_count",
                "follower_count",
                "sessions",
                "ops_per_session",
                "nemesis",
            }
        ),
        description=(
            "consistency level x lag over replica-set shards with cross-shard "
            "2PC and a mid-run leader failover, virtual time"
        ),
        validate=_validate_replicated_frontier_params,
        deterministic=True,
    )
)
_register(
    RunnerInfo(
        name="staleness",
        fn=_harness("staleness_curve"),
        engine="wall",
        x_label="delay (ms)",
        allowed_params=frozenset({"delays_ms", "lag_ms", "samples"}),
        description="stale-read probability vs time since write (fake clock)",
        deterministic=True,
    )
)
